//! Workspace-level integration tests: the façade crate driving all the
//! component crates together, cross-checked against both baselines.

use std::collections::HashMap;

use denali::arch::{validate, Machine, Simulator};
use denali::baseline::{brute_search, rewrite_compile, BruteConfig};
use denali::core::{Denali, Options, SolverChoice};
use denali::lang::{lower_proc, parse_program};
use denali::term::Symbol;
use denali_bench::programs;

#[test]
fn figure2_whole_stack() {
    let denali = Denali::new(Options::default());
    let result = denali.compile_source(programs::FIGURE2).unwrap();
    let compiled = &result.gmas[0];
    assert_eq!(compiled.cycles, 1);
    assert_eq!(compiled.program.instrs[0].op.as_str(), "s4addq");
    validate(&compiled.program, &denali.options().machine).unwrap();
}

#[test]
fn denali_never_loses_to_the_rewriting_baseline() {
    // On every fixture both can compile, Denali's cycle count is at
    // most the baseline's (it explores a superset of the baseline's
    // single rewrite).
    let denali = Denali::new(Options::default());
    let machine = Machine::ev6();
    for (name, source) in [
        ("figure2", programs::FIGURE2),
        ("lcp2", programs::LCP2),
        ("rowop", programs::ROWOP),
    ] {
        let result = denali.compile_source(source).unwrap();
        let program = parse_program(source).unwrap();
        for (compiled, gma) in result
            .gmas
            .iter()
            .zip(lower_proc(&program.procs[0]).unwrap())
        {
            let baseline = rewrite_compile(&gma, &machine)
                .unwrap_or_else(|e| panic!("{name}: baseline failed: {e}"));
            assert!(
                compiled.cycles <= baseline.cycles(),
                "{name}/{}: Denali {} cycles vs baseline {}",
                gma.name,
                compiled.cycles,
                baseline.cycles()
            );
        }
    }
}

#[test]
fn brute_force_agrees_with_denali_on_small_goals() {
    // (a & 0xff) << 8 is a single insbl; both engines must find a
    // one-instruction program, and the programs must agree pointwise.
    let config = BruteConfig {
        max_len: 2,
        verify: 2_000,
        ..BruteConfig::default()
    };
    let target = |i: &[u64]| (i[0] & 0xff) << 8;
    let (found, _) = brute_search(&target, 1, &config);
    let brute = found.expect("brute force finds the byte insert");
    assert_eq!(brute.len(), 1);

    let denali = Denali::new(Options::default());
    let result = denali
        .compile_source("(\\procdecl f ((a long)) long (:= (\\res (<< (& a 255) 8))))")
        .unwrap();
    let compiled = &result.gmas[0];
    assert_eq!(compiled.program.len(), 1, "{}", compiled.program.listing(4));
    assert_eq!(compiled.program.instrs[0].op.as_str(), "insbl");

    let sim = Simulator::new(&denali.options().machine);
    let res = compiled.program.output_reg(Symbol::intern("res")).unwrap();
    for a in [0u64, 0xab, 0x1234, u64::MAX] {
        let outcome = sim
            .run_named(&compiled.program, &[("a", a)], HashMap::new())
            .unwrap();
        assert_eq!(outcome.regs[&res], target(&[a]));
        assert_eq!(brute.eval(&[a]), target(&[a]));
    }
}

#[test]
fn solver_substitution_preserves_results() {
    // The paper swapped SAT solvers freely; CDCL and DPLL must agree on
    // optimal cycle counts.
    let cdcl = Denali::new(Options::default());
    let dpll = Denali::new(Options {
        solver: SolverChoice::Dpll,
        ..Options::default()
    });
    for source in [programs::FIGURE2, programs::LCP2] {
        let a = cdcl.compile_source(source).unwrap();
        let b = dpll.compile_source(source).unwrap();
        assert_eq!(a.gmas[0].cycles, b.gmas[0].cycles);
    }
}

#[test]
fn machine_variants_order_sensibly() {
    // Removing the cluster penalty can only help; single issue can only
    // hurt.
    let quad = Denali::new(Options::default());
    let flat = Denali::new(Options {
        machine: Machine::ev6_unclustered(),
        ..Options::default()
    });
    let single = Denali::new(Options {
        machine: Machine::single_issue(),
        ..Options::default()
    });
    for source in [programs::LCP2, programs::FIGURE2] {
        let q = quad.compile_source(source).unwrap().gmas[0].cycles;
        let f = flat.compile_source(source).unwrap().gmas[0].cycles;
        let s = single.compile_source(source).unwrap().gmas[0].cycles;
        assert!(f <= q, "unclustered {f} > clustered {q}");
        assert!(s >= q, "single-issue {s} < quad {q}");
    }
}

#[test]
fn load_latency_annotation_changes_the_schedule() {
    // The paper's §6: memory latency annotations from profiling. A
    // cache-missing load (latency 12) must stretch the schedule.
    let fast = Denali::new(Options::default());
    let slow = Denali::new(Options {
        load_latency: Some(12),
        ..Options::default()
    });
    let source = "(\\procdecl f ((p long*)) long (:= (\\res (+ (\\deref p) 1))))";
    let f = fast.compile_source(source).unwrap().gmas[0].cycles;
    let s = slow.compile_source(source).unwrap().gmas[0].cycles;
    assert_eq!(f, 4); // ldq(3) + addq(1)
    assert_eq!(s, 13); // ldq(12) + addq(1)
}

#[test]
fn rowop_stores_through_the_loop() {
    let denali = Denali::new(Options::default());
    let result = denali.compile_source(programs::ROWOP).unwrap();
    let body = result.main();
    let sim = Simulator::new(&denali.options().machine);
    let memory: HashMap<u64, u64> = HashMap::from([(64, 10), (128, 5)]);
    let outcome = sim
        .run_named(
            &body.program,
            &[("p", 64), ("q", 128), ("r", 1024), ("c", 3)],
            memory,
        )
        .unwrap();
    // *p += c * *q -> 10 + 3*5 = 25.
    assert_eq!(outcome.memory[&64], 25);
    let p_out = body.program.output_reg(Symbol::intern("p")).unwrap();
    assert_eq!(outcome.regs[&p_out], 72);
}

#[test]
fn every_fixture_is_correct_by_simulation() {
    // The umbrella differential test: every experiment fixture, every
    // GMA, checked against the reference semantics.
    let denali = Denali::new(Options::default());
    let memory: HashMap<u64, u64> = (0..16u64).map(|i| (64 + 8 * i, 0x2222 * (i + 3))).collect();
    for source in [
        programs::FIGURE2,
        programs::LCP2,
        programs::ROWOP,
        programs::CHECKSUM_SERIAL,
    ] {
        denali_bench::compile_checked(
            &denali,
            source,
            &[
                ("reg6", 9),
                ("a", 0x3141_5926_5358_9793),
                ("b", 0x2718_2818_2845_9045),
                ("p", 64),
                ("q", 96),
                ("r", 160),
                ("c", 7),
                ("ptr", 64),
                ("ptrend", 128),
            ],
            &memory,
        );
    }
}

#[test]
fn cli_trace_round_trip() {
    // End-to-end through the real binary: --trace-out must not change
    // the compiler's stdout, the JSONL must parse back into records
    // with the expected span vocabulary, the Chrome export must be
    // valid JSON with properly nested spans, and `trace-report` must
    // summarize the JSONL.
    let exe = env!("CARGO_BIN_EXE_denali");
    let src = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/figure2.dnl");
    let dir = std::env::temp_dir().join(format!("denali-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl_path = dir.join("figure2.jsonl");
    let chrome_path = dir.join("figure2.chrome.json");

    let run = |args: &[&str]| -> String {
        let out = std::process::Command::new(exe)
            .args(args)
            // Pin the env-driven knobs so CI matrix legs cannot skew
            // the comparison.
            .env_remove("DENALI_TRACE")
            .env("DENALI_THREADS", "1")
            .env("DENALI_INCREMENTAL", "1")
            .env("DENALI_DELTA_MATCH", "1")
            .output()
            .expect("denali binary runs");
        assert!(
            out.status.success(),
            "denali {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf-8 stdout")
    };

    let plain = run(&[src]);
    let traced = run(&[src, "--trace-out", jsonl_path.to_str().unwrap()]);
    assert_eq!(plain, traced, "tracing changed the compiler's output");

    let text = std::fs::read_to_string(&jsonl_path).unwrap();
    let records = denali::trace::jsonl::parse_records(&text).expect("JSONL parses");
    for name in [
        "gma",
        "match",
        "saturate.round",
        "search",
        "probe",
        "sat.probe",
    ] {
        assert!(
            records.iter().any(|r| r.name() == Some(name)),
            "JSONL trace is missing {name}"
        );
    }

    run(&[
        src,
        "--trace-out",
        chrome_path.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    let chrome_text = std::fs::read_to_string(&chrome_path).unwrap();
    let json = denali::trace::json::parse(&chrome_text).expect("Chrome trace is valid JSON");
    let events = json
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    let complete = |name: &str| -> (u64, u64) {
        let e = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("name").and_then(|n| n.as_str()) == Some(name)
            })
            .unwrap_or_else(|| panic!("no complete event named {name}"));
        (
            e.get("ts").and_then(|v| v.as_u64()).expect("ts"),
            e.get("dur").and_then(|v| v.as_u64()).expect("dur"),
        )
    };
    let (gma_ts, gma_dur) = complete("gma");
    for phase in ["match", "search"] {
        let (ts, dur) = complete(phase);
        assert!(
            gma_ts <= ts && ts + dur <= gma_ts + gma_dur,
            "{phase} span [{ts}, {}] not nested in gma [{gma_ts}, {}]",
            ts + dur,
            gma_ts + gma_dur
        );
    }
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("sat.probe")),
        "Chrome trace is missing the sat.probe instants"
    );

    let report = std::process::Command::new(exe)
        .args(["trace-report", jsonl_path.to_str().unwrap()])
        .output()
        .expect("trace-report runs");
    assert!(report.status.success());
    let report = String::from_utf8(report.stdout).unwrap();
    assert!(report.contains("phases:"), "{report}");
    assert!(report.contains("probes,"), "{report}");

    std::fs::remove_dir_all(&dir).ok();
}
