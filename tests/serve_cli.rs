//! End-to-end `denali serve --stdio` over the real binary: spawn the
//! CLI, drive it with framed JSONL requests over a pipe, and assert on
//! the response lines and the exit status. This is the same flow the
//! CI smoke leg exercises from a shell.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use denali::trace::json::{self, Json};

const SOURCE: &str = r"(\procdecl f ((reg6 long)) long (:= (\res (+ (* reg6 4) 1))))";

/// A different program for the deadline leg: the cache is keyed by the
/// normalized GMA, so reusing `SOURCE` would serve the expired request
/// from the cache (a hit satisfies any deadline) instead of degrading.
const SOURCE_LATE: &str = r"(\procdecl g ((reg6 long)) long (:= (\res (* (+ reg6 2) 8))))";

fn compile_source_line(id: &str, source: &str, extra: &str) -> String {
    let mut src = String::new();
    json::write_str(&mut src, source);
    format!(r#"{{"type":"compile","id":"{id}","source":{src}{extra}}}"#)
}

fn compile_line(id: &str, extra: &str) -> String {
    compile_source_line(id, SOURCE, extra)
}

/// An interactive `denali serve --stdio` session. Lock-step send/recv
/// keeps every stats assertion deterministic: a response is only read
/// after the worker that produced it has bumped its counters.
struct Session {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Session {
    fn start(extra_args: &[&str]) -> Session {
        let mut child = Command::new(env!("CARGO_BIN_EXE_denali"))
            .arg("serve")
            .arg("--stdio")
            .args(["--max-cycles", "8"])
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn denali serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Session {
            child,
            stdin,
            stdout,
        }
    }

    /// Sends one request line and reads its one response line.
    fn round_trip(&mut self, request: &str) -> String {
        writeln!(self.stdin, "{request}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed before responding to {request}");
        line.trim_end().to_owned()
    }

    /// Closes stdin (EOF = graceful shutdown) and asserts a clean exit
    /// with no stray output.
    fn close(mut self) {
        drop(self.stdin);
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).expect("drain stdout");
        assert_eq!(rest, "", "no unsolicited output after EOF");
        let status = self.child.wait().expect("wait for server");
        assert!(status.success(), "EOF must be a clean shutdown: {status}");
    }
}

use std::io::Read as _;

#[test]
fn serves_good_malformed_duplicate_and_deadline_requests() {
    let mut s = Session::start(&[]);

    let pong = json::parse(&s.round_trip(r#"{"type":"ping","id":0}"#)).unwrap();
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    // Good request compiles for real.
    let cold_line = s.round_trip(&compile_line("good", ""));
    let cold = json::parse(&cold_line).unwrap();
    assert_eq!(cold.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(cold.get("degraded").and_then(Json::as_bool), Some(false));
    assert!(!cold.get("gmas").and_then(Json::as_arr).unwrap().is_empty());

    // Malformed line: protocol error with id null, and the server
    // keeps serving afterwards.
    let bad = json::parse(&s.round_trip("this is not json")).unwrap();
    assert_eq!(bad.get("id"), Some(&Json::Null));
    assert_eq!(
        bad.get("error")
            .and_then(|e| e.get("stage"))
            .and_then(Json::as_str),
        Some("protocol")
    );

    // The duplicate request is served from the cache byte-identically.
    let warm_line = s.round_trip(&compile_line("good", ""));
    assert_eq!(cold_line, warm_line, "cache hit must replay cold bytes");

    // An already-expired deadline degrades instead of failing.
    let late = json::parse(&s.round_trip(&compile_source_line(
        "late",
        SOURCE_LATE,
        r#","deadline_ms":0"#,
    )))
    .unwrap();
    assert_eq!(late.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(late.get("degraded").and_then(Json::as_bool), Some(true));

    // Stats reflect all of the above.
    let stats = json::parse(&s.round_trip(r#"{"type":"stats","id":9}"#)).unwrap();
    assert_eq!(stats.get("requests").and_then(Json::as_u64), Some(6));
    assert_eq!(stats.get("protocol_errors").and_then(Json::as_u64), Some(1));
    let compiles = stats.get("compiles").unwrap();
    assert_eq!(compiles.get("ok").and_then(Json::as_u64), Some(2));
    assert_eq!(compiles.get("degraded").and_then(Json::as_u64), Some(1));
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(2));

    s.close();
}

#[test]
fn cache_dir_survives_across_processes() {
    let dir = std::env::temp_dir().join(format!("denali-serve-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().unwrap().to_owned();
    let request = compile_line("r", "");

    let mut first = Session::start(&["--cache-dir", &dir_arg]);
    let cold = first.round_trip(&request);
    first.close();

    // "Restart": a fresh process over the same cache directory.
    let mut second = Session::start(&["--cache-dir", &dir_arg]);
    let warm = second.round_trip(&request);
    assert_eq!(cold, warm, "disk tier must replay across restarts");
    let stats = json::parse(&second.round_trip(r#"{"type":"stats","id":1}"#)).unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("disk_hits").and_then(Json::as_u64), Some(1));
    second.close();

    let _ = std::fs::remove_dir_all(&dir);
}
