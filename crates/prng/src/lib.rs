#![warn(missing_docs)]

//! A self-contained deterministic PRNG plus a minimal property-test
//! harness.
//!
//! The repository must build in fully offline environments, so the test
//! suite cannot depend on crates.io (`rand`, `proptest`). This crate
//! provides the two facilities those dependencies were used for:
//!
//! - [`Rng`] — a seedable SplitMix64 generator with the handful of
//!   sampling helpers the tests and the brute-force baseline need.
//! - [`forall`] — a property-test driver: run a closure over many
//!   deterministically-seeded cases and report the failing case's seed
//!   so a failure can be replayed in isolation.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A SplitMix64 pseudo-random generator.
///
/// SplitMix64 passes BigCrush, needs only a single `u64` of state, and
/// is trivially seedable — exactly what deterministic tests want. It is
/// NOT cryptographically secure.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A value in `0..n`. `n` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is
    /// negligible for the small ranges tests use.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A value in `lo..hi` (half-open). `hi` must exceed `lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "Rng::range: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A `usize` in `0..n`. `n` must be nonzero.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Picks a uniformly random element of a nonempty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below_usize(items.len())]
    }
}

/// Runs `body` for `cases` deterministically-seeded cases.
///
/// Each case receives its own [`Rng`]; case `i` of a given `name` always
/// sees the same stream, so failures are reproducible. On panic the
/// harness re-panics with the case index and seed prepended, and the
/// environment variable `DENALI_PROP_SEED` replays a single case.
///
/// # Panics
///
/// Re-panics with diagnostic context if `body` panics for any case.
pub fn forall(name: &str, cases: u64, mut body: impl FnMut(&mut Rng)) {
    let seed_base = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    if let Some(replay) = std::env::var_os("DENALI_PROP_SEED") {
        let seed: u64 = replay
            .to_string_lossy()
            .parse()
            .expect("DENALI_PROP_SEED must be a u64");
        body(&mut Rng::new(seed));
        return;
    }
    for case in 0..cases {
        let seed = seed_base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut Rng::new(seed))));
        if let Err(payload) = outcome {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "<non-string panic>".to_owned());
            panic!(
                "property `{name}` failed at case {case}/{cases} \
                 (replay with DENALI_PROP_SEED={seed}): {message}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
            let v = rng.range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn below_hits_every_small_residue() {
        let mut rng = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.below_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn forall_runs_every_case() {
        let mut count = 0;
        forall("counting", 17, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn forall_reports_the_failing_seed() {
        let failure = catch_unwind(AssertUnwindSafe(|| {
            forall("always-fails", 3, |_| panic!("boom"))
        }))
        .expect_err("must fail");
        let message = failure.downcast_ref::<String>().unwrap();
        assert!(message.contains("DENALI_PROP_SEED="), "{message}");
        assert!(message.contains("boom"), "{message}");
    }
}
