//! Additional language coverage: miss annotations through lowering and
//! pipelining, evaluation corner cases, and input collection.

use std::collections::HashMap;

use denali_lang::{lower_proc, parse_program, pipeline_loads};
use denali_term::value::Env;
use denali_term::Symbol;

#[test]
fn derefm_annotations_survive_lowering() {
    let program = parse_program(
        "(\\procdecl f ((p long*) (q long*)) long
           (:= (\\res (+ (\\derefm p) (\\deref (+ q 8))))))",
    )
    .unwrap();
    let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
    // One annotated address (p); the marker is stripped from the terms.
    assert_eq!(gma.miss_addrs.len(), 1);
    assert_eq!(gma.miss_addrs[0].to_string(), "p");
    assert!(
        !gma.assigns[0].1.to_string().contains("missing"),
        "{}",
        gma.assigns[0].1
    );
    // The annotated and plain loads still evaluate identically.
    let mut env = Env::new();
    env.set_word("p", 64).set_word("q", 96);
    env.set_mem("M", HashMap::from([(64, 5), (104, 6)]));
    let eval = gma.evaluate(&env).unwrap();
    assert_eq!(eval.assigns[0].1, 11);
}

#[test]
fn derefm_in_a_loop_body_annotates_the_carried_load() {
    let program = parse_program(
        "(\\procdecl sum ((ptr long*) (ptrend long*)) long
           (\\var (s long 0)
             (\\do (-> (<u ptr ptrend)
               (\\semi
                 (:= (s (+ s (\\derefm ptr))))
                 (:= (ptr (+ ptr 8))))))))",
    )
    .unwrap();
    let gmas = lower_proc(&program.procs[0]).unwrap();
    let body = gmas.iter().find(|g| g.guard.is_some()).unwrap();
    assert_eq!(body.miss_addrs.len(), 1);
    // Pipelining carries the annotation to the moved (next-iteration)
    // load and the prologue's first load.
    let prologue = gmas.iter().find(|g| g.guard.is_none());
    let (new_prologue, new_body) = pipeline_loads(prologue, body).unwrap();
    // The moved (next-iteration) load is annotated; the original entry
    // is retained but inert (no load at `ptr` remains in the body).
    let body_misses: Vec<String> = new_body.miss_addrs.iter().map(|t| t.to_string()).collect();
    assert!(
        body_misses.contains(&"(add64 ptr 8)".to_owned()),
        "{body_misses:?}"
    );
    assert!(new_prologue
        .miss_addrs
        .iter()
        .any(|t| t.to_string() == "ptr"));
}

#[test]
fn guard_false_evaluation_reports_zero() {
    let program = parse_program(
        "(\\procdecl f ((x long) (n long)) long
           (\\do (-> (<u x n) (:= (x (+ x 1))))))",
    )
    .unwrap();
    let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
    let mut env = Env::new();
    env.set_word("x", 10).set_word("n", 5);
    let eval = gma.evaluate(&env).unwrap();
    assert_eq!(eval.guard, Some(0));
    // The updates are still evaluated (the GMA's semantics applies them
    // only when the guard holds; the caller decides).
    assert_eq!(eval.assigns[0].1, 11);
}

#[test]
fn inputs_include_guard_only_names() {
    let program = parse_program(
        "(\\procdecl f ((x long) (limit long)) long
           (\\do (-> (<u x limit) (:= (x (+ x 1))))))",
    )
    .unwrap();
    let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
    let inputs: Vec<&str> = gma.inputs().iter().map(|s| s.as_str()).collect();
    assert!(inputs.contains(&"x"));
    assert!(inputs.contains(&"limit"), "{inputs:?}");
}

#[test]
fn byte_target_on_undeclared_variable_defaults_to_leaf() {
    // Writing a byte of a parameter: storeb over its current value.
    let program = parse_program(
        "(\\procdecl f ((a long)) long
           (\\semi (:= ((\\selectb a 0) 7)) (:= (\\res a))))",
    )
    .unwrap();
    let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
    assert_eq!(gma.assigns[0].1.to_string(), "(storeb a 0 7)");
    let mut env = Env::new();
    env.set_word("a", 0x1234);
    assert_eq!(gma.evaluate(&env).unwrap().assigns[0].1, 0x1207);
}

#[test]
fn multiple_stores_chain_in_statement_order() {
    let program = parse_program(
        "(\\procdecl f ((p long*) (x long)) long
           (\\semi
             (:= ((\\deref p) x))
             (:= ((\\deref (+ p 8)) (+ x 1)))
             (:= (\\res x))))",
    )
    .unwrap();
    let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
    let mem = gma.mem.as_ref().unwrap().to_string();
    assert_eq!(mem, "(store (store M p x) (add64 p 8) (add64 x 1))");
    let mut env = Env::new();
    env.set_word("p", 64).set_word("x", 9);
    env.set_mem("M", HashMap::new());
    let eval = gma.evaluate(&env).unwrap();
    let memory = eval.memory.unwrap();
    assert_eq!(memory[&64], 9);
    assert_eq!(memory[&72], 10);
}

#[test]
fn source_program_proc_lookup() {
    let program = parse_program(
        "(\\procdecl a ((x long)) long (:= (\\res x)))
         (\\procdecl b ((x long)) long (:= (\\res (+ x 1))))",
    )
    .unwrap();
    assert!(program.proc("a").is_some());
    assert!(program.proc("b").is_some());
    assert!(program.proc("c").is_none());
    assert_eq!(program.procs.len(), 2);
    assert_eq!(program.proc("b").unwrap().params[0].0, Symbol::intern("x"));
}
