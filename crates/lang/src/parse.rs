//! Parser: s-expressions → [`SourceProgram`].

use denali_term::{sexpr, Sexpr, Symbol, Term};

use crate::ast::{ParseProgramError, Proc, SourceProgram, Stmt, Target};

type Result<T> = std::result::Result<T, ParseProgramError>;

fn err(message: impl Into<String>) -> ParseProgramError {
    ParseProgramError::new(message)
}

/// Operator spellings accepted in expressions, mapped to operation names.
fn operator_name(atom: &str) -> Option<&'static str> {
    Some(match atom {
        "+" => "add64",
        "-" => "sub64",
        "*" => "mul64",
        "<<" => "shl64",
        ">>" => "shr64",
        "&" => "and64",
        "|" => "or64",
        "^" => "xor64",
        "<" => "cmplt",
        "<u" => "cmpult",
        "<=" => "cmple",
        "<=u" => "cmpule",
        "=" => "cmpeq",
        _ => return None,
    })
}

/// Parses an expression. `deref` forms become `select(M, addr)`; `cast`
/// becomes the cast operation for the named type.
fn parse_expr(form: &Sexpr) -> Result<Term> {
    match form {
        Sexpr::Atom(a) => {
            if let Some(c) = denali_term::term::parse_integer(a) {
                Ok(Term::constant(c))
            } else {
                Ok(Term::leaf(Symbol::intern(a)))
            }
        }
        Sexpr::List(items) => {
            let (head, rest) = items.split_first().ok_or_else(|| err("empty expression"))?;
            let head = head
                .as_atom()
                .ok_or_else(|| err("expression head must be an atom"))?;
            match head {
                "deref" => {
                    let [addr] = rest else {
                        return Err(err("deref takes one address"));
                    };
                    let addr = parse_expr(addr)?;
                    Ok(Term::call("select", vec![Term::leaf("M"), addr]))
                }
                // A dereference annotated as likely to miss in the cache
                // (§6: memory-latency annotations from profiling). The
                // term is the same `select`; the annotation is recorded
                // during lowering via the marker wrapper.
                "derefm" => {
                    let [addr] = rest else {
                        return Err(err("derefm takes one address"));
                    };
                    let addr = parse_expr(addr)?;
                    Ok(Term::call(
                        "select",
                        vec![Term::leaf("M"), Term::call("missing", vec![addr])],
                    ))
                }
                "cast" => {
                    let [value, ty] = rest else {
                        return Err(err("cast takes value and type"));
                    };
                    let value = parse_expr(value)?;
                    let ty = ty
                        .as_atom()
                        .ok_or_else(|| err("cast type must be an atom"))?;
                    let op = match ty {
                        "short" => "castshort",
                        "int" => "castint",
                        "long" => return Ok(value),
                        other => return Err(err(format!("unknown cast type {other}"))),
                    };
                    Ok(Term::call(op, vec![value]))
                }
                _ => {
                    let name = operator_name(head).unwrap_or(head);
                    let args = rest.iter().map(parse_expr).collect::<Result<Vec<_>>>()?;
                    Ok(Term::call(name, args))
                }
            }
        }
    }
}

fn parse_target(form: &Sexpr) -> Result<Target> {
    match form {
        Sexpr::Atom(a) => Ok(Target::Var(Symbol::intern(a))),
        Sexpr::List(items) => {
            let (head, rest) = items.split_first().ok_or_else(|| err("empty target"))?;
            let head = head
                .as_atom()
                .ok_or_else(|| err("target head must be an atom"))?;
            match head {
                "deref" => {
                    let [addr] = rest else {
                        return Err(err("deref target takes one address"));
                    };
                    Ok(Target::Deref(parse_expr(addr)?))
                }
                "selectb" => {
                    let [var, index] = rest else {
                        return Err(err("byte target takes variable and index"));
                    };
                    let var = var
                        .as_atom()
                        .map(Symbol::intern)
                        .ok_or_else(|| err("byte target variable must be an atom"))?;
                    Ok(Target::Byte(var, parse_expr(index)?))
                }
                other => Err(err(format!("unknown target form {other}"))),
            }
        }
    }
}

fn parse_stmt(form: &Sexpr) -> Result<Stmt> {
    let items = form
        .as_list()
        .ok_or_else(|| err("statement must be a list"))?;
    let (head, rest) = items.split_first().ok_or_else(|| err("empty statement"))?;
    let head = head
        .as_atom()
        .ok_or_else(|| err("statement head must be an atom"))?;
    match head {
        "var" => {
            let [decl, body] = rest else {
                return Err(err("var takes a declaration and a body"));
            };
            let decl = decl
                .as_list()
                .ok_or_else(|| err("var declaration must be a list"))?;
            let name = decl
                .first()
                .and_then(Sexpr::as_atom)
                .map(Symbol::intern)
                .ok_or_else(|| err("var name must be an atom"))?;
            let init = match decl.len() {
                0 | 1 => return Err(err("var needs a name and type")),
                2 => None,
                3 => Some(parse_expr(&decl[2])?),
                _ => return Err(err("var declaration has too many parts")),
            };
            Ok(Stmt::Var {
                name,
                init,
                body: Box::new(parse_stmt(body)?),
            })
        }
        "semi" => Ok(Stmt::Seq(
            rest.iter().map(parse_stmt).collect::<Result<Vec<_>>>()?,
        )),
        ":=" => {
            let mut assigns = Vec::new();
            for pair in rest {
                let pair = pair
                    .as_list()
                    .ok_or_else(|| err(":= takes (target expr) pairs"))?;
                let [target, expr] = pair else {
                    return Err(err(":= pair must be (target expr)"));
                };
                assigns.push((parse_target(target)?, parse_expr(expr)?));
            }
            if assigns.is_empty() {
                return Err(err(":= needs at least one pair"));
            }
            Ok(Stmt::Assign(assigns))
        }
        "do" => {
            let (unroll, arrow) = match rest {
                [arrow] => (1usize, arrow),
                [unroll_form, arrow] => {
                    let parts = unroll_form
                        .as_list()
                        .ok_or_else(|| err("do unroll annotation must be (unroll k)"))?;
                    let [kw, k] = parts else {
                        return Err(err("do unroll annotation must be (unroll k)"));
                    };
                    if !kw.is_keyword("unroll") {
                        return Err(err("expected (unroll k)"));
                    }
                    // Unrolling duplicates the loop body k times during
                    // lowering, so an unbounded factor is a trivial
                    // denial of service (`(unroll 99999999)` never
                    // finishes lowering). 64 far exceeds any profitable
                    // unrolling on the modeled machines.
                    const MAX_UNROLL: usize = 64;
                    let k = k
                        .as_atom()
                        .and_then(|a| a.parse::<usize>().ok())
                        .filter(|&k| (1..=MAX_UNROLL).contains(&k))
                        .ok_or_else(|| err(format!("unroll factor must be in 1..={MAX_UNROLL}")))?;
                    (k, arrow)
                }
                _ => return Err(err("do takes a guarded body")),
            };
            let parts = arrow
                .as_list()
                .ok_or_else(|| err("do body must be (-> guard stmt)"))?;
            let [kw, guard, body] = parts else {
                return Err(err("do body must be (-> guard stmt)"));
            };
            if kw.as_atom() != Some("->") {
                return Err(err("do body must start with ->"));
            }
            Ok(Stmt::Loop {
                guard: parse_expr(guard)?,
                body: Box::new(parse_stmt(body)?),
                unroll,
            })
        }
        other => Err(err(format!("unknown statement {other}"))),
    }
}

fn parse_proc(items: &[Sexpr]) -> Result<Proc> {
    let [name, params, ret, body] = items else {
        return Err(err("procdecl takes name, params, return type, body"));
    };
    let name = name
        .as_atom()
        .map(Symbol::intern)
        .ok_or_else(|| err("procedure name must be an atom"))?;
    let params = params
        .as_list()
        .ok_or_else(|| err("parameter list must be a list"))?
        .iter()
        .map(|p| {
            let parts = p
                .as_list()
                .ok_or_else(|| err("parameter must be (name type)"))?;
            let [pname, ptype] = parts else {
                return Err(err("parameter must be (name type)"));
            };
            let pname = pname
                .as_atom()
                .map(Symbol::intern)
                .ok_or_else(|| err("parameter name must be an atom"))?;
            Ok((pname, ptype.to_string()))
        })
        .collect::<Result<Vec<_>>>()?;
    let ret = ret.as_atom().unwrap_or("long").to_owned();
    Ok(Proc {
        name,
        params,
        ret,
        body: parse_stmt(body)?,
    })
}

/// Parses a Denali source file.
///
/// # Errors
///
/// Returns the first syntax error encountered.
///
/// # Example
///
/// ```
/// let program = denali_lang::parse_program(
///     "(\\procdecl id ((a long)) long (:= (\\res a)))",
/// ).unwrap();
/// assert_eq!(program.procs.len(), 1);
/// ```
pub fn parse_program(text: &str) -> Result<SourceProgram> {
    let forms = sexpr::parse(text).map_err(|e| err(format!("syntax error: {e}")))?;
    let mut program = SourceProgram::default();
    for form in &forms {
        let stripped = form.strip_backslashes();
        let items = stripped
            .as_list()
            .ok_or_else(|| err(format!("top-level form must be a list: {form}")))?;
        let head = items
            .first()
            .and_then(Sexpr::as_atom)
            .ok_or_else(|| err("top-level form must start with a keyword"))?;
        match head {
            "procdecl" | "proc" => program.procs.push(parse_proc(&items[1..])?),
            "axiom" => program.axiom_forms.push(stripped.clone()),
            "opdecl" => {
                let [name, args, _ret] = &items[1..] else {
                    return Err(err("opdecl takes name, argument types, return type"));
                };
                let name = name
                    .as_atom()
                    .map(Symbol::intern)
                    .ok_or_else(|| err("opdecl name must be an atom"))?;
                let arity = args
                    .as_list()
                    .ok_or_else(|| err("opdecl argument types must be a list"))?
                    .len();
                program.opdecls.push((name, arity));
            }
            other => return Err(err(format!("unknown top-level form {other}"))),
        }
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_identity_proc() {
        let p = parse_program("(\\procdecl id ((a long)) long (:= (\\res a)))").unwrap();
        let id = p.proc("id").unwrap();
        assert_eq!(id.params.len(), 1);
        match &id.body {
            Stmt::Assign(assigns) => {
                assert_eq!(assigns.len(), 1);
                assert_eq!(assigns[0].0, Target::Var(Symbol::intern("res")));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn operator_spellings_map_to_ops() {
        let p =
            parse_program("(procdecl f ((a long) (b long)) long (:= (res (+ (* a 4) (< a b)))))")
                .unwrap();
        let Stmt::Assign(assigns) = &p.proc("f").unwrap().body else {
            panic!("expected assign");
        };
        assert_eq!(assigns[0].1.to_string(), "(add64 (mul64 a 4) (cmplt a b))");
    }

    #[test]
    fn parses_byteswap_style_byte_targets() {
        let p = parse_program(
            "(procdecl bs ((a long)) long
               (var (r long 0)
                 (semi
                   (:= ((selectb r 0) (selectb a 3)))
                   (:= (res r)))))",
        )
        .unwrap();
        let Stmt::Var { init, body, .. } = &p.proc("bs").unwrap().body else {
            panic!("expected var");
        };
        assert_eq!(init.as_ref().unwrap().to_string(), "0");
        let Stmt::Seq(stmts) = body.as_ref() else {
            panic!("expected seq");
        };
        let Stmt::Assign(assigns) = &stmts[0] else {
            panic!("expected assign");
        };
        assert!(matches!(assigns[0].0, Target::Byte(_, _)));
    }

    #[test]
    fn parses_deref_and_loop() {
        let p = parse_program(
            "(procdecl copy ((p long*) (q long*) (r long*)) long
               (do (-> (<u p r)
                 (:= ((deref p) (deref q)) (p (+ p 8)) (q (+ q 8))))))",
        )
        .unwrap();
        let Stmt::Loop {
            guard,
            body,
            unroll,
        } = &p.proc("copy").unwrap().body
        else {
            panic!("expected loop");
        };
        assert_eq!(*unroll, 1);
        assert_eq!(guard.to_string(), "(cmpult p r)");
        let Stmt::Assign(assigns) = body.as_ref() else {
            panic!("expected assign");
        };
        assert_eq!(assigns.len(), 3);
        assert!(matches!(assigns[0].0, Target::Deref(_)));
        assert_eq!(assigns[0].1.to_string(), "(select M q)");
    }

    #[test]
    fn parses_unroll_annotation() {
        let p = parse_program(
            "(procdecl f ((p long*)) long
               (var (s long 0)
                 (do (unroll 4) (-> (<u s 100) (:= (s (+ s 1)))))))",
        )
        .unwrap();
        let Stmt::Var { body, .. } = &p.proc("f").unwrap().body else {
            panic!()
        };
        let Stmt::Loop { unroll, .. } = body.as_ref() else {
            panic!("expected loop")
        };
        assert_eq!(*unroll, 4);
    }

    #[test]
    fn rejects_pathological_unroll_factors() {
        for k in ["0", "99999999", "x", "-1"] {
            let src = format!(
                "(procdecl f ((s long)) long
                   (do (unroll {k}) (-> (<u s 100) (:= (s (+ s 1))))))"
            );
            let err = parse_program(&src).unwrap_err();
            assert!(err.to_string().contains("unroll"), "{k}: {err}");
        }
    }

    #[test]
    fn collects_axioms_and_opdecls() {
        let p = parse_program(
            "(\\opdecl carry (long long) long)
             (\\axiom (forall (a b) (eq (carry a b) (\\cmpult (\\add64 a b) a))))
             (\\procdecl f ((a long)) long (:= (\\res a)))",
        )
        .unwrap();
        assert_eq!(p.opdecls, vec![(Symbol::intern("carry"), 2)]);
        assert_eq!(p.axiom_forms.len(), 1);
    }

    #[test]
    fn parses_cast() {
        let p = parse_program("(procdecl f ((a long)) short (:= (res (cast a short))))").unwrap();
        let Stmt::Assign(assigns) = &p.proc("f").unwrap().body else {
            panic!()
        };
        assert_eq!(assigns[0].1.to_string(), "(castshort a)");
    }

    #[test]
    fn rejects_malformed_programs() {
        for text in [
            "(procdecl)",
            "(procdecl f x long (:= (res 1)))",
            "(procdecl f () long (:= ))",
            "(procdecl f () long (unknown-stmt))",
            "(procdecl f () long (do (-> a)))",
            "(weird)",
            "(procdecl f () long (var (x) (:= (res 1))))",
        ] {
            assert!(parse_program(text).is_err(), "{text}");
        }
    }
}
