//! Automatic software pipelining of loads.
//!
//! The paper (§8): "Three techniques are required to generate efficient
//! code for this problem: loop unrolling, software pipelining (the
//! computation in one loop iteration of a result that is used on the
//! next iteration), and word parallelism. The current Denali prototype
//! implements loop unrolling. **We have a design for software pipelining,
//! but haven't implemented it yet.** In the meantime [...] we
//! hand-specified the required pipelining by introducing temporaries to
//! carry intermediate values across loop iterations."
//!
//! This module implements that design: it mechanizes exactly the Figure 6
//! hand transformation. For every memory read `select(M, a)` in a loop
//! body's right-hand sides, it introduces a loop-carried temporary `v`:
//!
//! * the body uses `v` instead of the load;
//! * the body reloads `v` from the *next iteration's* address `a'`
//!   (obtained by substituting the loop's own updates into `a`);
//! * the prologue initializes `v` with the first iteration's load.
//!
//! The transformation speculates one iteration of loads past the loop
//! exit — precisely what the paper's hand-written Figure 6 does, with
//! the same proviso about reading one stride beyond the data.

use denali_term::{Op, Symbol, Term};

use crate::lower::Gma;

/// Replaces every occurrence of `target` in `term` by `replacement`.
fn replace(term: &Term, target: &Term, replacement: &Term) -> Term {
    if term == target {
        return replacement.clone();
    }
    Term::new(
        term.op(),
        term.args()
            .iter()
            .map(|a| replace(a, target, replacement))
            .collect(),
    )
}

/// Substitutes the GMA's own updates into `term` (the "next iteration"
/// valuation): every target variable is replaced by its new value.
fn next_iteration(term: &Term, gma: &Gma) -> Term {
    match term.op() {
        Op::Sym(s) if term.args().is_empty() => {
            for (name, value) in &gma.assigns {
                if *name == s {
                    return value.clone();
                }
            }
            term.clone()
        }
        op => Term::new(
            op,
            term.args().iter().map(|a| next_iteration(a, gma)).collect(),
        ),
    }
}

/// Substitutes the prologue's assignments into `term` (the loop-entry
/// valuation).
fn at_entry(term: &Term, prologue: Option<&Gma>) -> Term {
    let Some(prologue) = prologue else {
        return term.clone();
    };
    match term.op() {
        Op::Sym(s) if term.args().is_empty() => {
            for (name, value) in &prologue.assigns {
                if *name == s {
                    return value.clone();
                }
            }
            term.clone()
        }
        op => Term::new(
            op,
            term.args()
                .iter()
                .map(|a| at_entry(a, Some(prologue)))
                .collect(),
        ),
    }
}

/// Collects the distinct `select(M, a)` subterms of `term` in first-seen
/// order.
fn collect_loads(term: &Term, out: &mut Vec<Term>) {
    if let Op::Sym(s) = term.op() {
        // Addresses can themselves contain loads (rare); the recursion
        // below covers them.
        if s.as_str() == "select"
            && term.args().len() == 2
            && term.args()[0] == Term::leaf("M")
            && !out.contains(term)
        {
            out.push(term.clone());
        }
    }
    for a in term.args() {
        collect_loads(a, out);
    }
}

/// Software-pipelines the loads of a loop-body GMA, returning the
/// transformed `(prologue, body)` pair.
///
/// Returns `None` (no transformation) when the body stores to memory
/// (moving loads across stores would need alias proofs) or contains no
/// loads.
pub fn pipeline_loads(prologue: Option<&Gma>, body: &Gma) -> Option<(Gma, Gma)> {
    if body.mem.is_some() {
        return None;
    }
    let mut loads = Vec::new();
    for (_, value) in &body.assigns {
        collect_loads(value, &mut loads);
    }
    if loads.is_empty() {
        return None;
    }

    let mut new_body = body.clone();
    new_body.name = format!("{}_pipelined", body.name);
    let mut new_prologue = prologue.cloned().unwrap_or(Gma {
        name: format!("{}_pre", body.name),
        guard: None,
        assigns: Vec::new(),
        mem: None,
        miss_addrs: Vec::new(),
    });
    if prologue.is_some() {
        new_prologue.name = format!("{}_pipelined", new_prologue.name);
    }

    for (k, load) in loads.iter().enumerate() {
        let carried = Symbol::intern(&format!("v_pl{k}"));
        let carried_term = Term::leaf(carried);
        // Body: use the carried value in every target expression.
        for (_, value) in new_body.assigns.iter_mut() {
            *value = replace(value, load, &carried_term);
        }
        // Body: reload from the next iteration's address. (Substitute
        // into the ORIGINAL body's updates, then replace this
        // iteration's loads by the carried temporaries so nested loads
        // also pipeline.)
        let mut next_load = next_iteration(load, body);
        for (j, other) in loads.iter().enumerate().take(k + 1) {
            next_load = replace(&next_load, other, &Term::leaf(format!("v_pl{j}")));
        }
        new_body.assigns.push((carried, next_load.clone()));
        // Prologue: first iteration's load at loop-entry values.
        let entry_load = at_entry(load, prologue);
        new_prologue.assigns.push((carried, entry_load.clone()));
        // Propagate cache-miss annotations to the moved loads.
        let addr = &load.args()[1];
        if body.miss_addrs.contains(addr) {
            let next_addr = next_load.args().get(1).cloned();
            if let Some(a) = next_addr {
                if !new_body.miss_addrs.contains(&a) {
                    new_body.miss_addrs.push(a);
                }
            }
            if let Some(a) = entry_load.args().get(1).cloned() {
                if !new_prologue.miss_addrs.contains(&a) {
                    new_prologue.miss_addrs.push(a);
                }
            }
        }
    }
    Some((new_prologue, new_body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_proc;
    use crate::parse::parse_program;
    use denali_term::value::Env;
    use std::collections::HashMap;

    fn lower(src: &str) -> Vec<Gma> {
        lower_proc(&parse_program(src).unwrap().procs[0]).unwrap()
    }

    const SERIAL_SUM: &str = "
(\\procdecl sum ((ptr long*) (ptrend long*)) long
  (\\var (s long 0)
    (\\semi
      (\\do (-> (<u ptr ptrend)
        (\\semi
          (:= (s (+ s (\\deref ptr))))
          (:= (ptr (+ ptr 8))))))
      (:= (\\res s)))))";

    #[test]
    fn introduces_carried_temporaries() {
        let gmas = lower(SERIAL_SUM);
        let (prologue, body) = pipeline_loads(Some(&gmas[0]), &gmas[1]).expect("pipelines");
        // The body no longer loads for its sum; it loads for next time.
        let sum_value = body
            .assigns
            .iter()
            .find(|(n, _)| n.as_str() == "s")
            .map(|(_, v)| v.to_string())
            .unwrap();
        assert_eq!(sum_value, "(add64 s v_pl0)");
        let reload = body
            .assigns
            .iter()
            .find(|(n, _)| n.as_str() == "v_pl0")
            .map(|(_, v)| v.to_string())
            .unwrap();
        assert_eq!(reload, "(select M (add64 ptr 8))");
        // The prologue preloads the first element (s := 0 kept).
        let init = prologue
            .assigns
            .iter()
            .find(|(n, _)| n.as_str() == "v_pl0")
            .map(|(_, v)| v.to_string())
            .unwrap();
        assert_eq!(init, "(select M ptr)");
    }

    #[test]
    fn pipelined_loop_computes_the_same_sums() {
        let gmas = lower(SERIAL_SUM);
        let (prologue, body) = pipeline_loads(Some(&gmas[0]), &gmas[1]).unwrap();

        // Drive both loops over a small buffer via reference evaluation.
        let base = 64u64;
        let n = 5u64;
        let memory: HashMap<u64, u64> = (0..=n).map(|i| (base + 8 * i, 10 + i)).collect();
        let run = |prologue: &Gma, body: &Gma| -> u64 {
            let mut state: HashMap<&str, u64> =
                HashMap::from([("ptr", base), ("ptrend", base + 8 * n)]);
            // Apply the prologue.
            let mut env = Env::new();
            for (&k, &v) in &state {
                env.set_word(k, v);
            }
            env.set_mem("M", memory.clone());
            let pre = prologue.evaluate(&env).unwrap();
            let mut values: HashMap<String, u64> = HashMap::new();
            for (name, value) in pre.assigns {
                values.insert(name.to_string(), value);
            }
            loop {
                let mut env = Env::new();
                for (&k, &v) in &state {
                    env.set_word(k, v);
                }
                for (k, &v) in &values {
                    env.set_word(k.as_str(), v);
                }
                env.set_mem("M", memory.clone());
                let out = body.evaluate(&env).unwrap();
                if out.guard == Some(0) {
                    break;
                }
                for (name, value) in out.assigns {
                    let name = name.to_string();
                    if name == "ptr" {
                        state.insert("ptr", value);
                    } else {
                        values.insert(name, value);
                    }
                }
            }
            values["s"]
        };

        let plain = run(&gmas[0], &gmas[1]);
        let pipelined = run(&prologue, &body);
        let expected: u64 = (0..n).map(|i| 10 + i).sum();
        assert_eq!(plain, expected);
        assert_eq!(pipelined, expected);
    }

    #[test]
    fn stores_disable_the_transform() {
        let gmas = lower(
            "(\\procdecl cp ((p long*) (q long*) (r long*)) long
               (\\do (-> (<u p r)
                 (:= ((\\deref p) (\\deref q)) (p (+ p 8)) (q (+ q 8))))))",
        );
        assert!(pipeline_loads(None, &gmas[0]).is_none());
    }

    #[test]
    fn loadless_loops_are_untouched() {
        let gmas = lower(
            "(\\procdecl f ((x long) (n long)) long
               (\\do (-> (<u x n) (:= (x (+ x 1))))))",
        );
        assert!(pipeline_loads(None, &gmas[0]).is_none());
    }

    #[test]
    fn unrolled_loop_pipelines_every_load() {
        // A 2x-unrolled sum has two loads; both become carried temps.
        let gmas = lower(
            "(\\procdecl sum2 ((ptr long*) (ptrend long*)) long
               (\\var (s long 0)
                 (\\do (\\unroll 2) (-> (<u ptr ptrend)
                   (\\semi
                     (:= (s (+ s (\\deref ptr))))
                     (:= (ptr (+ ptr 8))))))))",
        );
        let body_idx = gmas.iter().position(|g| g.guard.is_some()).unwrap();
        let (_, body) = pipeline_loads(gmas.first(), &gmas[body_idx]).unwrap();
        let carried: Vec<&str> = body
            .assigns
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| n.starts_with("v_pl"))
            .collect();
        assert_eq!(carried.len(), 2, "{carried:?}");
    }
}
