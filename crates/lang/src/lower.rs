//! Lowering procedures to guarded multi-assignments.

use std::collections::HashMap;

use denali_term::value::{Env, EvalError, Val};
use denali_term::{Op, Symbol, Term};

use crate::ast::{ParseProgramError, Proc, Stmt, Target};

/// A guarded multi-assignment: `G → (targets) := (newvals)` (§3).
///
/// Register targets are listed in `assigns`; an update to memory is the
/// single `mem` term (a chain of `store`s over the initial memory `M`),
/// matching the paper's transformation of `M[p] := x` into
/// `M := store(M, p, x)`.
#[derive(Clone, Debug)]
pub struct Gma {
    /// Diagnostic name (`proc_loop0`, `proc_final`, ...).
    pub name: String,
    /// The guard, or `None` for an unconditional GMA.
    pub guard: Option<Term>,
    /// Register targets and their new values.
    pub assigns: Vec<(Symbol, Term)>,
    /// New memory value, if the GMA stores.
    pub mem: Option<Term>,
    /// Addresses whose loads were annotated as likely cache misses
    /// (`\derefm`, the paper's §6 profiling annotations). The encoder
    /// gives these loads the miss latency instead of the hit latency.
    pub miss_addrs: Vec<Term>,
}

impl Gma {
    /// The goal expressions: "the machine code for a GMA must evaluate
    /// the boolean expression that is the guard [...] and must also
    /// evaluate the expressions on the right side of the assignment" (§5).
    pub fn goal_terms(&self) -> Vec<Term> {
        let mut goals = Vec::new();
        if let Some(g) = &self.guard {
            goals.push(g.clone());
        }
        goals.extend(self.assigns.iter().map(|(_, t)| t.clone()));
        if let Some(m) = &self.mem {
            goals.push(m.clone());
        }
        goals
    }

    /// The free input names of the GMA (leaf symbols of the goals),
    /// excluding the memory `M`.
    pub fn inputs(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mem = Symbol::intern("M");
        for goal in self.goal_terms() {
            collect_leaves(&goal, &mut out);
        }
        out.retain(|&s| s != mem);
        out
    }

    /// True if any goal reads or writes memory.
    pub fn touches_memory(&self) -> bool {
        self.mem.is_some()
            || self
                .goal_terms()
                .iter()
                .any(|g| mentions(g, Symbol::intern("M")))
    }

    /// Reference semantics: evaluates the guard, register targets, and
    /// memory under `env` (which must bind every input, and `M` if
    /// memory is touched).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (unbound inputs, unknown ops).
    pub fn evaluate(&self, env: &Env) -> Result<GmaEval, EvalError> {
        let guard = self.guard.as_ref().map(|g| env.eval_word(g)).transpose()?;
        let mut assigns = Vec::new();
        for (name, term) in &self.assigns {
            assigns.push((*name, env.eval_word(term)?));
        }
        let memory = match &self.mem {
            None => None,
            Some(m) => match env.eval(m)? {
                Val::Mem(map) => Some(map),
                Val::Word(_) => {
                    return Err(EvalError::custom("memory target evaluated to a word"));
                }
            },
        };
        Ok(GmaEval {
            guard,
            assigns,
            memory,
        })
    }
}

/// Result of [`Gma::evaluate`].
#[derive(Clone, Debug)]
pub struct GmaEval {
    /// Guard value (None if unconditional).
    pub guard: Option<u64>,
    /// New values of the register targets.
    pub assigns: Vec<(Symbol, u64)>,
    /// Final memory, if the GMA stores.
    pub memory: Option<HashMap<u64, u64>>,
}

fn collect_leaves(term: &Term, out: &mut Vec<Symbol>) {
    if let Op::Sym(s) = term.op() {
        if term.args().is_empty() {
            if !out.contains(&s) {
                out.push(s);
            }
            return;
        }
    }
    for a in term.args() {
        collect_leaves(a, out);
    }
}

/// Strips `missing(a)` annotation markers from a term, collecting the
/// annotated addresses.
fn strip_missing(term: &Term, out: &mut Vec<Term>) -> Term {
    if let Op::Sym(s) = term.op() {
        if s.as_str() == "missing" && term.args().len() == 1 {
            let addr = strip_missing(&term.args()[0], out);
            if !out.contains(&addr) {
                out.push(addr.clone());
            }
            return addr;
        }
    }
    Term::new(
        term.op(),
        term.args().iter().map(|a| strip_missing(a, out)).collect(),
    )
}

/// Builds a GMA, separating `missing` load annotations from the terms.
fn make_gma(
    name: String,
    guard: Option<Term>,
    assigns: Vec<(Symbol, Term)>,
    mem: Option<Term>,
) -> Gma {
    let mut miss_addrs = Vec::new();
    let guard = guard.map(|g| strip_missing(&g, &mut miss_addrs));
    let assigns = assigns
        .into_iter()
        .map(|(n, t)| (n, strip_missing(&t, &mut miss_addrs)))
        .collect();
    let mem = mem.map(|m| strip_missing(&m, &mut miss_addrs));
    Gma {
        name,
        guard,
        assigns,
        mem,
        miss_addrs,
    }
}

fn mentions(term: &Term, sym: Symbol) -> bool {
    match term.op() {
        Op::Sym(s) if s == sym && term.args().is_empty() => true,
        _ => term.args().iter().any(|a| mentions(a, sym)),
    }
}

#[derive(Clone)]
struct LowerState {
    /// Current symbolic value of each variable.
    vars: HashMap<Symbol, Term>,
    /// Current symbolic memory.
    mem: Term,
    /// True if `mem` differs from the initial `M`.
    mem_dirty: bool,
    /// Declaration order, for stable GMA target order.
    order: Vec<Symbol>,
}

impl LowerState {
    fn new() -> LowerState {
        LowerState {
            vars: HashMap::new(),
            mem: Term::leaf("M"),
            mem_dirty: false,
            order: Vec::new(),
        }
    }

    fn define(&mut self, name: Symbol, value: Term) {
        if !self.order.contains(&name) {
            self.order.push(name);
        }
        self.vars.insert(name, value);
    }

    /// Substitutes current variable values and the current memory into a
    /// source expression.
    fn subst(&self, term: &Term) -> Term {
        match term.op() {
            Op::Sym(s) if term.args().is_empty() => {
                if s == Symbol::intern("M") {
                    self.mem.clone()
                } else {
                    self.vars.get(&s).cloned().unwrap_or_else(|| term.clone())
                }
            }
            op => Term::new(op, term.args().iter().map(|a| self.subst(a)).collect()),
        }
    }

    /// Variables whose current value is not simply themselves.
    fn changed_vars(&self) -> Vec<(Symbol, Term)> {
        self.order
            .iter()
            .filter_map(|&name| {
                let value = self.vars.get(&name)?;
                (*value != Term::leaf(name)).then(|| (name, value.clone()))
            })
            .collect()
    }

    /// Resets every variable to an abstract input and memory to `M`.
    fn havoc(&mut self) {
        for (&name, value) in &mut self.vars {
            *value = Term::leaf(name);
        }
        self.mem = Term::leaf("M");
        self.mem_dirty = false;
    }
}

/// Lowers a procedure into its set of GMAs: optionally a prologue (the
/// straight-line code before a loop), one GMA per loop (unrolled by the
/// requested factor), and a final GMA computing `res` and any trailing
/// stores.
///
/// # Errors
///
/// Fails on unsupported nesting (a loop inside a loop body).
pub fn lower_proc(proc: &Proc) -> Result<Vec<Gma>, ParseProgramError> {
    let mut gmas = Vec::new();
    let mut state = LowerState::new();
    for &(name, _) in &proc.params {
        state.define(name, Term::leaf(name));
    }
    walk(&proc.body, &mut state, &mut gmas, proc.name.as_str(), false)?;

    // Final GMA: `res` plus any trailing memory update. Dead locals are
    // dropped.
    let res = Symbol::intern("res");
    let mut assigns = Vec::new();
    if let Some(value) = state.vars.get(&res) {
        if *value != Term::leaf(res) {
            assigns.push((res, value.clone()));
        }
    }
    let mem = state.mem_dirty.then(|| state.mem.clone());
    if !assigns.is_empty() || mem.is_some() {
        gmas.push(make_gma(format!("{}_final", proc.name), None, assigns, mem));
    }
    Ok(gmas)
}

fn walk(
    stmt: &Stmt,
    state: &mut LowerState,
    gmas: &mut Vec<Gma>,
    proc_name: &str,
    in_loop: bool,
) -> Result<(), ParseProgramError> {
    match stmt {
        Stmt::Var { name, init, body } => {
            let value = match init {
                Some(e) => state.subst(e),
                None => Term::leaf(*name),
            };
            state.define(*name, value);
            walk(body, state, gmas, proc_name, in_loop)
        }
        Stmt::Seq(stmts) => {
            for s in stmts {
                walk(s, state, gmas, proc_name, in_loop)?;
            }
            Ok(())
        }
        Stmt::Assign(assigns) => {
            // Parallel semantics: all right-hand sides (and target
            // addresses/indices) are evaluated in the old state.
            let mut var_updates: Vec<(Symbol, Term)> = Vec::new();
            let mut mem_updates: Vec<(Term, Term)> = Vec::new();
            for (target, expr) in assigns {
                let value = state.subst(expr);
                match target {
                    Target::Var(name) => var_updates.push((*name, value)),
                    Target::Byte(name, index) => {
                        let old = state
                            .vars
                            .get(name)
                            .cloned()
                            .unwrap_or_else(|| Term::leaf(*name));
                        let index = state.subst(index);
                        var_updates.push((*name, Term::call("storeb", vec![old, index, value])));
                    }
                    Target::Deref(addr) => {
                        mem_updates.push((state.subst(addr), value));
                    }
                }
            }
            for (name, value) in var_updates {
                state.define(name, value);
            }
            for (addr, value) in mem_updates {
                state.mem = Term::call("store", vec![state.mem.clone(), addr, value]);
                state.mem_dirty = true;
            }
            Ok(())
        }
        Stmt::Loop {
            guard,
            body,
            unroll,
        } => {
            if in_loop {
                return Err(ParseProgramError::new(
                    "nested loops are not supported; factor the inner loop into its own procedure",
                ));
            }
            // Flush the prologue (straight-line code before the loop).
            let changed = state.changed_vars();
            if !changed.is_empty() || state.mem_dirty {
                gmas.push(make_gma(
                    format!("{proc_name}_pre{}", gmas.len()),
                    None,
                    changed,
                    state.mem_dirty.then(|| state.mem.clone()),
                ));
                state.havoc();
            }
            // The loop body starts from abstract loop-carried values.
            let guard_term = state.subst(guard);
            for _ in 0..*unroll {
                walk(body, state, gmas, proc_name, true)?;
            }
            gmas.push(make_gma(
                format!("{proc_name}_loop{}", gmas.len()),
                Some(guard_term),
                state.changed_vars(),
                state.mem_dirty.then(|| state.mem.clone()),
            ));
            state.havoc();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn lower_one(text: &str) -> Vec<Gma> {
        let program = parse_program(text).unwrap();
        lower_proc(&program.procs[0]).unwrap()
    }

    #[test]
    fn straight_line_forward_substitution() {
        let gmas = lower_one(
            "(procdecl f ((a long)) long
               (var (t long (+ a 1))
                 (:= (res (* t t)))))",
        );
        assert_eq!(gmas.len(), 1);
        let gma = &gmas[0];
        assert!(gma.guard.is_none());
        assert_eq!(gma.assigns.len(), 1);
        assert_eq!(
            gma.assigns[0].1.to_string(),
            "(mul64 (add64 a 1) (add64 a 1))"
        );
        assert_eq!(gma.inputs(), vec![Symbol::intern("a")]);
    }

    #[test]
    fn byteswap_lowering_builds_storeb_chain() {
        let gmas = lower_one(
            "(procdecl bs ((a long)) long
               (var (r long 0)
                 (semi
                   (:= ((selectb r 0) (selectb a 3)))
                   (:= ((selectb r 1) (selectb a 2)))
                   (:= (res r)))))",
        );
        assert_eq!(gmas.len(), 1);
        let value = &gmas[0].assigns[0].1;
        assert_eq!(
            value.to_string(),
            "(storeb (storeb 0 0 (selectb a 3)) 1 (selectb a 2))"
        );
    }

    #[test]
    fn copy_loop_matches_paper_example() {
        // §3: p < r → (M, p, q) := (store(M, p, M[q]), p+8, q+8).
        let gmas = lower_one(
            "(procdecl copy ((p long*) (q long*) (r long*)) long
               (do (-> (<u p r)
                 (:= ((deref p) (deref q)) (p (+ p 8)) (q (+ q 8))))))",
        );
        assert_eq!(gmas.len(), 1);
        let gma = &gmas[0];
        assert_eq!(gma.guard.as_ref().unwrap().to_string(), "(cmpult p r)");
        assert_eq!(
            gma.mem.as_ref().unwrap().to_string(),
            "(store M p (select M q))"
        );
        let assigned: Vec<String> = gma.assigns.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(assigned, vec!["p", "q"]);
        assert!(gma.touches_memory());
    }

    #[test]
    fn parallel_assignment_uses_old_values() {
        // (x, y) := (x+y, x): the swap-flavored case from §7.
        let gmas = lower_one(
            "(procdecl f ((x long) (y long)) long
               (semi
                 (:= (x (+ x y)) (y x))
                 (:= (res (+ x y)))))",
        );
        let gma = &gmas[0];
        // res = (x+y) + x with the *original* x and y.
        assert_eq!(gma.assigns[0].1.to_string(), "(add64 (add64 x y) x)");
    }

    #[test]
    fn sequential_assignments_chain() {
        let gmas = lower_one(
            "(procdecl f ((x long)) long
               (semi
                 (:= (x (+ x 1)))
                 (:= (x (+ x 1)))
                 (:= (res x))))",
        );
        assert_eq!(gmas[0].assigns[0].1.to_string(), "(add64 (add64 x 1) 1)");
    }

    #[test]
    fn loop_splits_into_prologue_loop_and_final() {
        let gmas = lower_one(
            "(procdecl sum ((ptr long*) (ptrend long*)) long
               (var (s long 0)
                 (semi
                   (do (-> (<u ptr ptrend)
                     (semi
                       (:= (s (+ s (deref ptr))))
                       (:= (ptr (+ ptr 8))))))
                   (:= (res s)))))",
        );
        assert_eq!(gmas.len(), 3, "{gmas:?}");
        // Prologue: s := 0.
        assert_eq!(gmas[0].assigns[0].0, Symbol::intern("s"));
        assert_eq!(gmas[0].assigns[0].1.to_string(), "0");
        // Loop GMA: guard + s, ptr updates; reads memory.
        let body = &gmas[1];
        assert!(body.guard.is_some());
        assert_eq!(body.assigns.len(), 2);
        let value_of = |name: &str| {
            body.assigns
                .iter()
                .find(|(n, _)| *n == Symbol::intern(name))
                .map(|(_, t)| t.to_string())
                .unwrap()
        };
        assert_eq!(value_of("s"), "(add64 s (select M ptr))");
        assert_eq!(value_of("ptr"), "(add64 ptr 8)");
        assert!(body.touches_memory());
        assert!(body.mem.is_none());
        // Final: res = s (abstract after the loop).
        assert_eq!(gmas[2].assigns[0].1.to_string(), "s");
    }

    #[test]
    fn unrolled_loop_repeats_body() {
        let gmas = lower_one(
            "(procdecl f ((x long) (n long)) long
               (do (unroll 3) (-> (<u x n) (:= (x (+ x 1))))))",
        );
        let body = &gmas[0];
        assert_eq!(
            body.assigns[0].1.to_string(),
            "(add64 (add64 (add64 x 1) 1) 1)"
        );
    }

    #[test]
    fn nested_loops_are_rejected() {
        let program = parse_program(
            "(procdecl f ((x long)) long
               (do (-> (<u x 10) (do (-> (<u x 5) (:= (x (+ x 1))))))))",
        )
        .unwrap();
        assert!(lower_proc(&program.procs[0]).is_err());
    }

    #[test]
    fn gma_reference_evaluation() {
        let gmas = lower_one("(procdecl f ((a long)) long (:= (res (+ (* a 4) 1))))");
        let mut env = Env::new();
        env.set_word("a", 10);
        let eval = gmas[0].evaluate(&env).unwrap();
        assert_eq!(eval.guard, None);
        assert_eq!(eval.assigns, vec![(Symbol::intern("res"), 41)]);
        assert!(eval.memory.is_none());
    }

    #[test]
    fn gma_memory_evaluation() {
        let gmas = lower_one(
            "(procdecl st ((p long*) (x long)) long
               (semi (:= ((deref p) x)) (:= (res x))))",
        );
        let gma = &gmas[0];
        let mut env = Env::new();
        env.set_word("p", 64).set_word("x", 9);
        env.set_mem("M", HashMap::from([(64, 1), (72, 2)]));
        let eval = gma.evaluate(&env).unwrap();
        let memory = eval.memory.unwrap();
        assert_eq!(memory[&64], 9);
        assert_eq!(memory[&72], 2);
    }

    #[test]
    fn dead_locals_are_dropped_from_final_gma() {
        let gmas = lower_one(
            "(procdecl f ((a long)) long
               (var (dead long (+ a 2))
                 (:= (res a))))",
        );
        assert_eq!(gmas.len(), 1);
        assert_eq!(gmas[0].assigns.len(), 1);
        assert_eq!(gmas[0].assigns[0].0, Symbol::intern("res"));
    }
}
