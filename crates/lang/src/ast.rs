//! Abstract syntax of the Denali source language.

use std::fmt;

use denali_term::{Sexpr, Symbol, Term};

/// An assignment target.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Target {
    /// A variable or the result pseudo-variable `res`.
    Var(Symbol),
    /// `*addr` — a store to memory.
    Deref(Term),
    /// `name<i>` — a byte update, `name := storeb(name, i, value)`.
    Byte(Symbol, Term),
}

/// A statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `\var (name type init?) body`.
    Var {
        /// The declared name.
        name: Symbol,
        /// Initializer, if present.
        init: Option<Term>,
        /// Scope of the declaration.
        body: Box<Stmt>,
    },
    /// `\semi stmt...` — sequential composition.
    Seq(Vec<Stmt>),
    /// `:= (target expr)...` — parallel multi-assignment.
    Assign(Vec<(Target, Term)>),
    /// `\do (-> guard body)` — a loop, possibly unrolled.
    Loop {
        /// Loop guard (continue while true).
        guard: Term,
        /// Loop body.
        body: Box<Stmt>,
        /// Unroll factor (≥ 1).
        unroll: usize,
    },
}

/// A procedure definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Proc {
    /// Procedure name.
    pub name: Symbol,
    /// Parameter names (types are recorded but unused by codegen).
    pub params: Vec<(Symbol, String)>,
    /// Return type name.
    pub ret: String,
    /// Body.
    pub body: Stmt,
}

/// A parsed source file: procedures, program-specific axiom forms (kept
/// as s-expressions; the axiom parser lives in `denali-axioms`), and
/// operation declarations.
#[derive(Clone, Default, Debug)]
pub struct SourceProgram {
    /// Procedures in declaration order.
    pub procs: Vec<Proc>,
    /// Program-specific axioms, unparsed.
    pub axiom_forms: Vec<Sexpr>,
    /// Declared uninterpreted operations: name and arity.
    pub opdecls: Vec<(Symbol, usize)>,
}

impl SourceProgram {
    /// Finds a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&Proc> {
        let sym = Symbol::intern(name);
        self.procs.iter().find(|p| p.name == sym)
    }
}

/// Source syntax error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseProgramError {
    /// What went wrong.
    pub message: String,
}

impl ParseProgramError {
    pub(crate) fn new(message: impl Into<String>) -> ParseProgramError {
        ParseProgramError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseProgramError {}
