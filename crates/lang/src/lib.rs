#![warn(missing_docs)]

//! The Denali source language and its lowering to guarded
//! multi-assignments (GMAs).
//!
//! The paper (§2): "The input to Denali is a program in a language with
//! a low-level machine model, similar to C or assembly language. [...]
//! it is intended to be used for writing the body of an inner loop, for
//! example, or for writing short subroutines." §3 describes the
//! translation strategy: "Each procedure in the input is converted into
//! a set of guarded multi-assignments, which are the inputs to the
//! crucial inner subroutine of the code generator."
//!
//! The concrete syntax is the LISP-like form of the paper's Figure 6
//! (the parenthesized syntax its prototype required). Supported forms:
//!
//! ```text
//! (\opdecl name (argtype...) rettype)
//! (\axiom ...)                        ; program-specific axioms
//! (\procdecl name ((param type)...) rettype body)
//! ; statements:
//! (\var (name type init?) body)
//! (\semi stmt...)
//! (:= (target expr)...)               ; parallel multi-assignment
//! (\do (-> guard body))               ; loop
//! (\do (\unroll k) (-> guard body))   ; unrolled loop
//! ; targets: name | (\deref addr) | (\selectb name i)   ; byte update
//! ; expressions: s-expressions over +,-,*,<,<u,<=,=,<<,>>,&,^,|,
//! ;   (\deref addr), (\selectb w i), \extwl, \cmpult, ... and any
//! ;   declared operation
//! ```
//!
//! Pointer dereferences are lowered to `select`/`store` on the memory
//! `M` exactly as in §3's copy-loop example:
//!
//! ```text
//! p < r → (*p, p, q) := (*q, p+8, q+8)
//! ```
//!
//! becomes `p < r → (M, p, q) := (store(M, p, M[q]), p+8, q+8)`.

mod ast;
mod lower;
mod parse;
mod pipeline;

pub use ast::{ParseProgramError, Proc, SourceProgram, Stmt, Target};
pub use lower::{lower_proc, Gma, GmaEval};
pub use parse::parse_program;
pub use pipeline::pipeline_loads;
