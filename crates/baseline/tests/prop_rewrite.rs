//! Property tests for the conventional rewriting compiler: random
//! expressions must compile to validated schedules that simulate to the
//! reference value.

use std::collections::HashMap;

use denali_arch::{validate, Machine, Simulator};
use denali_baseline::rewrite_compile;
use denali_lang::{lower_proc, parse_program};
use denali_prng::{forall, Rng};
use denali_term::value::Env;
use denali_term::{Symbol, Term};

fn random_expr(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => Term::leaf("a"),
            1 => Term::leaf("b"),
            _ => Term::constant(rng.next_u64()),
        };
    }
    match rng.below(12) {
        0 => Term::call(
            "add64",
            vec![random_expr(rng, depth - 1), random_expr(rng, depth - 1)],
        ),
        1 => Term::call(
            "sub64",
            vec![random_expr(rng, depth - 1), random_expr(rng, depth - 1)],
        ),
        2 => Term::call(
            "mul64",
            vec![random_expr(rng, depth - 1), random_expr(rng, depth - 1)],
        ),
        3 => Term::call(
            "and64",
            vec![random_expr(rng, depth - 1), random_expr(rng, depth - 1)],
        ),
        4 => Term::call(
            "or64",
            vec![random_expr(rng, depth - 1), random_expr(rng, depth - 1)],
        ),
        5 => Term::call(
            "xor64",
            vec![random_expr(rng, depth - 1), random_expr(rng, depth - 1)],
        ),
        6 => Term::call("not64", vec![random_expr(rng, depth - 1)]),
        7 => Term::call(
            "shl64",
            vec![random_expr(rng, depth - 1), Term::constant(rng.below(64))],
        ),
        8 => Term::call(
            "shr64",
            vec![random_expr(rng, depth - 1), Term::constant(rng.below(64))],
        ),
        9 => Term::call(
            "selectb",
            vec![random_expr(rng, depth - 1), Term::constant(rng.below(8))],
        ),
        10 => Term::call(
            "storeb",
            vec![
                random_expr(rng, depth - 1),
                Term::constant(rng.below(8)),
                random_expr(rng, depth - 1),
            ],
        ),
        _ => Term::call(
            "cmpult",
            vec![random_expr(rng, depth - 1), random_expr(rng, depth - 1)],
        ),
    }
}

#[test]
fn rewrite_baseline_is_correct() {
    forall("rewrite_baseline_is_correct", 96, |rng| {
        let goal = random_expr(rng, 4);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let source = format!("(procdecl f ((a long) (b long)) long (:= (res {goal})))");
        let program = parse_program(&source).unwrap();
        let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
        let machine = Machine::ev6();
        let compiled = rewrite_compile(&gma, &machine).expect("baseline compiles");
        validate(&compiled, &machine).expect("valid schedule");

        let mut env = Env::new();
        env.set_word("a", a);
        env.set_word("b", b);
        let expected = env.eval_word(&goal).unwrap();

        let sim = Simulator::new(&machine);
        let mut inputs = Vec::new();
        for (name, value) in [("a", a), ("b", b)] {
            if compiled.input_reg(Symbol::intern(name)).is_some() {
                inputs.push((name, value));
            }
        }
        let outcome = sim.run_named(&compiled, &inputs, HashMap::new()).unwrap();
        let res = compiled.output_reg(Symbol::intern("res")).unwrap();
        assert_eq!(
            outcome.regs[&res],
            expected,
            "goal {} a={:#x} b={:#x}\n{}",
            goal,
            a,
            b,
            compiled.listing(4)
        );
    });
}

#[test]
fn reassociation_never_changes_values() {
    forall("reassociation_never_changes_values", 96, |rng| {
        // A long or-chain: reassociation balances it; values unchanged.
        let n = rng.range(2, 9);
        let seed = rng.next_u64();
        let mut term = Term::leaf("a");
        let mut state = seed | 1;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            term = Term::call("or64", vec![term, Term::constant(state & 0xff)]);
        }
        let source = format!("(procdecl f ((a long)) long (:= (res {term})))");
        let program = parse_program(&source).unwrap();
        let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
        let machine = Machine::ev6();
        let compiled = rewrite_compile(&gma, &machine).unwrap();
        let mut env = Env::new();
        env.set_word("a", seed);
        let expected = env.eval_word(&term).unwrap();
        let sim = Simulator::new(&machine);
        let outcome = sim
            .run_named(&compiled, &[("a", seed)], HashMap::new())
            .unwrap();
        let res = compiled.output_reg(Symbol::intern("res")).unwrap();
        assert_eq!(outcome.regs[&res], expected);
    });
}
