//! Property tests for the conventional rewriting compiler: random
//! expressions must compile to validated schedules that simulate to the
//! reference value.

use std::collections::HashMap;

use denali_arch::{validate, Machine, Simulator};
use denali_baseline::rewrite_compile;
use denali_lang::{lower_proc, parse_program};
use denali_term::value::Env;
use denali_term::{Symbol, Term};
use proptest::prelude::*;

fn expr_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        Just(Term::leaf("a")),
        Just(Term::leaf("b")),
        (0u64..=u64::MAX).prop_map(Term::constant),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("add64", vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("sub64", vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("mul64", vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("and64", vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("or64", vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("xor64", vec![x, y])),
            inner.clone().prop_map(|x| Term::call("not64", vec![x])),
            (inner.clone(), 0u64..64)
                .prop_map(|(x, n)| Term::call("shl64", vec![x, Term::constant(n)])),
            (inner.clone(), 0u64..64)
                .prop_map(|(x, n)| Term::call("shr64", vec![x, Term::constant(n)])),
            (inner.clone(), 0u64..8)
                .prop_map(|(x, i)| Term::call("selectb", vec![x, Term::constant(i)])),
            (inner.clone(), 0u64..8, inner.clone()).prop_map(|(w, i, x)| {
                Term::call("storeb", vec![w, Term::constant(i), x])
            }),
            (inner.clone(), inner).prop_map(|(x, y)| Term::call("cmpult", vec![x, y])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rewrite_baseline_is_correct(goal in expr_strategy(), a: u64, b: u64) {
        let source = format!("(procdecl f ((a long) (b long)) long (:= (res {goal})))");
        let program = parse_program(&source).unwrap();
        let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
        let machine = Machine::ev6();
        let compiled = rewrite_compile(&gma, &machine).expect("baseline compiles");
        validate(&compiled, &machine).expect("valid schedule");

        let mut env = Env::new();
        env.set_word("a", a);
        env.set_word("b", b);
        let expected = env.eval_word(&goal).unwrap();

        let sim = Simulator::new(&machine);
        let mut inputs = Vec::new();
        for (name, value) in [("a", a), ("b", b)] {
            if compiled.input_reg(Symbol::intern(name)).is_some() {
                inputs.push((name, value));
            }
        }
        let outcome = sim.run_named(&compiled, &inputs, HashMap::new()).unwrap();
        let res = compiled.output_reg(Symbol::intern("res")).unwrap();
        prop_assert_eq!(
            outcome.regs[&res],
            expected,
            "goal {} a={:#x} b={:#x}\n{}",
            goal, a, b, compiled.listing(4)
        );
    }

    #[test]
    fn reassociation_never_changes_values(n in 2usize..9, seed: u64) {
        // A long or-chain: reassociation balances it; values unchanged.
        let mut term = Term::leaf("a");
        let mut state = seed | 1;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            term = Term::call("or64", vec![term, Term::constant(state & 0xff)]);
        }
        let source = format!("(procdecl f ((a long)) long (:= (res {term})))");
        let program = parse_program(&source).unwrap();
        let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
        let machine = Machine::ev6();
        let compiled = rewrite_compile(&gma, &machine).unwrap();
        let mut env = Env::new();
        env.set_word("a", seed);
        let expected = env.eval_word(&term).unwrap();
        let sim = Simulator::new(&machine);
        let outcome = sim
            .run_named(&compiled, &[("a", seed)], HashMap::new())
            .unwrap();
        let res = compiled.output_reg(Symbol::intern("res")).unwrap();
        prop_assert_eq!(outcome.regs[&res], expected);
    }
}
