//! Massalin-style brute-force superoptimization.
//!
//! Enumerates straight-line register-to-register instruction sequences
//! in order of increasing length, testing each against a vector of
//! sample inputs and verifying survivors on a larger random suite. This
//! is the search strategy Denali's goal-directed approach replaces; the
//! E6 benchmark measures how its cost explodes with sequence length
//! ("Brute-force enumeration of all code sequences is glacially slow",
//! §1.1).

use std::time::{Duration, Instant};

use denali_prng::Rng;
use denali_term::{ops, Symbol};

/// An operand of a brute-force instruction: a value slot (input or
/// earlier result) or a small literal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BruteOperand {
    /// Index into the value stack: `0..num_inputs` are the inputs,
    /// later slots are instruction results in order.
    Slot(usize),
    /// A literal constant.
    Literal(u64),
}

/// One enumerated instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BruteInstr {
    /// Opcode (must have word semantics in the operation registry).
    pub op: Symbol,
    /// Operands.
    pub operands: Vec<BruteOperand>,
}

/// A found program: instructions in order; the last one's result is the
/// program's output.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BruteProgram {
    /// The instructions.
    pub instrs: Vec<BruteInstr>,
    /// Number of input slots.
    pub num_inputs: usize,
}

impl BruteProgram {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Evaluates the program on the given inputs.
    pub fn eval(&self, inputs: &[u64]) -> u64 {
        let mut slots: Vec<u64> = inputs.to_vec();
        for instr in &self.instrs {
            let args: Vec<u64> = instr
                .operands
                .iter()
                .map(|o| match o {
                    BruteOperand::Slot(s) => slots[*s],
                    BruteOperand::Literal(v) => *v,
                })
                .collect();
            let value = ops::eval(instr.op, &args).expect("brute ops have semantics");
            slots.push(value);
        }
        *slots.last().unwrap_or(&0)
    }

    /// Renders the program as readable text.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            let _ = write!(out, "v{} = {}", self.num_inputs + i, instr.op);
            for o in &instr.operands {
                match o {
                    BruteOperand::Slot(s) => {
                        let _ = write!(out, " v{s}");
                    }
                    BruteOperand::Literal(v) => {
                        let _ = write!(out, " #{v}");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Search configuration.
#[derive(Clone, Debug)]
pub struct BruteConfig {
    /// Opcode repertoire (defaults to a compact register-to-register
    /// subset, like Massalin's memory-free enumeration).
    pub ops: Vec<Symbol>,
    /// Literal constants the enumerator may use as second operands.
    pub literals: Vec<u64>,
    /// Maximum sequence length to try.
    pub max_len: usize,
    /// Number of test vectors used for the fast filter.
    pub tests: usize,
    /// Number of random vectors used to verify survivors.
    pub verify: usize,
    /// Give up after this much wall-clock time (the paper waited days
    /// for the GNU superoptimizer; we are less patient).
    pub timeout: Duration,
    /// RNG seed for test-vector generation (determinism).
    pub seed: u64,
}

impl Default for BruteConfig {
    fn default() -> BruteConfig {
        BruteConfig {
            ops: [
                "addq", "subq", "and", "bis", "xor", "sll", "srl", "extbl", "insbl", "mskbl",
                "zapnot", "cmpult", "cmpeq",
            ]
            .iter()
            .map(|s| Symbol::intern(s))
            .collect(),
            literals: vec![0, 1, 2, 3, 4, 8, 16, 24, 255],
            max_len: 4,
            tests: 16,
            verify: 10_000,
            timeout: Duration::from_secs(60),
            seed: 0xD15EA5E,
        }
    }
}

/// Search counters.
#[derive(Clone, Copy, Default, Debug)]
pub struct BruteStats {
    /// Instruction sequences fully constructed and tested.
    pub sequences_tested: u64,
    /// Candidates that passed the fast tests but failed verification.
    pub false_positives: u64,
    /// Wall-clock time spent, per completed length.
    pub total_time: Duration,
    /// True if the search ended because of the timeout.
    pub timed_out: bool,
}

/// Searches for the shortest instruction sequence computing `target`.
///
/// `target` is the specification: a function from the `num_inputs` input
/// words to the result word. Returns the found program (verified on
/// `config.verify` random vectors) and the search statistics; `None` if
/// no program within `config.max_len` instructions was found (or the
/// timeout expired).
pub fn brute_search(
    target: &dyn Fn(&[u64]) -> u64,
    num_inputs: usize,
    config: &BruteConfig,
) -> (Option<BruteProgram>, BruteStats) {
    let mut rng = Rng::new(config.seed);
    let mut tests: Vec<Vec<u64>> = Vec::new();
    // A few adversarial vectors plus random ones.
    for special in [0u64, 1, u64::MAX, 0x0123_4567_89ab_cdef] {
        tests.push(vec![special; num_inputs]);
    }
    while tests.len() < config.tests.max(4) {
        tests.push((0..num_inputs).map(|_| rng.next_u64()).collect());
    }
    let expected: Vec<u64> = tests.iter().map(|t| target(t)).collect();

    let mut stats = BruteStats::default();
    let start = Instant::now();

    for len in 1..=config.max_len {
        let mut state = SearchState {
            config,
            target,
            tests: &tests,
            expected: &expected,
            // One row of slot values per test vector.
            values: tests.clone(),
            instrs: Vec::new(),
            stats: &mut stats,
            start,
            rng: Rng::new(config.seed ^ 0x5eed),
            num_inputs,
        };
        if let Some(program) = state.extend(len) {
            stats.total_time = start.elapsed();
            return (Some(program), stats);
        }
        if start.elapsed() > config.timeout {
            stats.timed_out = true;
            break;
        }
    }
    stats.total_time = start.elapsed();
    (None, stats)
}

struct SearchState<'a> {
    config: &'a BruteConfig,
    target: &'a dyn Fn(&[u64]) -> u64,
    tests: &'a [Vec<u64>],
    expected: &'a [u64],
    /// `values[t]` is the slot stack evaluated on test vector `t`.
    values: Vec<Vec<u64>>,
    instrs: Vec<BruteInstr>,
    stats: &'a mut BruteStats,
    start: Instant,
    rng: Rng,
    num_inputs: usize,
}

impl SearchState<'_> {
    fn extend(&mut self, remaining: usize) -> Option<BruteProgram> {
        if self.start.elapsed() > self.config.timeout {
            self.stats.timed_out = true;
            return None;
        }
        if remaining == 0 {
            self.stats.sequences_tested += 1;
            // The last slot must equal the target on every test.
            let ok = self
                .values
                .iter()
                .zip(self.expected)
                .all(|(slots, &want)| *slots.last().expect("nonempty") == want);
            if !ok {
                return None;
            }
            let program = BruteProgram {
                instrs: self.instrs.clone(),
                num_inputs: self.num_inputs,
            };
            if self.verify(&program) {
                return Some(program);
            }
            self.stats.false_positives += 1;
            return None;
        }

        let slots = self.values[0].len();
        let op_list = self.config.ops.clone();
        for op in op_list {
            let info = ops::info(op).expect("repertoire op");
            let arity = info.arity;
            // Operand choices: slots for every position; literals only in
            // the second position (the Alpha literal field).
            let mut choices: Vec<Vec<BruteOperand>> = vec![Vec::new(); arity];
            for (pos, choice) in choices.iter_mut().enumerate() {
                for s in 0..slots {
                    choice.push(BruteOperand::Slot(s));
                }
                if pos == 1 {
                    for &l in &self.config.literals {
                        choice.push(BruteOperand::Literal(l));
                    }
                }
            }
            let mut operand_sets = vec![Vec::new()];
            for choice in &choices {
                let mut next = Vec::new();
                for partial in &operand_sets {
                    for &o in choice {
                        let mut p = partial.clone();
                        p.push(o);
                        next.push(p);
                    }
                }
                operand_sets = next;
            }
            for operands in operand_sets {
                // Commutative-op canonical order: first operand slot index
                // must not exceed a second operand slot.
                if is_commutative(op) {
                    if let (BruteOperand::Slot(a), BruteOperand::Slot(b)) =
                        (operands[0], *operands.get(1).unwrap_or(&operands[0]))
                    {
                        if a > b {
                            continue;
                        }
                    }
                }
                // The sequence's *last* instruction must use the newest
                // slot somewhere, otherwise the previous instruction was
                // dead (prunes a large class of redundant sequences).
                if !self.instrs.is_empty() {
                    let newest = slots - 1;
                    let uses_newest = operands
                        .iter()
                        .any(|o| matches!(o, BruteOperand::Slot(s) if *s == newest));
                    if remaining == 1 && !uses_newest && newest >= self.num_inputs {
                        continue;
                    }
                }
                // Evaluate on every test vector; prune values identical to
                // an existing slot on all tests (redundant instruction).
                let mut new_values = Vec::with_capacity(self.tests.len());
                for slots_row in &self.values {
                    let args: Vec<u64> = operands
                        .iter()
                        .map(|o| match o {
                            BruteOperand::Slot(s) => slots_row[*s],
                            BruteOperand::Literal(v) => *v,
                        })
                        .collect();
                    new_values.push(ops::eval(op, &args).expect("op evaluates"));
                }
                let redundant = (0..slots).any(|s| {
                    self.values
                        .iter()
                        .zip(&new_values)
                        .all(|(row, &nv)| row[s] == nv)
                });
                if redundant {
                    continue;
                }
                // Push and recurse.
                for (row, &nv) in self.values.iter_mut().zip(&new_values) {
                    row.push(nv);
                }
                self.instrs.push(BruteInstr {
                    op,
                    operands: operands.clone(),
                });
                let found = self.extend(remaining - 1);
                self.instrs.pop();
                for row in self.values.iter_mut() {
                    row.pop();
                }
                if found.is_some() {
                    return found;
                }
            }
        }
        None
    }

    fn verify(&mut self, program: &BruteProgram) -> bool {
        for _ in 0..self.config.verify {
            let inputs: Vec<u64> = (0..self.num_inputs).map(|_| self.rng.next_u64()).collect();
            if program.eval(&inputs) != (self.target)(&inputs) {
                return false;
            }
        }
        true
    }
}

fn is_commutative(op: Symbol) -> bool {
    matches!(
        op.as_str(),
        "addq" | "mulq" | "and" | "bis" | "xor" | "cmpeq" | "eqv"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(max_len: usize) -> BruteConfig {
        BruteConfig {
            max_len,
            verify: 500,
            timeout: Duration::from_secs(30),
            ..BruteConfig::default()
        }
    }

    #[test]
    fn finds_single_instruction_identities() {
        // x * 4 + 1... too long for one instr, but x + x is addq x, x.
        let (found, stats) = brute_search(&|i| i[0].wrapping_add(i[0]), 1, &quick_config(1));
        let program = found.expect("found");
        assert_eq!(program.len(), 1);
        assert!(stats.sequences_tested > 0);
        assert_eq!(program.eval(&[21]), 42);
    }

    #[test]
    fn finds_two_instruction_sequence() {
        // (x & 0xff) << 8: extbl then insbl-at-1, or and+sll.
        let target = |i: &[u64]| (i[0] & 0xff) << 8;
        let (found, _) = brute_search(&target, 1, &quick_config(2));
        let program = found.expect("found");
        assert!(program.len() <= 2);
        for x in [0u64, 0x1234, u64::MAX] {
            assert_eq!(program.eval(&[x]), target(&[x]));
        }
    }

    #[test]
    fn shortest_length_is_preferred() {
        // x ^ y is one instruction even when max_len allows more.
        let target = |i: &[u64]| i[0] ^ i[1];
        let (found, _) = brute_search(&target, 2, &quick_config(3));
        assert_eq!(found.expect("found").len(), 1);
    }

    #[test]
    fn reports_failure_within_budget() {
        // A 4-byte swap cannot be done in 2 instructions.
        let target = |i: &[u64]| {
            let a = i[0];
            ((a & 0xff) << 24)
                | (((a >> 8) & 0xff) << 16)
                | (((a >> 16) & 0xff) << 8)
                | ((a >> 24) & 0xff)
        };
        let (found, stats) = brute_search(&target, 1, &quick_config(2));
        assert!(found.is_none());
        assert!(stats.sequences_tested > 100);
    }

    #[test]
    fn timeout_is_respected() {
        let config = BruteConfig {
            max_len: 12,
            timeout: Duration::from_millis(50),
            ..BruteConfig::default()
        };
        // An impossible target (non-deterministic in the inputs is not
        // expressible): use a hash-like mix that needs many instructions.
        let target = |i: &[u64]| i[0].wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
        let (found, stats) = brute_search(&target, 1, &config);
        assert!(found.is_none());
        assert!(stats.timed_out);
        assert!(stats.total_time < Duration::from_secs(10));
    }

    #[test]
    fn literal_operands_are_usable() {
        // x + 8.
        let (found, _) = brute_search(&|i| i[0].wrapping_add(8), 1, &quick_config(1));
        let program = found.expect("found");
        assert_eq!(program.len(), 1);
        assert_eq!(program.eval(&[100]), 108);
    }
}
