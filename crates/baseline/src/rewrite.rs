//! A conventional code generator: bottom-up rewriting plus greedy list
//! scheduling.
//!
//! This is the stand-in for the production C compiler of §8 ("with some
//! effort, we were able to coax the production C compiler to tie this
//! result"). It does what a good conventional compiler does — canonical
//! strength reduction, constant folding, common-subexpression sharing,
//! and a greedy critical-path list schedule on the machine model — but
//! commits to one rewrite per node instead of exploring all equivalent
//! forms, which is precisely the weakness the paper's E-graph approach
//! removes (§5's "thorny problems for rewriting engines").

use std::collections::HashMap;
use std::fmt;

use denali_arch::{Instr, Machine, Operand, Program, Reg, Unit};
use denali_lang::Gma;
use denali_term::{ops, Op, Symbol, Term};

/// Rewriting/scheduling failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RewriteError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RewriteError {}

fn err(message: impl Into<String>) -> RewriteError {
    RewriteError {
        message: message.into(),
    }
}

type NodeId = usize;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Node {
    Input(Symbol),
    Const(u64),
    /// Machine operation over nodes; the bool per operand marks a
    /// literal immediate (stored as a Const node that needs no register).
    Op(Symbol, Vec<NodeId>),
    Load {
        base: NodeId,
        disp: u64,
    },
    Store {
        value: NodeId,
        base: NodeId,
        disp: u64,
    },
}

#[derive(Default)]
struct Dag {
    nodes: Vec<Node>,
    memo: HashMap<Term, NodeId>,
    hashcons: HashMap<Node, NodeId>,
}

impl Dag {
    fn add(&mut self, node: Node) -> NodeId {
        if let Some(&id) = self.hashcons.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.hashcons.insert(node, id);
        id
    }

    fn constant_of(&self, id: NodeId) -> Option<u64> {
        match self.nodes[id] {
            Node::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Bitmask of bytes (bit `i` = byte `i`) statically known to be zero
    /// — the value-range analysis a conventional compiler uses to drop
    /// redundant byte masks.
    fn zero_bytes(&self, id: NodeId) -> u8 {
        match &self.nodes[id] {
            Node::Const(c) => {
                let mut mask = 0u8;
                for byte in 0..8 {
                    if (c >> (8 * byte)) & 0xff == 0 {
                        mask |= 1 << byte;
                    }
                }
                mask
            }
            Node::Op(op, args) => match op.as_str() {
                "and" => self.zero_bytes(args[0]) | self.zero_bytes(args[1]),
                "bis" => self.zero_bytes(args[0]) & self.zero_bytes(args[1]),
                "zapnot" => match self.constant_of(args[1]) {
                    Some(m) => self.zero_bytes(args[0]) | !(m as u8),
                    None => 0,
                },
                // extbl leaves only byte 0 possibly nonzero.
                "extbl" => 0b1111_1110,
                "sll" => match self.constant_of(args[1]) {
                    Some(n) if n % 8 == 0 && n < 64 => {
                        let k = (n / 8) as u8;
                        // Low k bytes become zero; the rest shift up.
                        (self.zero_bytes(args[0]) << k) | ((1u8 << k) - 1)
                    }
                    _ => 0,
                },
                "srl" => match self.constant_of(args[1]) {
                    Some(n) if n % 8 == 0 && n < 64 => {
                        let k = (n / 8) as u32;
                        // High k bytes become zero; the rest shift down.
                        (self.zero_bytes(args[0]) >> k) | !(0xffu8 >> k)
                    }
                    _ => 0,
                },
                _ => 0,
            },
            _ => 0,
        }
    }
}

/// Deterministic bottom-up rewriting of a goal term into machine nodes.
fn rewrite(dag: &mut Dag, term: &Term) -> Result<NodeId, RewriteError> {
    if let Some(&id) = dag.memo.get(term) {
        return Ok(id);
    }
    let id = rewrite_uncached(dag, term)?;
    dag.memo.insert(term.clone(), id);
    Ok(id)
}

fn rewrite_uncached(dag: &mut Dag, term: &Term) -> Result<NodeId, RewriteError> {
    let op = match term.op() {
        Op::Const(c) => return Ok(dag.add(Node::Const(c))),
        Op::Var(v) => return Err(err(format!("pattern variable ?{v} in goal"))),
        Op::Sym(s) => s,
    };
    if term.args().is_empty() {
        return Ok(dag.add(Node::Input(op)));
    }
    let name = op.as_str();

    // Memory operations.
    if name == "select" || name == "ldq" {
        let (base, disp) = rewrite_address(dag, &term.args()[1])?;
        return Ok(dag.add(Node::Load { base, disp }));
    }
    if name == "store" || name == "stq" {
        let value = rewrite(dag, &term.args()[2])?;
        let (base, disp) = rewrite_address(dag, &term.args()[1])?;
        // The memory argument chain is preserved by scheduling order.
        rewrite(dag, &term.args()[0])?;
        return Ok(dag.add(Node::Store { value, base, disp }));
    }

    let args = term
        .args()
        .iter()
        .map(|a| rewrite(dag, a))
        .collect::<Result<Vec<_>, _>>()?;

    // Constant folding.
    let const_args: Option<Vec<u64>> = args.iter().map(|&a| dag.constant_of(a)).collect();
    if let Some(vals) = const_args {
        if let Some(v) = ops::eval(op, &vals) {
            return Ok(dag.add(Node::Const(v)));
        }
    }

    // Strength reduction and canonical instruction selection.
    let emit = |dag: &mut Dag, opname: &str, operands: Vec<NodeId>| {
        dag.add(Node::Op(Symbol::intern(opname), operands))
    };
    let node = match name {
        "add64" => emit(dag, "addq", args),
        "sub64" => emit(dag, "subq", args),
        "mul64" => {
            let rhs = dag.constant_of(args[1]);
            match rhs {
                Some(0) => dag.add(Node::Const(0)),
                Some(1) => args[0],
                Some(c) if c.is_power_of_two() => {
                    let shift = dag.add(Node::Const(c.trailing_zeros().into()));
                    emit(dag, "sll", vec![args[0], shift])
                }
                _ => emit(dag, "mulq", args),
            }
        }
        "and64" => rewrite_mask(dag, args[0], args[1]),
        "or64" => emit(dag, "bis", args),
        "xor64" => emit(dag, "xor", args),
        "not64" => {
            let zero = dag.add(Node::Const(0));
            emit(dag, "ornot", vec![zero, args[0]])
        }
        "shl64" => emit(dag, "sll", args),
        "shr64" => emit(dag, "srl", args),
        "sar64" => emit(dag, "sra", args),
        "neg64" => {
            let zero = dag.add(Node::Const(0));
            emit(dag, "subq", vec![zero, args[0]])
        }
        // C-style byte access: shift then mask.
        "selectb" => {
            let i = dag
                .constant_of(args[1])
                .ok_or_else(|| err("selectb with non-constant index"))?;
            let shifted = if (i & 7) == 0 {
                args[0]
            } else {
                let amount = dag.add(Node::Const(8 * (i & 7)));
                emit(dag, "srl", vec![args[0], amount])
            };
            let mask = dag.add(Node::Const(0xff));
            emit(dag, "and", vec![shifted, mask])
        }
        "storeb" => {
            let i = dag
                .constant_of(args[1])
                .ok_or_else(|| err("storeb with non-constant index"))?
                & 7;
            let low = if dag.zero_bytes(args[2]) & 0b1111_1110 == 0b1111_1110 {
                args[2] // already a single byte
            } else {
                let mask = dag.add(Node::Const(0xff));
                emit(dag, "and", vec![args[2], mask])
            };
            let positioned = if i == 0 {
                low
            } else {
                let amount = dag.add(Node::Const(8 * i));
                emit(dag, "sll", vec![low, amount])
            };
            match dag.constant_of(args[0]) {
                Some(0) => positioned,
                // If byte i of w is already known zero (a partially
                // assembled byte puzzle), the mask is redundant.
                _ if dag.zero_bytes(args[0]) & (1 << i) != 0 => {
                    emit(dag, "bis", vec![args[0], positioned])
                }
                _ => {
                    let keep_mask = dag.add(Node::Const(!(0xffu64 << (8 * i))));
                    let kept = rewrite_mask(dag, args[0], keep_mask);
                    emit(dag, "bis", vec![kept, positioned])
                }
            }
        }
        "castshort" => {
            let mask = dag.add(Node::Const(3));
            emit(dag, "zapnot", vec![args[0], mask])
        }
        "castint" => {
            let zero = dag.add(Node::Const(0));
            emit(dag, "addl", vec![args[0], zero])
        }
        "selectw" => {
            let i = dag
                .constant_of(args[1])
                .ok_or_else(|| err("selectw with non-constant index"))?;
            let byte = dag.add(Node::Const(2 * (i & 3)));
            emit(dag, "extwl", vec![args[0], byte])
        }
        "pow" => return Err(err("pow with non-constant operands")),
        // Anything already a machine instruction passes through.
        _ if ops::is_machine(op) => dag.add(Node::Op(op, args)),
        other => return Err(err(format!("no rewrite for operation {other}"))),
    };
    Ok(node)
}

/// `and` with mask idioms: zapnot for byte masks, plain and otherwise.
fn rewrite_mask(dag: &mut Dag, value: NodeId, mask: NodeId) -> NodeId {
    if let Some(m) = dag.constant_of(mask) {
        // Is the mask a whole-bytes mask? Then zapnot is one instruction
        // with a small literal.
        let mut byte_mask = 0u64;
        let mut whole_bytes = true;
        for byte in 0..8 {
            match (m >> (8 * byte)) & 0xff {
                0xff => byte_mask |= 1 << byte,
                0 => {}
                _ => {
                    whole_bytes = false;
                    break;
                }
            }
        }
        if whole_bytes && m > 255 {
            let zap = dag.add(Node::Const(byte_mask));
            return dag.add(Node::Op(Symbol::intern("zapnot"), vec![value, zap]));
        }
    }
    dag.add(Node::Op(Symbol::intern("and"), vec![value, mask]))
}

fn rewrite_address(dag: &mut Dag, addr: &Term) -> Result<(NodeId, u64), RewriteError> {
    // Fold add64(base, const) into the displacement field.
    if let Op::Sym(s) = addr.op() {
        if matches!(s.as_str(), "add64" | "addq") && addr.args().len() == 2 {
            if let Some(d) = addr.args()[1].as_const() {
                if (d as i64) >= -32768 && (d as i64) <= 32767 {
                    let base = rewrite(dag, &addr.args()[0])?;
                    return Ok((base, d));
                }
            }
        }
    }
    Ok((rewrite(dag, addr)?, 0))
}

/// Reassociation: flattens chains of an associative commutative machine
/// op and rebuilds them as balanced trees (a standard ILP-enabling pass
/// in conventional compilers).
fn reassociate(dag: &mut Dag, id: NodeId) -> NodeId {
    let node = dag.nodes[id].clone();
    match node {
        Node::Op(op, args) if matches!(op.as_str(), "bis" | "xor" | "and" | "addq") => {
            // Collect the maximal same-op chain.
            let mut leaves = Vec::new();
            flatten(dag, id, op, &mut leaves);
            if leaves.len() <= 2 {
                let rebuilt: Vec<NodeId> = args.iter().map(|&a| reassociate(dag, a)).collect();
                return dag.add(Node::Op(op, rebuilt));
            }
            let mut level: Vec<NodeId> = leaves.into_iter().map(|l| reassociate(dag, l)).collect();
            while level.len() > 1 {
                let mut next = Vec::new();
                for pair in level.chunks(2) {
                    match pair {
                        [a, b] => next.push(dag.add(Node::Op(op, vec![*a, *b]))),
                        [a] => next.push(*a),
                        _ => unreachable!(),
                    }
                }
                level = next;
            }
            level[0]
        }
        Node::Op(op, args) => {
            let rebuilt: Vec<NodeId> = args.iter().map(|&a| reassociate(dag, a)).collect();
            dag.add(Node::Op(op, rebuilt))
        }
        Node::Load { .. } | Node::Store { .. } | Node::Input(_) | Node::Const(_) => id,
    }
}

fn flatten(dag: &Dag, id: NodeId, op: Symbol, out: &mut Vec<NodeId>) {
    match &dag.nodes[id] {
        Node::Op(o, args) if *o == op && args.len() == 2 => {
            flatten(dag, args[0], op, out);
            flatten(dag, args[1], op, out);
        }
        _ => out.push(id),
    }
}

/// A schedule: placed nodes, register assignments, and input bindings.
type Schedule = (
    Vec<(NodeId, u32, Unit)>,
    HashMap<NodeId, Reg>,
    Vec<(Symbol, Reg)>,
);

/// Greedy critical-path list scheduling of the DAG on `machine`.
fn schedule(dag: &Dag, roots: &[NodeId], machine: &Machine) -> Result<Schedule, RewriteError> {
    // Which const nodes need registers (used outside a literal slot)?
    let mut needs_reg: Vec<bool> = vec![false; dag.nodes.len()];
    let mut schedulable: Vec<bool> = vec![false; dag.nodes.len()];
    for (id, node) in dag.nodes.iter().enumerate() {
        match node {
            Node::Input(_) => {}
            Node::Const(_) => {}
            Node::Op(op, args) => {
                schedulable[id] = true;
                for (pos, &a) in args.iter().enumerate() {
                    if let Node::Const(c) = dag.nodes[a] {
                        let literal_ok = pos == 1 && machine.fits_alu_literal(c);
                        if !literal_ok {
                            needs_reg[a] = true;
                        }
                    }
                }
                let _ = op;
            }
            Node::Load { base, .. } => {
                schedulable[id] = true;
                if matches!(dag.nodes[*base], Node::Const(_)) {
                    needs_reg[*base] = true;
                }
            }
            Node::Store { value, base, .. } => {
                schedulable[id] = true;
                for &a in [value, base] {
                    if matches!(dag.nodes[a], Node::Const(_)) {
                        needs_reg[a] = true;
                    }
                }
            }
        }
    }
    for (id, node) in dag.nodes.iter().enumerate() {
        if let Node::Const(_) = node {
            if needs_reg[id] {
                schedulable[id] = true;
            }
        }
    }
    for &root in roots {
        // A root that is a bare constant needs a register.
        if let Node::Const(_) = dag.nodes[root] {
            needs_reg[root] = true;
            schedulable[root] = true;
        }
    }

    // Only nodes reachable from the roots (and stores, which are always
    // live) are emitted; reassociation can orphan intermediate nodes.
    let mut reachable = vec![false; dag.nodes.len()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    for (id, node) in dag.nodes.iter().enumerate() {
        if matches!(node, Node::Store { .. }) {
            stack.push(id);
        }
    }
    while let Some(id) = stack.pop() {
        if reachable[id] {
            continue;
        }
        reachable[id] = true;
        match &dag.nodes[id] {
            Node::Op(_, args) => stack.extend(args.iter().copied()),
            Node::Load { base, .. } => stack.push(*base),
            Node::Store { value, base, .. } => {
                stack.push(*value);
                stack.push(*base);
            }
            _ => {}
        }
    }
    for id in 0..dag.nodes.len() {
        if !reachable[id] {
            schedulable[id] = false;
        }
    }

    let opcode = |id: NodeId| -> Symbol {
        match &dag.nodes[id] {
            Node::Op(op, _) => *op,
            Node::Load { .. } => Symbol::intern("ldq"),
            Node::Store { .. } => Symbol::intern("stq"),
            Node::Const(_) => Symbol::intern("ldiq"),
            Node::Input(_) => unreachable!("inputs are not scheduled"),
        }
    };
    let register_deps = |id: NodeId| -> Vec<NodeId> {
        match &dag.nodes[id] {
            Node::Op(_, args) => args
                .iter()
                .copied()
                .filter(|&a| match dag.nodes[a] {
                    Node::Const(_) => needs_reg[a],
                    Node::Input(_) => false,
                    _ => true,
                })
                .collect(),
            Node::Load { base, .. } => [*base]
                .iter()
                .copied()
                .filter(|&a| {
                    !matches!(dag.nodes[a], Node::Input(_) | Node::Const(_)) || needs_reg[a]
                })
                .collect(),
            Node::Store { value, base, .. } => [*value, *base]
                .iter()
                .copied()
                .filter(|&a| {
                    !matches!(dag.nodes[a], Node::Input(_) | Node::Const(_)) || needs_reg[a]
                })
                .collect(),
            _ => Vec::new(),
        }
    };

    // Priorities: height of the node in the DAG (critical path length).
    let mut height: Vec<u32> = vec![0; dag.nodes.len()];
    for id in (0..dag.nodes.len()).rev() {
        // nodes are created bottom-up, so process top-down for heights:
        // actually compute by fixpoint below.
        let _ = id;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..dag.nodes.len() {
            if !schedulable[id] {
                continue;
            }
            let lat = machine.info(opcode(id)).map(|i| i.latency).unwrap_or(1);
            for dep in register_deps(id) {
                let h = height[id] + lat;
                if height[dep] < h {
                    height[dep] = h;
                    changed = true;
                }
            }
        }
    }

    // Greedy list scheduling.
    let mut placed: HashMap<NodeId, (u32, Unit)> = HashMap::new();
    let mut remaining: Vec<NodeId> = (0..dag.nodes.len()).filter(|&i| schedulable[i]).collect();
    let loads: Vec<NodeId> = remaining
        .iter()
        .copied()
        .filter(|&i| matches!(dag.nodes[i], Node::Load { .. }))
        .collect();
    let mut cycle = 0u32;
    let max_cycles = 4 * dag.nodes.len() as u32 + 16;
    while !remaining.is_empty() {
        if cycle > max_cycles {
            return Err(err("list scheduler failed to converge"));
        }
        let mut used_units: Vec<Unit> = Vec::new();
        // Ready nodes, highest first.
        let mut ready: Vec<NodeId> = remaining
            .iter()
            .copied()
            .filter(|&id| register_deps(id).iter().all(|d| placed.contains_key(d)))
            .collect();
        ready.sort_by_key(|&id| std::cmp::Reverse(height[id]));
        for id in ready {
            if used_units.len() >= machine.issue_width() {
                break;
            }
            // Stores wait until every load is placed (loads read the
            // GMA pre-state) and issue no earlier than the last load.
            if matches!(dag.nodes[id], Node::Store { .. }) {
                if !loads.iter().all(|l| placed.contains_key(l)) {
                    continue;
                }
                if loads.iter().any(|l| placed[l].0 > cycle) {
                    continue;
                }
            }
            let info = machine
                .info(opcode(id))
                .ok_or_else(|| err(format!("unknown opcode {}", opcode(id))))?;
            let unit = info.units.iter().copied().find(|u| {
                if used_units.contains(u) {
                    return false;
                }
                // All register deps available on this unit's cluster.
                register_deps(id).iter().all(|d| {
                    let (dc, du) = placed[d];
                    let lat = machine.info(opcode(*d)).map(|i| i.latency).unwrap_or(1);
                    let mut avail = dc + lat;
                    if machine.num_clusters() > 1 && du.cluster() != u.cluster() {
                        avail += machine.cluster_delay();
                    }
                    avail <= cycle
                })
            });
            if let Some(unit) = unit {
                placed.insert(id, (cycle, unit));
                used_units.push(unit);
            }
        }
        remaining.retain(|id| !placed.contains_key(id));
        cycle += 1;
    }

    // Register assignment.
    let mut regs: HashMap<NodeId, Reg> = HashMap::new();
    let mut inputs: Vec<(Symbol, Reg)> = Vec::new();
    let mut next = 0u32;
    for (id, node) in dag.nodes.iter().enumerate() {
        if let Node::Input(name) = node {
            let reg = Reg(next);
            next += 1;
            regs.insert(id, reg);
            inputs.push((*name, reg));
        }
    }
    let mut order: Vec<(NodeId, u32, Unit)> =
        placed.iter().map(|(&id, &(c, u))| (id, c, u)).collect();
    order.sort_by_key(|&(_, c, u)| (c, u));
    for &(id, _, _) in &order {
        if !matches!(dag.nodes[id], Node::Store { .. }) {
            let reg = Reg(next);
            next += 1;
            regs.insert(id, reg);
        }
    }
    Ok((order, regs, inputs))
}

/// Compiles a GMA with the conventional rewriting pipeline.
///
/// # Errors
///
/// Fails on operations with no deterministic rewrite (program-specific
/// uninterpreted operations) or scheduler failure.
pub fn rewrite_compile(gma: &Gma, machine: &Machine) -> Result<Program, RewriteError> {
    let mut dag = Dag::default();
    let mut goal_roots: Vec<(Symbol, NodeId)> = Vec::new();
    if let Some(g) = &gma.guard {
        goal_roots.push((Symbol::intern("guard"), rewrite(&mut dag, g)?));
    }
    for (name, term) in &gma.assigns {
        goal_roots.push((*name, rewrite(&mut dag, term)?));
    }
    if let Some(mem) = &gma.mem {
        rewrite(&mut dag, mem)?;
    }
    for (_, root) in goal_roots.iter_mut() {
        *root = reassociate(&mut dag, *root);
    }
    let roots: Vec<NodeId> = goal_roots.iter().map(|&(_, r)| r).collect();
    let (order, regs, inputs) = schedule(&dag, &roots, machine)?;

    let mut instrs = Vec::new();
    for &(id, cycle, unit) in &order {
        let (op, operands, dest) = match &dag.nodes[id] {
            Node::Const(c) => (
                Symbol::intern("ldiq"),
                vec![Operand::Imm(*c)],
                Some(regs[&id]),
            ),
            Node::Op(op, args) => {
                let mut operands = Vec::new();
                for (pos, &a) in args.iter().enumerate() {
                    match dag.nodes[a] {
                        Node::Const(c)
                            if pos == 1
                                && machine.fits_alu_literal(c)
                                && !regs.contains_key(&a) =>
                        {
                            operands.push(Operand::Imm(c));
                        }
                        _ => operands.push(Operand::Reg(regs[&a])),
                    }
                }
                (*op, operands, Some(regs[&id]))
            }
            Node::Load { base, disp } => (
                Symbol::intern("ldq"),
                vec![Operand::Reg(regs[base]), Operand::Imm(*disp)],
                Some(regs[&id]),
            ),
            Node::Store { value, base, disp } => (
                Symbol::intern("stq"),
                vec![
                    Operand::Reg(regs[value]),
                    Operand::Reg(regs[base]),
                    Operand::Imm(*disp),
                ],
                None,
            ),
            Node::Input(_) => continue,
        };
        instrs.push(Instr {
            op,
            operands,
            dest,
            cycle,
            unit,
            comment: String::new(),
        });
    }

    let outputs: Vec<(Symbol, Reg)> = goal_roots
        .iter()
        .map(|&(name, root)| (name, regs[&root]))
        .collect();

    let program = Program {
        instrs,
        inputs,
        outputs,
        name: format!("{}_rewrite", gma.name),
        reg_reuse: false,
    };
    denali_arch::validate(&program, machine).map_err(|e| {
        err(format!(
            "rewrite baseline produced an invalid schedule:\n{e}"
        ))
    })?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use denali_lang::{lower_proc, parse_program};
    use std::collections::HashMap as Map;

    fn compile(src: &str) -> (Gma, Program) {
        let p = parse_program(src).unwrap();
        let gma = lower_proc(&p.procs[0]).unwrap().remove(0);
        let program = rewrite_compile(&gma, &Machine::ev6()).unwrap();
        (gma, program)
    }

    #[test]
    fn figure2_without_egraph_misses_s4addq() {
        // A rewriting engine commits to mul->shift and add: 2 cycles,
        // 2 instructions (where Denali finds the 1-cycle s4addq).
        let (_, program) = compile("(procdecl f ((reg6 long)) long (:= (res (+ (* reg6 4) 1))))");
        assert_eq!(program.len(), 2);
        assert_eq!(program.cycles(), 2);
        let ops: Vec<&str> = program.instrs.iter().map(|i| i.op.as_str()).collect();
        assert!(ops.contains(&"sll"));
        assert!(ops.contains(&"addq"));
    }

    #[test]
    fn byteswap_is_correct_if_slower() {
        let src = "(procdecl bs ((a long)) long
          (var (r long 0)
            (semi
              (:= ((selectb r 0) (selectb a 3)))
              (:= ((selectb r 1) (selectb a 2)))
              (:= ((selectb r 2) (selectb a 1)))
              (:= ((selectb r 3) (selectb a 0)))
              (:= (res r)))))";
        let (gma, program) = compile(src);
        // Differential check against the reference semantics.
        let machine = Machine::ev6();
        let sim = denali_arch::Simulator::new(&machine);
        for a in [0u64, 0x1122_3344, u64::MAX, 0x0102_0304_0506_0708] {
            let mut env = denali_term::value::Env::new();
            env.set_word("a", a);
            let expected = gma.evaluate(&env).unwrap().assigns[0].1;
            let out = sim.run_named(&program, &[("a", a)], Map::new()).unwrap();
            let reg = program.output_reg(Symbol::intern("res")).unwrap();
            assert_eq!(out.regs[&reg], expected, "a={a:#x}\n{}", program.listing(4));
        }
    }

    #[test]
    fn constant_folding_happens() {
        let (_, program) = compile("(procdecl f ((a long)) long (:= (res (+ a (* 3 4)))))");
        // 3*4 folds to 12, which fits the literal field: one addq.
        assert_eq!(program.len(), 1);
        assert_eq!(program.instrs[0].op.as_str(), "addq");
    }

    #[test]
    fn large_masks_use_zapnot() {
        let (_, program) = compile("(procdecl f ((a long)) long (:= (res (& a 65535))))");
        assert_eq!(program.len(), 1);
        assert_eq!(program.instrs[0].op.as_str(), "zapnot");
    }

    #[test]
    fn memory_roundtrip() {
        let (gma, program) = compile(
            "(procdecl st ((p long*) (x long)) long
               (semi (:= ((deref (+ p 8)) (+ x 1))) (:= (res x))))",
        );
        let machine = Machine::ev6();
        let sim = denali_arch::Simulator::new(&machine);
        let out = sim
            .run_named(&program, &[("p", 100), ("x", 41)], Map::new())
            .unwrap();
        assert_eq!(out.memory[&108], 42);
        let mut env = denali_term::value::Env::new();
        env.set_word("p", 100).set_word("x", 41);
        env.set_mem("M", Map::new());
        let expected = gma.evaluate(&env).unwrap();
        assert_eq!(expected.memory.unwrap()[&108], 42);
    }

    #[test]
    fn guard_is_computed() {
        let (_, program) = compile(
            "(procdecl f ((p long*) (r long*)) long
               (do (-> (<u p r) (:= (p (+ p 8))))))",
        );
        assert!(program.output_reg(Symbol::intern("guard")).is_some());
        let ops: Vec<&str> = program.instrs.iter().map(|i| i.op.as_str()).collect();
        assert!(ops.contains(&"cmpult"));
    }

    #[test]
    fn uninterpreted_ops_are_rejected() {
        let p = parse_program("(procdecl f ((a long)) long (:= (res (carry a a))))").unwrap();
        let gma = lower_proc(&p.procs[0]).unwrap().remove(0);
        assert!(rewrite_compile(&gma, &Machine::ev6()).is_err());
    }
}
