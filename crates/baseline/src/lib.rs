#![warn(missing_docs)]

//! The comparison baselines from the paper's evaluation.
//!
//! * [`brute`] — a Massalin-style brute-force superoptimizer ("an
//!   exhaustive enumeration of all possible code sequences in order of
//!   increasing length", §1.1), the approach of the GNU superoptimizer
//!   the paper compares against in §8. Candidate sequences are executed
//!   against a suite of tests; survivors are verified on many more
//!   random vectors (the paper's caveat that "passing tests is not the
//!   same as being correct" applies, which is why its output must be
//!   checked — exactly as §1.1 says).
//! * [`rewrite`] — a conventional code generator: deterministic
//!   bottom-up strength-reduction rewriting followed by greedy list
//!   scheduling on the same machine model. This stands in for the
//!   production C compiler the paper coaxes into tying byteswap4
//!   (`-fast -arch ev6` plus "helpful input").

pub mod brute;
pub mod degraded;
pub mod rewrite;

pub use brute::{brute_search, BruteConfig, BruteProgram, BruteStats};
pub use degraded::degraded_compile;
pub use rewrite::{rewrite_compile, RewriteError};
