//! The serving layer's graceful-degradation path.
//!
//! When a compile request's deadline expires before the superoptimizer
//! finds (and certifies) an optimal schedule, the server still owes the
//! client *a* correct program. This module is that fallback: the
//! deterministic rewrite/list-scheduling baseline ([`rewrite_compile`])
//! run with no search at all, so its cost is microseconds and — unlike
//! the SAT search — effectively independent of how hard the GMA is.
//! Identity GMAs (nothing to compute) fall out naturally as empty or
//! move-only programs.
//!
//! The result is tagged `"degraded": true` by the server and is never
//! admitted to the result cache: a later request with a looser deadline
//! must get the chance to compute the optimal program.

use denali_arch::{Machine, Program};
use denali_lang::Gma;

use crate::rewrite::{rewrite_compile, RewriteError};

/// Compiles `gma` with the no-search baseline pipeline. This is the
/// entry point the serve crate calls when a deadline fires.
///
/// # Errors
///
/// Fails only where the rewrite baseline itself fails: GMAs using
/// program-specific uninterpreted operations that no rewrite rule
/// covers. Such requests get an error rather than a degraded program —
/// there is nothing correct to fall back to.
pub fn degraded_compile(gma: &Gma, machine: &Machine) -> Result<Program, RewriteError> {
    rewrite_compile(gma, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use denali_lang::{lower_proc, parse_program};

    fn gma_of(src: &str) -> Gma {
        let p = parse_program(src).unwrap();
        lower_proc(&p.procs[0]).unwrap().remove(0)
    }

    #[test]
    fn degraded_program_is_valid_machine_code() {
        let gma = gma_of("(\\procdecl f ((reg6 long)) long (:= (\\res (+ (* reg6 4) 1))))");
        let machine = Machine::ev6();
        let program = degraded_compile(&gma, &machine).unwrap();
        denali_arch::validate(&program, &machine).unwrap();
        assert!(!program.is_empty());
    }

    #[test]
    fn degraded_matches_the_gma_semantics() {
        let gma = gma_of("(\\procdecl f ((a long) (b long)) long (:= (\\res (& (<< a 2) b))))");
        let machine = Machine::ev6();
        let program = degraded_compile(&gma, &machine).unwrap();
        // Spot-check a few input vectors in the simulator.
        let sim = denali_arch::Simulator::new(&machine);
        for (a, b) in [(0u64, 0u64), (1, u64::MAX), (0x1234_5678, 0xff00)] {
            let out = sim
                .run_named(&program, &[("a", a), ("b", b)], Default::default())
                .unwrap();
            let res_reg = program
                .output_reg(denali_term::Symbol::intern("res"))
                .unwrap();
            let expect = (a << 2) & b;
            assert_eq!(
                out.regs.get(&res_reg).copied(),
                Some(expect),
                "a={a:#x} b={b:#x}"
            );
        }
    }
}
