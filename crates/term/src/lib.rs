#![warn(missing_docs)]

//! Terms, symbols, values, and s-expressions for the Denali superoptimizer.
//!
//! This crate is the foundation of the reproduction of *Denali: A
//! Goal-directed Superoptimizer* (Joshi, Nelson & Randall, PLDI 2002).
//! It provides:
//!
//! * [`Symbol`] — cheap interned identifiers for operators, registers, and
//!   variables,
//! * [`Term`] — immutable first-order terms (the things Denali's E-graph
//!   represents, matches, and schedules),
//! * [`value`] — the 64-bit semantics of every operation Denali knows
//!   about, used as the single ground truth by the axiom soundness tests,
//!   the E-graph constant folder, the instruction simulator, and the
//!   brute-force baseline,
//! * [`sexpr`] — the small LISP-like surface syntax shared by the axiom
//!   files and the Denali source language (the paper's Figure 6 syntax).
//!
//! # Example
//!
//! ```
//! use denali_term::{Term, Symbol};
//!
//! // The paper's Figure 2 goal term: reg6 * 4 + 1.
//! let reg6 = Term::leaf(Symbol::intern("reg6"));
//! let goal = Term::call("add64", vec![
//!     Term::call("mul64", vec![reg6, Term::constant(4)]),
//!     Term::constant(1),
//! ]);
//! assert_eq!(goal.to_string(), "(add64 (mul64 reg6 4) 1)");
//! ```

pub mod ops;
pub mod sexpr;
pub mod symbol;
pub mod term;
pub mod value;

pub use ops::{OpInfo, OpKind};
pub use sexpr::Sexpr;
pub use symbol::Symbol;
pub use term::{Op, Term};
