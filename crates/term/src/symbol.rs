//! Interned string symbols.
//!
//! Symbols are `u32`-sized handles to a process-global interner, so they
//! are `Copy`, hash in O(1), and compare by identity. Interned strings are
//! leaked: a superoptimizer interns a few hundred operator and register
//! names, so the leak is bounded and buys `&'static str` access.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// # Example
///
/// ```
/// use denali_term::Symbol;
/// let a = Symbol::intern("add64");
/// let b = Symbol::intern("add64");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "add64");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its canonical symbol.
    pub fn intern(name: &str) -> Symbol {
        let mut interner = interner().lock().expect("interner poisoned");
        if let Some(&id) = interner.map.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(interner.strings.len()).expect("interner overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        interner.strings.push(leaked);
        interner.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        let interner = interner().lock().expect("interner poisoned");
        interner.strings[self.0 as usize]
    }

    /// Returns the raw interner index (useful as a dense map key).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<String> for Symbol {
    fn from(name: String) -> Symbol {
        Symbol::intern(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("x");
        let b = Symbol::intern("x");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        assert_ne!(
            Symbol::intern("foo_unique_1"),
            Symbol::intern("foo_unique_2")
        );
    }

    #[test]
    fn round_trips_string() {
        let s = Symbol::intern("mskbl");
        assert_eq!(s.as_str(), "mskbl");
        assert_eq!(s.to_string(), "mskbl");
    }

    #[test]
    fn from_str_interns() {
        let s: Symbol = "bis".into();
        assert_eq!(s, Symbol::intern("bis"));
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Symbol::intern("q")).is_empty());
    }

    #[test]
    fn symbols_usable_across_threads() {
        let s = Symbol::intern("threaded");
        let handle = std::thread::spawn(move || s.as_str().to_owned());
        assert_eq!(handle.join().unwrap(), "threaded");
    }
}
