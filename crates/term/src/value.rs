//! Reference evaluation of terms.
//!
//! This module evaluates ground terms against an environment of input
//! values and a memory, using the operation semantics from [`crate::ops`].
//! It is the *reference semantics* every generated program is checked
//! against: a GMA's goal expressions are evaluated here and compared with
//! the simulator's execution of the generated machine code.

use std::collections::HashMap;
use std::fmt;

use crate::ops;
use crate::symbol::Symbol;
use crate::term::{Op, Term};

/// A runtime value: a 64-bit word or a memory (array) value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Val {
    /// A 64-bit word.
    Word(u64),
    /// A memory value: a sparse map from addresses to 64-bit words.
    /// Unmapped addresses read as zero.
    Mem(HashMap<u64, u64>),
}

impl Val {
    /// Returns the word, or an error if this is a memory value.
    pub fn as_word(&self) -> Result<u64, EvalError> {
        match self {
            Val::Word(w) => Ok(*w),
            Val::Mem(_) => Err(EvalError::new("expected a word, got a memory value")),
        }
    }

    /// Returns the memory map, or an error if this is a word.
    pub fn as_mem(&self) -> Result<&HashMap<u64, u64>, EvalError> {
        match self {
            Val::Mem(m) => Ok(m),
            Val::Word(_) => Err(EvalError::new("expected a memory value, got a word")),
        }
    }
}

impl From<u64> for Val {
    fn from(w: u64) -> Val {
        Val::Word(w)
    }
}

/// Evaluation failure (unknown operation, arity mismatch, type mismatch).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EvalError {
    message: String,
}

impl EvalError {
    pub(crate) fn new(message: impl Into<String>) -> EvalError {
        EvalError {
            message: message.into(),
        }
    }

    /// Creates an evaluation error with a caller-supplied message (for
    /// layers that evaluate terms in richer contexts, e.g. GMA reference
    /// evaluation).
    pub fn custom(message: impl Into<String>) -> EvalError {
        EvalError::new(message)
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EvalError {}

/// Word-level semantics for operations not in the built-in registry
/// (program-specific operations like the checksum example's `add` and
/// `carry`).
pub type CustomOp = fn(&[u64]) -> u64;

/// An evaluation environment: named inputs plus custom operation
/// definitions.
///
/// # Example
///
/// ```
/// use denali_term::{Term, value::Env};
///
/// let t = Term::call("add64", vec![Term::leaf("a"), Term::constant(1)]);
/// let mut env = Env::new();
/// env.set_word("a", 41);
/// assert_eq!(env.eval_word(&t).unwrap(), 42);
/// ```
#[derive(Clone, Default, Debug)]
pub struct Env {
    vars: HashMap<Symbol, Val>,
    custom: HashMap<Symbol, CustomOp>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Binds a leaf symbol to a word value.
    pub fn set_word(&mut self, name: impl Into<Symbol>, value: u64) -> &mut Env {
        self.vars.insert(name.into(), Val::Word(value));
        self
    }

    /// Binds a leaf symbol to a memory value.
    pub fn set_mem(&mut self, name: impl Into<Symbol>, mem: HashMap<u64, u64>) -> &mut Env {
        self.vars.insert(name.into(), Val::Mem(mem));
        self
    }

    /// Defines word semantics for an uninterpreted operation.
    pub fn define_op(&mut self, name: impl Into<Symbol>, f: CustomOp) -> &mut Env {
        self.custom.insert(name.into(), f);
        self
    }

    /// Looks up a bound leaf value.
    pub fn get(&self, name: Symbol) -> Option<&Val> {
        self.vars.get(&name)
    }

    /// Evaluates a ground term to a value.
    ///
    /// # Errors
    ///
    /// Fails on pattern variables, unbound leaves, unknown operations, or
    /// word/memory type mismatches.
    pub fn eval(&self, term: &Term) -> Result<Val, EvalError> {
        match term.op() {
            Op::Const(c) => Ok(Val::Word(c)),
            Op::Var(v) => Err(EvalError::new(format!("unbound pattern variable ?{v}"))),
            Op::Sym(sym) => {
                if term.args().is_empty() {
                    return self
                        .vars
                        .get(&sym)
                        .cloned()
                        .ok_or_else(|| EvalError::new(format!("unbound input {sym}")));
                }
                self.eval_app(sym, term)
            }
        }
    }

    /// Evaluates a ground term, requiring a word result.
    ///
    /// # Errors
    ///
    /// As [`Env::eval`], plus an error if the result is a memory value.
    pub fn eval_word(&self, term: &Term) -> Result<u64, EvalError> {
        self.eval(term)?.as_word()
    }

    fn eval_app(&self, sym: Symbol, term: &Term) -> Result<Val, EvalError> {
        let name = sym.as_str();
        // Memory operations need non-word arguments; handle them first.
        match name {
            "select" | "ldq" => {
                let mem = self.eval(&term.args()[0])?;
                let addr = self.eval_word(&term.args()[1])?;
                let mem = mem.as_mem()?;
                return Ok(Val::Word(mem.get(&addr).copied().unwrap_or(0)));
            }
            "store" | "stq" => {
                let mem = self.eval(&term.args()[0])?;
                let addr = self.eval_word(&term.args()[1])?;
                let value = self.eval_word(&term.args()[2])?;
                let mut mem = mem.as_mem()?.clone();
                mem.insert(addr, value);
                return Ok(Val::Mem(mem));
            }
            _ => {}
        }
        let args = term
            .args()
            .iter()
            .map(|a| self.eval_word(a))
            .collect::<Result<Vec<_>, _>>()?;
        if let Some(result) = ops::eval(sym, &args) {
            return Ok(Val::Word(result));
        }
        if let Some(f) = self.custom.get(&sym) {
            return Ok(Val::Word(f(&args)));
        }
        Err(EvalError::new(format!(
            "no semantics for operation {name}/{}",
            args.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_figure2_goal() {
        // reg6*4 + 1 with reg6 = 10 -> 41, matching s4addq(10, 1).
        let goal = Term::call(
            "add64",
            vec![
                Term::call("mul64", vec![Term::leaf("reg6"), Term::constant(4)]),
                Term::constant(1),
            ],
        );
        let mut env = Env::new();
        env.set_word("reg6", 10);
        assert_eq!(env.eval_word(&goal).unwrap(), 41);
        let s4 = Term::call("s4addq", vec![Term::leaf("reg6"), Term::constant(1)]);
        assert_eq!(env.eval_word(&s4).unwrap(), 41);
    }

    #[test]
    fn select_store_semantics() {
        let mut env = Env::new();
        env.set_mem("M", HashMap::from([(8, 99)]));
        env.set_word("p", 8);
        let select = Term::call("select", vec![Term::leaf("M"), Term::leaf("p")]);
        assert_eq!(env.eval_word(&select).unwrap(), 99);

        // select(store(M, p, x), p) == x
        let store = Term::call(
            "store",
            vec![Term::leaf("M"), Term::leaf("p"), Term::constant(7)],
        );
        let read_back = Term::call("select", vec![store.clone(), Term::leaf("p")]);
        assert_eq!(env.eval_word(&read_back).unwrap(), 7);

        // select(store(M, p, x), q) == select(M, q) for q != p
        let other = Term::call("select", vec![store, Term::constant(16)]);
        assert_eq!(env.eval_word(&other).unwrap(), 0); // unmapped reads as 0
    }

    #[test]
    fn unbound_inputs_error() {
        let env = Env::new();
        assert!(env.eval(&Term::leaf("nowhere")).is_err());
        assert!(env.eval(&Term::var("x")).is_err());
    }

    #[test]
    fn custom_ops_cover_program_axiom_functions() {
        // The checksum example's carry(a, b).
        fn carry(args: &[u64]) -> u64 {
            (args[0].wrapping_add(args[1]) < args[0]) as u64
        }
        let mut env = Env::new();
        env.define_op("carry", carry);
        env.set_word("a", u64::MAX);
        env.set_word("b", 1);
        let t = Term::call("carry", vec![Term::leaf("a"), Term::leaf("b")]);
        assert_eq!(env.eval_word(&t).unwrap(), 1);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut env = Env::new();
        env.set_mem("M", HashMap::new());
        // add64 over a memory value must fail.
        let t = Term::call("add64", vec![Term::leaf("M"), Term::constant(1)]);
        assert!(env.eval(&t).is_err());
        // select over a word must fail.
        let t = Term::call("select", vec![Term::constant(0), Term::constant(1)]);
        assert!(env.eval(&t).is_err());
    }

    #[test]
    fn unknown_op_reports_name() {
        let env = Env::new();
        let t = Term::call("mystery", vec![Term::constant(1)]);
        let err = env.eval(&t).unwrap_err();
        assert!(err.to_string().contains("mystery"));
    }
}
