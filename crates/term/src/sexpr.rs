//! S-expression reader and printer.
//!
//! Denali's axiom files and source programs use a LISP-like syntax (the
//! paper's Figure 6). Keywords are written with a leading backslash
//! (`\axiom`, `\procdecl`); the reader keeps the backslash as part of the
//! atom so higher layers can distinguish keywords from user identifiers.
//! Comments run from `;` to end of line.

use std::fmt;

/// A parsed s-expression: an atom or a list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Sexpr {
    /// A bare token (identifier, keyword, or numeric literal).
    Atom(String),
    /// A parenthesized sequence.
    List(Vec<Sexpr>),
}

impl Sexpr {
    /// Convenience constructor for an atom.
    pub fn atom(s: impl Into<String>) -> Sexpr {
        Sexpr::Atom(s.into())
    }

    /// Returns the atom text, if this is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            Sexpr::Atom(a) => Some(a),
            Sexpr::List(_) => None,
        }
    }

    /// Returns the list items, if this is a list.
    pub fn as_list(&self) -> Option<&[Sexpr]> {
        match self {
            Sexpr::Atom(_) => None,
            Sexpr::List(items) => Some(items),
        }
    }

    /// Returns a copy with every atom's leading backslash removed
    /// (`\add64` → `add64`), recursively. The Denali surface syntax uses
    /// the backslash to mark built-in names; once a form is recognized,
    /// the marker is noise.
    pub fn strip_backslashes(&self) -> Sexpr {
        match self {
            Sexpr::Atom(a) => Sexpr::Atom(a.strip_prefix('\\').unwrap_or(a).to_owned()),
            Sexpr::List(items) => Sexpr::List(items.iter().map(Sexpr::strip_backslashes).collect()),
        }
    }

    /// True if this is an atom equal to `text` (modulo a leading `\`).
    ///
    /// The paper's syntax writes keywords as `\axiom`; we accept both
    /// `\axiom` and `axiom`.
    pub fn is_keyword(&self, text: &str) -> bool {
        match self {
            Sexpr::Atom(a) => a == text || a.strip_prefix('\\') == Some(text),
            Sexpr::List(_) => false,
        }
    }
}

impl fmt::Display for Sexpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexpr::Atom(a) => f.write_str(a),
            Sexpr::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A parse error with 1-based line/column of the offending character.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseSexprError {
    /// Explanation of the failure.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl fmt::Display for ParseSexprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseSexprError {}

/// Maximum list-nesting depth the reader accepts. The recursive-descent
/// reader uses one stack frame per open paren, so adversarial input
/// like `((((...` would otherwise overflow the stack (an uncatchable
/// abort, not an error). Real Denali programs nest a handful of levels;
/// 200 leaves generous headroom.
const MAX_DEPTH: usize = 200;

struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
    column: usize,
    depth: usize,
}

impl<'a> Reader<'a> {
    fn new(input: &'a str) -> Reader<'a> {
        Reader {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
            depth: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseSexprError {
        ParseSexprError {
            message: message.into(),
            line: self.line,
            column: self.column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn read(&mut self) -> Result<Sexpr, ParseSexprError> {
        self.skip_trivia();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'(') => {
                if self.depth >= MAX_DEPTH {
                    return Err(self.error(format!("lists nested deeper than {MAX_DEPTH}")));
                }
                self.depth += 1;
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    match self.peek() {
                        None => return Err(self.error("unclosed '('")),
                        Some(b')') => {
                            self.bump();
                            self.depth -= 1;
                            return Ok(Sexpr::List(items));
                        }
                        Some(_) => items.push(self.read()?),
                    }
                }
            }
            Some(b')') => Err(self.error("unexpected ')'")),
            Some(_) => self.read_atom(),
        }
    }

    fn read_atom(&mut self) -> Result<Sexpr, ParseSexprError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() || b == b'(' || b == b')' || b == b';' {
                break;
            }
            self.bump();
        }
        if self.pos == start {
            return Err(self.error("expected atom"));
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.error("atom is not valid UTF-8"))?;
        Ok(Sexpr::Atom(text.to_owned()))
    }
}

/// Parses a sequence of top-level s-expressions.
///
/// # Errors
///
/// Returns a [`ParseSexprError`] on unbalanced parentheses or stray input.
///
/// # Example
///
/// ```
/// let forms = denali_term::sexpr::parse("(a (b 1)) ; comment\n(c)").unwrap();
/// assert_eq!(forms.len(), 2);
/// ```
pub fn parse(input: &str) -> Result<Vec<Sexpr>, ParseSexprError> {
    let mut reader = Reader::new(input);
    let mut forms = Vec::new();
    loop {
        reader.skip_trivia();
        if reader.peek().is_none() {
            return Ok(forms);
        }
        forms.push(reader.read()?);
    }
}

/// Parses exactly one s-expression.
///
/// # Errors
///
/// Returns an error if the input is empty or contains more than one form.
pub fn parse_one(input: &str) -> Result<Sexpr, ParseSexprError> {
    let mut forms = parse(input)?;
    match forms.len() {
        1 => Ok(forms.remove(0)),
        0 => Err(ParseSexprError {
            message: "expected one form, found none".to_owned(),
            line: 1,
            column: 1,
        }),
        _ => Err(ParseSexprError {
            message: format!("expected one form, found {}", forms.len()),
            line: 1,
            column: 1,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_lists() {
        let forms = parse("(eq (add a b) (add b a))").unwrap();
        assert_eq!(forms.len(), 1);
        let items = forms[0].as_list().unwrap();
        assert_eq!(items[0].as_atom(), Some("eq"));
        assert_eq!(items[1].as_list().unwrap().len(), 3);
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let forms = parse("; header\n a ; trailing\n (b)\n").unwrap();
        assert_eq!(forms.len(), 2);
        assert_eq!(forms[0].as_atom(), Some("a"));
    }

    #[test]
    fn keeps_backslash_keywords() {
        let forms = parse("(\\axiom x)").unwrap();
        let items = forms[0].as_list().unwrap();
        assert_eq!(items[0].as_atom(), Some("\\axiom"));
        assert!(items[0].is_keyword("axiom"));
        assert!(Sexpr::atom("axiom").is_keyword("axiom"));
        assert!(!items[0].is_keyword("procdecl"));
    }

    #[test]
    fn reports_unbalanced_parens() {
        let err = parse("(a (b)").unwrap_err();
        assert!(err.message.contains("unclosed"));
        let err = parse("a)").unwrap_err();
        assert!(err.message.contains("unexpected ')'"));
    }

    #[test]
    fn tracks_line_numbers() {
        let err = parse("(a\n(b\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn display_round_trips() {
        let text = "(\\procdecl f ((a long)) long (:= (\\res a)))";
        let form = parse_one(text).unwrap();
        let printed = form.to_string();
        assert_eq!(parse_one(&printed).unwrap(), form);
    }

    #[test]
    fn parse_one_rejects_extra_forms() {
        assert!(parse_one("a b").is_err());
        assert!(parse_one("").is_err());
    }

    #[test]
    fn rejects_pathological_nesting() {
        // One past the limit errors instead of overflowing the stack.
        let deep = "(".repeat(MAX_DEPTH + 1);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nested deeper"), "{}", err.message);
        // At the limit, a balanced form still parses.
        let ok = format!("{}{}", "(".repeat(MAX_DEPTH), ")".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn operators_are_atoms() {
        let form = parse_one("(:= (ptr (+ ptr 32)))").unwrap();
        let items = form.as_list().unwrap();
        assert_eq!(items[0].as_atom(), Some(":="));
    }
}
