//! The operation registry: every function symbol Denali knows about,
//! with its arity, classification, and 64-bit semantics.
//!
//! The paper distinguishes *machine operations* (computable by one
//! instruction of the target architecture) from *non-machine operations*
//! (allowed in the input and the axioms, but not directly executable,
//! like `**` in Figure 2). This registry records that classification and
//! the executable semantics of each operation on 64-bit words.
//!
//! The semantics here are the single source of truth: the E-graph constant
//! folder, the instruction simulator, the brute-force baseline, and the
//! axiom soundness property tests all evaluate through this table.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::symbol::Symbol;

/// How an operation relates to the target machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// A mathematical helper function (`add64`, `pow`, `selectb`, ...);
    /// not directly executable, introduced so axioms can be stated
    /// conveniently.
    Math,
    /// Computable by a single register-to-register instruction of the
    /// target architecture.
    Machine,
    /// A machine memory access (`ldq`, `stq`).
    MachineMemory,
    /// A mathematical array operation on memory values (`select`,
    /// `store`).
    MathMemory,
}

/// Static description of one operation.
#[derive(Clone, Copy, Debug)]
pub struct OpInfo {
    /// The operation's name.
    pub name: &'static str,
    /// Number of arguments.
    pub arity: usize,
    /// Machine/math classification.
    pub kind: OpKind,
    /// Word-level semantics, if the operation maps words to a word.
    /// Memory operations and uninterpreted program-specific operations
    /// have no entry here.
    pub eval: Option<fn(&[u64]) -> u64>,
}

fn sext32(x: u64) -> u64 {
    x as u32 as i32 as i64 as u64
}

fn byte_shift(i: u64) -> u32 {
    (8 * (i & 7)) as u32
}

fn shifted_mask(width_mask: u64, i: u64) -> u64 {
    // Alpha insert/mask ops shift an 8/16/32/64-bit field to byte
    // position i & 7; bits shifted past bit 63 fall off.
    width_mask.checked_shl(byte_shift(i)).unwrap_or(0)
}

fn zapnot_mask(m: u64) -> u64 {
    let mut keep = 0u64;
    for byte in 0..8 {
        if (m >> byte) & 1 == 1 {
            keep |= 0xff << (8 * byte);
        }
    }
    keep
}

fn wrapping_pow(base: u64, exp: u64) -> u64 {
    let mut result = 1u64;
    let mut base = base;
    let mut exp = exp;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        exp >>= 1;
    }
    result
}

macro_rules! op_table {
    ($(($name:literal, $arity:literal, $kind:ident, $eval:expr)),* $(,)?) => {
        &[$(OpInfo {
            name: $name,
            arity: $arity,
            kind: OpKind::$kind,
            eval: $eval,
        }),*]
    };
}

/// All built-in operations.
#[rustfmt::skip]
fn table() -> &'static [OpInfo] {
    // Wrapper fns (no closures in statics).
    fn add64(a: &[u64]) -> u64 { a[0].wrapping_add(a[1]) }
    fn sub64(a: &[u64]) -> u64 { a[0].wrapping_sub(a[1]) }
    fn mul64(a: &[u64]) -> u64 { a[0].wrapping_mul(a[1]) }
    fn neg64(a: &[u64]) -> u64 { a[0].wrapping_neg() }
    fn and64(a: &[u64]) -> u64 { a[0] & a[1] }
    fn or64(a: &[u64]) -> u64 { a[0] | a[1] }
    fn xor64(a: &[u64]) -> u64 { a[0] ^ a[1] }
    fn not64(a: &[u64]) -> u64 { !a[0] }
    fn shl64(a: &[u64]) -> u64 { a[0] << (a[1] & 63) }
    fn shr64(a: &[u64]) -> u64 { a[0] >> (a[1] & 63) }
    fn sar64(a: &[u64]) -> u64 { ((a[0] as i64) >> (a[1] & 63)) as u64 }
    fn pow(a: &[u64]) -> u64 { wrapping_pow(a[0], a[1]) }
    fn selectb(a: &[u64]) -> u64 { (a[0] >> byte_shift(a[1])) & 0xff }
    fn storeb(a: &[u64]) -> u64 {
        (a[0] & !shifted_mask(0xff, a[1])) | ((a[2] & 0xff) << byte_shift(a[1]))
    }
    fn selectw(a: &[u64]) -> u64 { (a[0] >> (16 * (a[1] & 3))) & 0xffff }
    fn storew(a: &[u64]) -> u64 {
        let sh = (16 * (a[1] & 3)) as u32;
        (a[0] & !(0xffffu64 << sh)) | ((a[2] & 0xffff) << sh)
    }
    fn castshort(a: &[u64]) -> u64 { a[0] & 0xffff }
    fn castint(a: &[u64]) -> u64 { sext32(a[0]) }
    fn ite(a: &[u64]) -> u64 { if a[0] != 0 { a[1] } else { a[2] } }
    fn log2(a: &[u64]) -> u64 { if a[0] == 0 { 0 } else { 63 - a[0].leading_zeros() as u64 } }

    fn addq(a: &[u64]) -> u64 { a[0].wrapping_add(a[1]) }
    fn subq(a: &[u64]) -> u64 { a[0].wrapping_sub(a[1]) }
    fn mulq(a: &[u64]) -> u64 { a[0].wrapping_mul(a[1]) }
    fn umulh(a: &[u64]) -> u64 { (((a[0] as u128) * (a[1] as u128)) >> 64) as u64 }
    fn addl(a: &[u64]) -> u64 { sext32(a[0].wrapping_add(a[1])) }
    fn subl(a: &[u64]) -> u64 { sext32(a[0].wrapping_sub(a[1])) }
    fn s4addq(a: &[u64]) -> u64 { a[0].wrapping_mul(4).wrapping_add(a[1]) }
    fn s8addq(a: &[u64]) -> u64 { a[0].wrapping_mul(8).wrapping_add(a[1]) }
    fn s4subq(a: &[u64]) -> u64 { a[0].wrapping_mul(4).wrapping_sub(a[1]) }
    fn s8subq(a: &[u64]) -> u64 { a[0].wrapping_mul(8).wrapping_sub(a[1]) }
    fn and(a: &[u64]) -> u64 { a[0] & a[1] }
    fn bis(a: &[u64]) -> u64 { a[0] | a[1] }
    fn xor(a: &[u64]) -> u64 { a[0] ^ a[1] }
    fn bic(a: &[u64]) -> u64 { a[0] & !a[1] }
    fn ornot(a: &[u64]) -> u64 { a[0] | !a[1] }
    fn eqv(a: &[u64]) -> u64 { !(a[0] ^ a[1]) }
    fn sll(a: &[u64]) -> u64 { a[0] << (a[1] & 63) }
    fn srl(a: &[u64]) -> u64 { a[0] >> (a[1] & 63) }
    fn sra(a: &[u64]) -> u64 { ((a[0] as i64) >> (a[1] & 63)) as u64 }
    fn extbl(a: &[u64]) -> u64 { (a[0] >> byte_shift(a[1])) & 0xff }
    fn extwl(a: &[u64]) -> u64 { (a[0] >> byte_shift(a[1])) & 0xffff }
    fn extll(a: &[u64]) -> u64 { (a[0] >> byte_shift(a[1])) & 0xffff_ffff }
    fn extql(a: &[u64]) -> u64 { a[0] >> byte_shift(a[1]) }
    fn insbl(a: &[u64]) -> u64 { (a[0] & 0xff).checked_shl(byte_shift(a[1])).unwrap_or(0) }
    fn inswl(a: &[u64]) -> u64 { (a[0] & 0xffff).checked_shl(byte_shift(a[1])).unwrap_or(0) }
    fn insll(a: &[u64]) -> u64 { (a[0] & 0xffff_ffff).checked_shl(byte_shift(a[1])).unwrap_or(0) }
    fn insql(a: &[u64]) -> u64 { a[0].checked_shl(byte_shift(a[1])).unwrap_or(0) }
    fn mskbl(a: &[u64]) -> u64 { a[0] & !shifted_mask(0xff, a[1]) }
    fn mskwl(a: &[u64]) -> u64 { a[0] & !shifted_mask(0xffff, a[1]) }
    fn mskll(a: &[u64]) -> u64 { a[0] & !shifted_mask(0xffff_ffff, a[1]) }
    fn mskql(a: &[u64]) -> u64 { a[0] & !shifted_mask(u64::MAX, a[1]) }
    fn zapnot(a: &[u64]) -> u64 { a[0] & zapnot_mask(a[1]) }
    fn zap(a: &[u64]) -> u64 { a[0] & !zapnot_mask(a[1]) }
    fn sextb(a: &[u64]) -> u64 { a[0] as u8 as i8 as i64 as u64 }
    fn sextw(a: &[u64]) -> u64 { a[0] as u16 as i16 as i64 as u64 }
    fn cmpeq(a: &[u64]) -> u64 { (a[0] == a[1]) as u64 }
    fn cmplt(a: &[u64]) -> u64 { ((a[0] as i64) < (a[1] as i64)) as u64 }
    fn cmple(a: &[u64]) -> u64 { ((a[0] as i64) <= (a[1] as i64)) as u64 }
    fn cmpult(a: &[u64]) -> u64 { (a[0] < a[1]) as u64 }
    fn cmpule(a: &[u64]) -> u64 { (a[0] <= a[1]) as u64 }
    fn cmoveq(a: &[u64]) -> u64 { if a[0] == 0 { a[1] } else { a[2] } }
    fn cmovne(a: &[u64]) -> u64 { if a[0] != 0 { a[1] } else { a[2] } }
    fn ldiq(a: &[u64]) -> u64 { a[0] }
    // IA-64-flavored operations (the paper's in-progress Itanium port).
    fn shladd(a: &[u64]) -> u64 { (a[0] << (a[1] & 63)).wrapping_add(a[2]) }
    fn extr_u(a: &[u64]) -> u64 {
        let len = a[2] & 63;
        let mask = if len == 0 { u64::MAX } else { (1u64 << len).wrapping_sub(1) };
        // len == 0 is interpreted as 64 (whole word), matching dep_z.
        let mask = if a[2] == 64 { u64::MAX } else { mask };
        (a[0] >> (a[1] & 63)) & mask
    }
    fn dep_z(a: &[u64]) -> u64 {
        let len = a[2] & 63;
        let mask = if len == 0 { u64::MAX } else { (1u64 << len).wrapping_sub(1) };
        let mask = if a[2] == 64 { u64::MAX } else { mask };
        (a[0] & mask).checked_shl((a[1] & 63) as u32).unwrap_or(0)
    }
    fn andcm(a: &[u64]) -> u64 { a[0] & !a[1] }

    static TABLE: &[OpInfo] = op_table![
        // ---- Mathematical (non-machine) operations ----
        ("add64",    2, Math, Some(add64)),
        ("sub64",    2, Math, Some(sub64)),
        ("mul64",    2, Math, Some(mul64)),
        ("neg64",    1, Math, Some(neg64)),
        ("and64",    2, Math, Some(and64)),
        ("or64",     2, Math, Some(or64)),
        ("xor64",    2, Math, Some(xor64)),
        ("not64",    1, Math, Some(not64)),
        ("shl64",    2, Math, Some(shl64)),
        ("shr64",    2, Math, Some(shr64)),
        ("sar64",    2, Math, Some(sar64)),
        ("pow",      2, Math, Some(pow)),
        ("selectb",  2, Math, Some(selectb)),
        ("storeb",   3, Math, Some(storeb)),
        ("selectw",  2, Math, Some(selectw)),
        ("storew",   3, Math, Some(storew)),
        ("castshort", 1, Math, Some(castshort)),
        ("castint",  1, Math, Some(castint)),
        ("ite",      3, Math, Some(ite)),
        ("log2",     1, Math, Some(log2)),
        // Array operations over memory values.
        ("select",   2, MathMemory, None),
        ("store",    3, MathMemory, None),

        // ---- Machine operations (Alpha EV6 subset) ----
        ("addq",   2, Machine, Some(addq)),
        ("subq",   2, Machine, Some(subq)),
        ("mulq",   2, Machine, Some(mulq)),
        ("umulh",  2, Machine, Some(umulh)),
        ("addl",   2, Machine, Some(addl)),
        ("subl",   2, Machine, Some(subl)),
        ("s4addq", 2, Machine, Some(s4addq)),
        ("s8addq", 2, Machine, Some(s8addq)),
        ("s4subq", 2, Machine, Some(s4subq)),
        ("s8subq", 2, Machine, Some(s8subq)),
        ("and",    2, Machine, Some(and)),
        ("bis",    2, Machine, Some(bis)),
        ("xor",    2, Machine, Some(xor)),
        ("bic",    2, Machine, Some(bic)),
        ("ornot",  2, Machine, Some(ornot)),
        ("eqv",    2, Machine, Some(eqv)),
        ("sll",    2, Machine, Some(sll)),
        ("srl",    2, Machine, Some(srl)),
        ("sra",    2, Machine, Some(sra)),
        ("extbl",  2, Machine, Some(extbl)),
        ("extwl",  2, Machine, Some(extwl)),
        ("extll",  2, Machine, Some(extll)),
        ("extql",  2, Machine, Some(extql)),
        ("insbl",  2, Machine, Some(insbl)),
        ("inswl",  2, Machine, Some(inswl)),
        ("insll",  2, Machine, Some(insll)),
        ("insql",  2, Machine, Some(insql)),
        ("mskbl",  2, Machine, Some(mskbl)),
        ("mskwl",  2, Machine, Some(mskwl)),
        ("mskll",  2, Machine, Some(mskll)),
        ("mskql",  2, Machine, Some(mskql)),
        ("zapnot", 2, Machine, Some(zapnot)),
        ("zap",    2, Machine, Some(zap)),
        ("sextb",  1, Machine, Some(sextb)),
        ("sextw",  1, Machine, Some(sextw)),
        ("cmpeq",  2, Machine, Some(cmpeq)),
        ("cmplt",  2, Machine, Some(cmplt)),
        ("cmple",  2, Machine, Some(cmple)),
        ("cmpult", 2, Machine, Some(cmpult)),
        ("cmpule", 2, Machine, Some(cmpule)),
        ("cmoveq", 3, Machine, Some(cmoveq)),
        ("cmovne", 3, Machine, Some(cmovne)),
        // Constant materialization pseudo-instruction (stands in for
        // lda/ldah sequences; see DESIGN.md).
        ("ldiq",   1, Machine, Some(ldiq)),
        // ---- IA-64-flavored machine operations (Itanium port) ----
        ("shladd", 3, Machine, Some(shladd)),
        ("extr_u", 3, Machine, Some(extr_u)),
        ("dep_z",  3, Machine, Some(dep_z)),
        ("andcm",  2, Machine, Some(andcm)),

        // ---- Machine memory operations ----
        ("ldq", 2, MachineMemory, None), // ldq(M, addr)
        ("stq", 3, MachineMemory, None), // stq(M, addr, value) -> memory
    ];
    TABLE
}

fn registry() -> &'static HashMap<Symbol, &'static OpInfo> {
    static REGISTRY: OnceLock<HashMap<Symbol, &'static OpInfo>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        for info in table() {
            let prev = map.insert(Symbol::intern(info.name), info);
            assert!(prev.is_none(), "duplicate op {}", info.name);
        }
        map
    })
}

/// Looks up a built-in operation by symbol.
///
/// Returns `None` for uninterpreted (program-specific) operations like the
/// checksum example's `add` and `carry`.
pub fn info(sym: Symbol) -> Option<&'static OpInfo> {
    registry().get(&sym).copied()
}

/// Evaluates a built-in operation on constant arguments.
///
/// Returns `None` if the operation is unknown, has no word-level
/// semantics (memory ops), or `args` has the wrong arity.
pub fn eval(sym: Symbol, args: &[u64]) -> Option<u64> {
    let info = info(sym)?;
    if args.len() != info.arity {
        return None;
    }
    info.eval.map(|f| f(args))
}

/// True if `sym` names a machine operation (register-to-register or
/// memory).
pub fn is_machine(sym: Symbol) -> bool {
    matches!(
        info(sym).map(|i| i.kind),
        Some(OpKind::Machine | OpKind::MachineMemory)
    )
}

/// Iterates over every built-in operation.
pub fn all() -> impl Iterator<Item = &'static OpInfo> {
    table().iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, args: &[u64]) -> u64 {
        eval(Symbol::intern(name), args).expect("op evaluates")
    }

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(ev("add64", &[u64::MAX, 1]), 0);
        assert_eq!(ev("sub64", &[0, 1]), u64::MAX);
        assert_eq!(ev("mul64", &[1 << 63, 2]), 0);
        assert_eq!(ev("neg64", &[1]), u64::MAX);
    }

    #[test]
    fn machine_and_math_arithmetic_agree() {
        for (a, b) in [(3, 4), (u64::MAX, 7), (1 << 62, 1 << 63)] {
            assert_eq!(ev("addq", &[a, b]), ev("add64", &[a, b]));
            assert_eq!(ev("subq", &[a, b]), ev("sub64", &[a, b]));
            assert_eq!(ev("mulq", &[a, b]), ev("mul64", &[a, b]));
        }
    }

    #[test]
    fn scaled_adds() {
        assert_eq!(ev("s4addq", &[10, 1]), 41);
        assert_eq!(ev("s8addq", &[10, 1]), 81);
        assert_eq!(ev("s4subq", &[10, 1]), 39);
        assert_eq!(ev("s8subq", &[10, 1]), 79);
    }

    #[test]
    fn addl_sign_extends() {
        assert_eq!(ev("addl", &[0x7fff_ffff, 1]), 0xffff_ffff_8000_0000);
        assert_eq!(ev("addl", &[1, 1]), 2);
        assert_eq!(ev("subl", &[0, 1]), u64::MAX);
    }

    #[test]
    fn shifts_mask_the_count() {
        assert_eq!(ev("sll", &[1, 64]), 1); // count taken mod 64, like Alpha
        assert_eq!(ev("sll", &[1, 3]), 8);
        assert_eq!(ev("srl", &[0x80, 4]), 8);
        assert_eq!(ev("sra", &[u64::MAX, 5]), u64::MAX);
        assert_eq!(ev("shl64", &[1, 3]), ev("sll", &[1, 3]));
    }

    #[test]
    fn pow_of_two() {
        assert_eq!(ev("pow", &[2, 2]), 4);
        assert_eq!(ev("pow", &[2, 63]), 1 << 63);
        assert_eq!(ev("pow", &[2, 64]), 0); // wraps
        assert_eq!(ev("pow", &[3, 0]), 1);
    }

    #[test]
    fn byte_extract_insert_mask() {
        let w = 0x8877_6655_4433_2211u64;
        assert_eq!(ev("extbl", &[w, 0]), 0x11);
        assert_eq!(ev("extbl", &[w, 3]), 0x44);
        assert_eq!(ev("extbl", &[w, 8]), 0x11); // index mod 8
        assert_eq!(ev("extwl", &[w, 2]), 0x4433);
        assert_eq!(ev("extql", &[w, 4]), 0x8877_6655);
        assert_eq!(ev("insbl", &[0xab, 3]), 0x0000_00ab_0000_0000 >> 8);
        assert_eq!(ev("insbl", &[0x1_23, 1]), 0x2300);
        assert_eq!(ev("mskbl", &[w, 1]), 0x8877_6655_4433_0011);
        assert_eq!(ev("mskwl", &[w, 0]), 0x8877_6655_4433_0000);
        assert_eq!(ev("mskql", &[w, 0]), 0);
    }

    #[test]
    fn selectb_storeb_agree_with_ext_ins_msk() {
        let w = 0xdead_beef_1234_5678u64;
        for i in 0..8 {
            assert_eq!(ev("selectb", &[w, i]), ev("extbl", &[w, i]));
            let composed = ev("bis", &[ev("mskbl", &[w, i]), ev("insbl", &[0xa5, i])]);
            assert_eq!(ev("storeb", &[w, i, 0xa5]), composed);
        }
    }

    #[test]
    fn zapnot_keeps_selected_bytes() {
        let w = 0x8877_6655_4433_2211u64;
        assert_eq!(ev("zapnot", &[w, 0b0000_0011]), 0x2211);
        assert_eq!(ev("zapnot", &[w, 0xff]), w);
        assert_eq!(ev("zap", &[w, 0xff]), 0);
        assert_eq!(ev("zap", &[w, 0]), w);
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev("cmpult", &[1, 2]), 1);
        assert_eq!(ev("cmpult", &[2, 1]), 0);
        assert_eq!(ev("cmplt", &[u64::MAX, 0]), 1); // -1 < 0 signed
        assert_eq!(ev("cmpult", &[u64::MAX, 0]), 0);
        assert_eq!(ev("cmpeq", &[5, 5]), 1);
        assert_eq!(ev("cmple", &[3, 3]), 1);
        assert_eq!(ev("cmpule", &[4, 3]), 0);
    }

    #[test]
    fn conditional_moves() {
        assert_eq!(ev("cmoveq", &[0, 7, 9]), 7);
        assert_eq!(ev("cmoveq", &[1, 7, 9]), 9);
        assert_eq!(ev("cmovne", &[1, 7, 9]), 7);
    }

    #[test]
    fn sign_extensions() {
        assert_eq!(ev("sextb", &[0x80]), 0xffff_ffff_ffff_ff80);
        assert_eq!(ev("sextb", &[0x7f]), 0x7f);
        assert_eq!(ev("sextw", &[0x8000]), 0xffff_ffff_ffff_8000);
    }

    #[test]
    fn selectw_is_word_indexed() {
        let w = 0x4444_3333_2222_1111u64;
        assert_eq!(ev("selectw", &[w, 0]), 0x1111);
        assert_eq!(ev("selectw", &[w, 3]), 0x4444);
        assert_eq!(ev("storew", &[w, 1, 0xabcd]), 0x4444_3333_abcd_1111);
    }

    #[test]
    fn registry_rejects_bad_arity_and_unknown_ops() {
        assert_eq!(eval(Symbol::intern("addq"), &[1]), None);
        assert_eq!(eval(Symbol::intern("no_such_op"), &[1, 2]), None);
        assert_eq!(eval(Symbol::intern("ldq"), &[1, 2]), None); // memory: no word semantics
    }

    #[test]
    fn classification() {
        assert!(is_machine(Symbol::intern("addq")));
        assert!(is_machine(Symbol::intern("ldq")));
        assert!(!is_machine(Symbol::intern("add64")));
        assert!(!is_machine(Symbol::intern("pow")));
        assert!(!is_machine(Symbol::intern("carry")));
        assert_eq!(
            info(Symbol::intern("select")).unwrap().kind,
            OpKind::MathMemory
        );
    }

    #[test]
    fn all_ops_have_consistent_metadata() {
        for op in all() {
            let sym = Symbol::intern(op.name);
            assert_eq!(info(sym).unwrap().name, op.name);
            if let Some(f) = op.eval {
                // Evaluator must not panic on arbitrary args of the right arity.
                let args: Vec<u64> = (0..op.arity as u64)
                    .map(|i| i.wrapping_mul(u64::MAX / 3))
                    .collect();
                let _ = f(&args);
            }
        }
    }
}
