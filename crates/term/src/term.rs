//! Immutable first-order terms.

use std::fmt;
use std::sync::Arc;

use crate::sexpr::Sexpr;
use crate::symbol::Symbol;

/// The head of a term: a function/leaf symbol, a 64-bit constant, or a
/// pattern variable.
///
/// Pattern variables only appear inside axiom patterns; ground terms (the
/// things the E-graph stores) never contain them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// An interned function or leaf symbol (`add64`, `reg6`, `M`, ...).
    Sym(Symbol),
    /// A 64-bit literal constant.
    Const(u64),
    /// A universally quantified pattern variable.
    Var(Symbol),
}

impl Op {
    /// Returns the symbol if this op is a function/leaf symbol.
    pub fn as_sym(self) -> Option<Symbol> {
        match self {
            Op::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the constant value if this op is a constant.
    pub fn as_const(self) -> Option<u64> {
        match self {
            Op::Const(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Sym(s) => write!(f, "{s}"),
            Op::Const(c) => write!(f, "{c}"),
            Op::Var(v) => write!(f, "?{v}"),
        }
    }
}

#[derive(PartialEq, Eq, Hash, Debug)]
struct TermNode {
    op: Op,
    args: Vec<Term>,
}

/// An immutable term: an [`Op`] applied to zero or more argument terms.
///
/// Terms are atomically reference-counted trees; cloning is O(1),
/// sharing across threads is free (the matcher fans patterns out over a
/// thread pool), and equality and hashing are structural.
///
/// # Example
///
/// ```
/// use denali_term::Term;
/// let t = Term::call("mul64", vec![Term::var("x"), Term::constant(4)]);
/// assert_eq!(t.args().len(), 2);
/// assert_eq!(t.to_string(), "(mul64 ?x 4)");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Term(Arc<TermNode>);

impl Term {
    /// Creates a term from an op and arguments.
    pub fn new(op: Op, args: Vec<Term>) -> Term {
        Term(Arc::new(TermNode { op, args }))
    }

    /// Creates a nullary leaf term from a symbol (a register, memory, or
    /// other input name).
    pub fn leaf(sym: impl Into<Symbol>) -> Term {
        Term::new(Op::Sym(sym.into()), Vec::new())
    }

    /// Creates a constant term.
    pub fn constant(value: u64) -> Term {
        Term::new(Op::Const(value), Vec::new())
    }

    /// Creates a pattern variable term.
    pub fn var(name: impl Into<Symbol>) -> Term {
        Term::new(Op::Var(name.into()), Vec::new())
    }

    /// Creates an application of the named function to `args`.
    pub fn call(name: impl Into<Symbol>, args: Vec<Term>) -> Term {
        Term::new(Op::Sym(name.into()), args)
    }

    /// The head operator.
    pub fn op(&self) -> Op {
        self.0.op
    }

    /// The argument subterms.
    pub fn args(&self) -> &[Term] {
        &self.0.args
    }

    /// Returns the constant value if this term is a literal constant.
    pub fn as_const(&self) -> Option<u64> {
        self.0.op.as_const()
    }

    /// True if this term or any subterm is a pattern variable.
    pub fn has_vars(&self) -> bool {
        matches!(self.0.op, Op::Var(_)) || self.0.args.iter().any(Term::has_vars)
    }

    /// Collects the distinct pattern variables in preorder.
    pub fn vars(&self) -> Vec<Symbol> {
        fn go(t: &Term, out: &mut Vec<Symbol>) {
            if let Op::Var(v) = t.op() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            for a in t.args() {
                go(a, out);
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }

    /// Substitutes pattern variables using `lookup`; variables for which
    /// `lookup` returns `None` are left in place.
    pub fn substitute(&self, lookup: &impl Fn(Symbol) -> Option<Term>) -> Term {
        match self.op() {
            Op::Var(v) => lookup(v).unwrap_or_else(|| self.clone()),
            op => {
                let args = self.args().iter().map(|a| a.substitute(lookup)).collect();
                Term::new(op, args)
            }
        }
    }

    /// Number of nodes in the term tree.
    pub fn size(&self) -> usize {
        1 + self.args().iter().map(Term::size).sum::<usize>()
    }

    /// Parses a term from an s-expression.
    ///
    /// Atoms that parse as integers become constants; atoms listed in
    /// `vars` become pattern variables; other atoms become leaf symbols.
    /// A list `(f a b ...)` becomes an application of `f`.
    ///
    /// # Errors
    ///
    /// Returns a message if the s-expression has an empty list or a
    /// non-atom head.
    pub fn from_sexpr(sexpr: &Sexpr, vars: &[Symbol]) -> Result<Term, String> {
        match sexpr {
            Sexpr::Atom(a) => {
                if let Some(c) = parse_integer(a) {
                    Ok(Term::constant(c))
                } else {
                    let sym = Symbol::intern(a);
                    if vars.contains(&sym) {
                        Ok(Term::var(sym))
                    } else {
                        Ok(Term::leaf(sym))
                    }
                }
            }
            Sexpr::List(items) => {
                let (head, rest) = items
                    .split_first()
                    .ok_or_else(|| "empty list is not a term".to_owned())?;
                let Sexpr::Atom(name) = head else {
                    return Err(format!("term head must be an atom, got {head}"));
                };
                let args = rest
                    .iter()
                    .map(|s| Term::from_sexpr(s, vars))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Term::call(Symbol::intern(name), args))
            }
        }
    }
}

/// Parses a decimal (`42`, `-8`) or hexadecimal (`0xff`) integer atom into
/// its two's-complement 64-bit value.
pub fn parse_integer(atom: &str) -> Option<u64> {
    if let Some(hex) = atom.strip_prefix("0x").or_else(|| atom.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    if let Some(rest) = atom.strip_prefix('-') {
        if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        return rest.parse::<i64>().ok().map(|v| (-v) as u64);
    }
    if atom.is_empty() || !atom.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    atom.parse::<u64>().ok()
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args().is_empty() {
            write!(f, "{}", self.op())
        } else {
            write!(f, "({}", self.op())?;
            for a in self.args() {
                write!(f, " {a}")?;
            }
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goal() -> Term {
        // reg6*4 + 1 from the paper's Figure 2.
        Term::call(
            "add64",
            vec![
                Term::call("mul64", vec![Term::leaf("reg6"), Term::constant(4)]),
                Term::constant(1),
            ],
        )
    }

    #[test]
    fn display_round_trip_shape() {
        assert_eq!(goal().to_string(), "(add64 (mul64 reg6 4) 1)");
    }

    #[test]
    fn structural_equality() {
        assert_eq!(goal(), goal());
        assert_ne!(goal(), Term::constant(1));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(goal().size(), 5);
        assert_eq!(Term::constant(3).size(), 1);
    }

    #[test]
    fn vars_collects_in_preorder_without_dups() {
        let t = Term::call(
            "f",
            vec![
                Term::var("x"),
                Term::call("g", vec![Term::var("y"), Term::var("x")]),
            ],
        );
        let vs = t.vars();
        assert_eq!(vs, vec![Symbol::intern("x"), Symbol::intern("y")]);
        assert!(t.has_vars());
        assert!(!goal().has_vars());
    }

    #[test]
    fn substitute_replaces_vars_only() {
        let pat = Term::call("mul64", vec![Term::var("k"), Term::constant(4)]);
        let inst = pat.substitute(&|v| (v == Symbol::intern("k")).then(|| Term::leaf("reg6")));
        assert_eq!(inst.to_string(), "(mul64 reg6 4)");
        assert!(!inst.has_vars());
    }

    #[test]
    fn from_sexpr_parses_constants_vars_and_calls() {
        let s = crate::sexpr::parse("(add64 (mul64 k 4) 0xff)").unwrap();
        let k = Symbol::intern("k");
        let t = Term::from_sexpr(&s[0], &[k]).unwrap();
        assert_eq!(t.to_string(), "(add64 (mul64 ?k 4) 255)");
    }

    #[test]
    fn from_sexpr_rejects_empty_list() {
        let s = crate::sexpr::parse("()").unwrap();
        assert!(Term::from_sexpr(&s[0], &[]).is_err());
    }

    #[test]
    fn parse_integer_handles_negative_and_hex() {
        assert_eq!(parse_integer("42"), Some(42));
        assert_eq!(parse_integer("-1"), Some(u64::MAX));
        assert_eq!(parse_integer("0xFF"), Some(255));
        assert_eq!(parse_integer("x"), None);
        assert_eq!(parse_integer("1e3"), None);
        assert_eq!(parse_integer("-"), None);
    }
}
