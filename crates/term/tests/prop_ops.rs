//! Property-based tests for operation semantics and the s-expression
//! reader. These pin down the algebraic identities the axiom sets assert
//! declaratively, directly against the evaluator.

use denali_prng::{forall, Rng};
use denali_term::ops;
use denali_term::sexpr;
use denali_term::{Symbol, Term};

fn ev(name: &str, args: &[u64]) -> u64 {
    ops::eval(Symbol::intern(name), args).expect("op evaluates")
}

#[test]
fn add64_commutes_and_associates() {
    forall("add64_commutes_and_associates", 256, |rng| {
        let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        assert_eq!(ev("add64", &[a, b]), ev("add64", &[b, a]));
        assert_eq!(
            ev("add64", &[a, ev("add64", &[b, c])]),
            ev("add64", &[ev("add64", &[a, b]), c])
        );
        assert_eq!(ev("add64", &[a, 0]), a);
    });
}

#[test]
fn mul_by_pow2_is_shift() {
    forall("mul_by_pow2_is_shift", 256, |rng| {
        let a = rng.next_u64();
        let n = rng.below(63);
        let p = ev("pow", &[2, n]);
        assert_eq!(ev("mul64", &[a, p]), ev("shl64", &[a, n]));
    });
}

#[test]
fn s4addq_is_scale_and_add() {
    forall("s4addq_is_scale_and_add", 256, |rng| {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        assert_eq!(
            ev("s4addq", &[a, b]),
            ev("add64", &[ev("mul64", &[a, 4]), b])
        );
        assert_eq!(
            ev("s8addq", &[a, b]),
            ev("add64", &[ev("mul64", &[a, 8]), b])
        );
    });
}

#[test]
fn storeb_reads_back() {
    forall("storeb_reads_back", 256, |rng| {
        let (w, x) = (rng.next_u64(), rng.next_u64());
        let i = rng.below(8);
        let stored = ev("storeb", &[w, i, x]);
        assert_eq!(ev("selectb", &[stored, i]), x & 0xff);
        // Other bytes are unchanged.
        for j in 0..8 {
            if j != i {
                assert_eq!(ev("selectb", &[stored, j]), ev("selectb", &[w, j]));
            }
        }
    });
}

#[test]
fn storeb_decomposes_into_msk_ins_bis() {
    forall("storeb_decomposes_into_msk_ins_bis", 256, |rng| {
        // The identity the byte-swap code generation depends on:
        // storeb(w,i,x) = bis(mskbl(w,i), insbl(x,i)).
        let (w, x) = (rng.next_u64(), rng.next_u64());
        let i = rng.below(8);
        let lhs = ev("storeb", &[w, i, x]);
        let rhs = ev("bis", &[ev("mskbl", &[w, i]), ev("insbl", &[x, i])]);
        assert_eq!(lhs, rhs);
    });
}

#[test]
fn extbl_matches_shift_and_mask() {
    forall("extbl_matches_shift_and_mask", 256, |rng| {
        let w = rng.next_u64();
        let i = rng.below(8);
        assert_eq!(
            ev("extbl", &[w, i]),
            ev("and64", &[ev("shr64", &[w, 8 * i]), 0xff])
        );
        assert_eq!(ev("extbl", &[w, i]), ev("selectb", &[w, i]));
        assert_eq!(
            ev("extwl", &[w, i]),
            ev("and64", &[ev("shr64", &[w, 8 * i]), 0xffff])
        );
    });
}

#[test]
fn insbl_only_depends_on_low_byte() {
    forall("insbl_only_depends_on_low_byte", 256, |rng| {
        let w = rng.next_u64();
        let i = rng.below(8);
        assert_eq!(ev("insbl", &[w, i]), ev("insbl", &[w & 0xff, i]));
        assert_eq!(ev("insbl", &[w, 0]), w & 0xff);
    });
}

#[test]
fn carry_identity_from_checksum_example() {
    forall("carry_identity_from_checksum_example", 256, |rng| {
        // carry(a,b) = cmpult(add64(a,b), a) = cmpult(add64(a,b), b)
        // (the program-specific axioms of Figure 6), except both forms
        // coincide exactly when they equal the mathematical carry.
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let sum = ev("add64", &[a, b]);
        let carry = u64::from(sum < a);
        assert_eq!(ev("cmpult", &[sum, a]), carry);
        assert_eq!(ev("cmpult", &[sum, b]), carry);
    });
}

#[test]
fn zapnot_is_bytewise() {
    forall("zapnot_is_bytewise", 256, |rng| {
        let w = rng.next_u64();
        let m = rng.below(256);
        let z = ev("zapnot", &[w, m]);
        for byte in 0..8u64 {
            let expected = if (m >> byte) & 1 == 1 {
                ev("selectb", &[w, byte])
            } else {
                0
            };
            assert_eq!(ev("selectb", &[z, byte]), expected);
        }
        assert_eq!(ev("zap", &[w, m]), ev("zapnot", &[w, !m & 0xff]));
    });
}

#[test]
fn cmov_selects() {
    forall("cmov_selects", 256, |rng| {
        let (c, v, old) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        assert_eq!(ev("cmoveq", &[c, v, old]), if c == 0 { v } else { old });
        assert_eq!(ev("cmovne", &[c, v, old]), if c != 0 { v } else { old });
        // Exercise the c == 0 branch explicitly (a random u64 is almost
        // never zero).
        assert_eq!(ev("cmoveq", &[0, v, old]), v);
        assert_eq!(ev("cmovne", &[0, v, old]), old);
    });
}

#[test]
fn parse_integer_round_trips() {
    forall("parse_integer_round_trips", 256, |rng| {
        let v = rng.next_u64();
        assert_eq!(denali_term::term::parse_integer(&v.to_string()), Some(v));
        assert_eq!(
            denali_term::term::parse_integer(&format!("0x{v:x}")),
            Some(v)
        );
    });
}

#[test]
fn sexpr_display_round_trips() {
    // Build a deterministic pseudo-random sexpr and round-trip it.
    fn build(depth: usize, rng: &mut Rng) -> sexpr::Sexpr {
        if depth == 0 || rng.below(3) == 0 {
            sexpr::Sexpr::atom(format!("a{}", rng.below(100)))
        } else {
            let n = rng.below_usize(4);
            sexpr::Sexpr::List((0..n).map(|_| build(depth - 1, rng)).collect())
        }
    }
    forall("sexpr_display_round_trips", 256, |rng| {
        let depth = rng.below_usize(4);
        let s = build(depth, rng);
        let printed = s.to_string();
        let parsed = sexpr::parse(&printed).unwrap();
        if let sexpr::Sexpr::Atom(_) = s {
            assert_eq!(&parsed[0], &s);
        } else {
            assert_eq!(parsed.len(), 1);
            assert_eq!(&parsed[0], &s);
        }
    });
}

#[test]
fn substitution_preserves_groundness() {
    forall("substitution_preserves_groundness", 256, |rng| {
        let (x, y) = (rng.next_u64(), rng.next_u64());
        let pat = Term::call("add64", vec![Term::var("a"), Term::var("b")]);
        let inst = pat.substitute(&|v| {
            if v == Symbol::intern("a") {
                Some(Term::constant(x))
            } else if v == Symbol::intern("b") {
                Some(Term::constant(y))
            } else {
                None
            }
        });
        assert!(!inst.has_vars());
        let env = denali_term::value::Env::new();
        assert_eq!(env.eval_word(&inst).unwrap(), x.wrapping_add(y));
    });
}
