//! Property-based tests for operation semantics and the s-expression
//! reader. These pin down the algebraic identities the axiom sets assert
//! declaratively, directly against the evaluator.

use denali_term::ops;
use denali_term::sexpr;
use denali_term::{Symbol, Term};
use proptest::prelude::*;

fn ev(name: &str, args: &[u64]) -> u64 {
    ops::eval(Symbol::intern(name), args).expect("op evaluates")
}

proptest! {
    #[test]
    fn add64_commutes_and_associates(a: u64, b: u64, c: u64) {
        prop_assert_eq!(ev("add64", &[a, b]), ev("add64", &[b, a]));
        prop_assert_eq!(
            ev("add64", &[a, ev("add64", &[b, c])]),
            ev("add64", &[ev("add64", &[a, b]), c])
        );
        prop_assert_eq!(ev("add64", &[a, 0]), a);
    }

    #[test]
    fn mul_by_pow2_is_shift(a: u64, n in 0u64..63) {
        let p = ev("pow", &[2, n]);
        prop_assert_eq!(ev("mul64", &[a, p]), ev("shl64", &[a, n]));
    }

    #[test]
    fn s4addq_is_scale_and_add(a: u64, b: u64) {
        prop_assert_eq!(
            ev("s4addq", &[a, b]),
            ev("add64", &[ev("mul64", &[a, 4]), b])
        );
        prop_assert_eq!(
            ev("s8addq", &[a, b]),
            ev("add64", &[ev("mul64", &[a, 8]), b])
        );
    }

    #[test]
    fn storeb_reads_back(w: u64, i in 0u64..8, x: u64) {
        let stored = ev("storeb", &[w, i, x]);
        prop_assert_eq!(ev("selectb", &[stored, i]), x & 0xff);
        // Other bytes are unchanged.
        for j in 0..8 {
            if j != i {
                prop_assert_eq!(ev("selectb", &[stored, j]), ev("selectb", &[w, j]));
            }
        }
    }

    #[test]
    fn storeb_decomposes_into_msk_ins_bis(w: u64, i in 0u64..8, x: u64) {
        // The identity the byte-swap code generation depends on:
        // storeb(w,i,x) = bis(mskbl(w,i), insbl(x,i)).
        let lhs = ev("storeb", &[w, i, x]);
        let rhs = ev("bis", &[ev("mskbl", &[w, i]), ev("insbl", &[x, i])]);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn extbl_matches_shift_and_mask(w: u64, i in 0u64..8) {
        prop_assert_eq!(ev("extbl", &[w, i]), ev("and64", &[ev("shr64", &[w, 8 * i]), 0xff]));
        prop_assert_eq!(ev("extbl", &[w, i]), ev("selectb", &[w, i]));
        prop_assert_eq!(ev("extwl", &[w, i]), ev("and64", &[ev("shr64", &[w, 8 * i]), 0xffff]));
    }

    #[test]
    fn insbl_only_depends_on_low_byte(w: u64, i in 0u64..8) {
        prop_assert_eq!(ev("insbl", &[w, i]), ev("insbl", &[w & 0xff, i]));
        prop_assert_eq!(ev("insbl", &[w, 0]), w & 0xff);
    }

    #[test]
    fn carry_identity_from_checksum_example(a: u64, b: u64) {
        // carry(a,b) = cmpult(add64(a,b), a) = cmpult(add64(a,b), b)
        // (the program-specific axioms of Figure 6), except both forms
        // coincide exactly when they equal the mathematical carry.
        let sum = ev("add64", &[a, b]);
        let carry = (sum < a) as u64;
        prop_assert_eq!(ev("cmpult", &[sum, a]), carry);
        prop_assert_eq!(ev("cmpult", &[sum, b]), carry);
    }

    #[test]
    fn zapnot_is_bytewise(w: u64, m in 0u64..256) {
        let z = ev("zapnot", &[w, m]);
        for byte in 0..8u64 {
            let expected = if (m >> byte) & 1 == 1 { ev("selectb", &[w, byte]) } else { 0 };
            prop_assert_eq!(ev("selectb", &[z, byte]), expected);
        }
        prop_assert_eq!(ev("zap", &[w, m]), ev("zapnot", &[w, !m & 0xff]));
    }

    #[test]
    fn cmov_selects(c: u64, v: u64, old: u64) {
        prop_assert_eq!(ev("cmoveq", &[c, v, old]), if c == 0 { v } else { old });
        prop_assert_eq!(ev("cmovne", &[c, v, old]), if c != 0 { v } else { old });
    }

    #[test]
    fn parse_integer_round_trips(v: u64) {
        prop_assert_eq!(denali_term::term::parse_integer(&v.to_string()), Some(v));
        prop_assert_eq!(denali_term::term::parse_integer(&format!("0x{v:x}")), Some(v));
    }

    #[test]
    fn sexpr_display_round_trips(depth in 0usize..4, seed: u64) {
        // Build a deterministic pseudo-random sexpr and round-trip it.
        fn build(depth: usize, seed: u64) -> sexpr::Sexpr {
            if depth == 0 || seed % 3 == 0 {
                sexpr::Sexpr::atom(format!("a{}", seed % 100))
            } else {
                let n = (seed % 4) as usize;
                sexpr::Sexpr::List(
                    (0..n).map(|i| build(depth - 1, seed / 2 + i as u64)).collect(),
                )
            }
        }
        let s = build(depth, seed);
        let printed = s.to_string();
        let parsed = sexpr::parse(&printed).unwrap();
        if let sexpr::Sexpr::Atom(_) = s {
            prop_assert_eq!(&parsed[0], &s);
        } else {
            prop_assert_eq!(parsed.len(), 1);
            prop_assert_eq!(&parsed[0], &s);
        }
    }

    #[test]
    fn substitution_preserves_groundness(x: u64, y: u64) {
        let pat = Term::call("add64", vec![Term::var("a"), Term::var("b")]);
        let inst = pat.substitute(&|v| {
            if v == Symbol::intern("a") {
                Some(Term::constant(x))
            } else if v == Symbol::intern("b") {
                Some(Term::constant(y))
            } else {
                None
            }
        });
        prop_assert!(!inst.has_vars());
        let env = denali_term::value::Env::new();
        prop_assert_eq!(env.eval_word(&inst).unwrap(), x.wrapping_add(y));
    }
}
