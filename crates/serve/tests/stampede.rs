//! Stampede regression tests: the single-flight guarantees under
//! concurrent identical requests.
//!
//! The deterministic tests pin the leader/follower mechanics exactly
//! (a gate job occupies the pool's only worker, so the leader is
//! provably still in flight while every follower joins); the TCP test
//! then hammers the real transport with 64 concurrent sockets and
//! asserts the invariant that holds *regardless* of timing: exactly
//! one pipeline execution, every response byte-identical.

use std::io::{BufRead, BufReader, Write};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use denali_axioms::SaturationLimits;
use denali_core::Options;
use denali_serve::coalesce::{Coalescer, Delivery, Join, Wait};
use denali_serve::pool::Pool;
use denali_serve::server::{serve_lines, serve_listener};
use denali_serve::{Server, ServerConfig};
use denali_trace::json::{self, Json};
use denali_trace::Value;

/// A source cheap enough to compile in milliseconds.
const SOURCE: &str = r"(\procdecl f ((reg6 long)) long (:= (\res (+ (* reg6 4) 1))))";

fn fast_options() -> Options {
    Options {
        max_cycles: 8,
        saturation: SaturationLimits {
            max_iterations: 2,
            max_nodes: 400,
            max_instances_per_round: 100,
            max_structural_per_round: 20,
            max_structural_growth: 100,
            ..SaturationLimits::default()
        },
        ..Options::default()
    }
}

fn test_server(trace: bool) -> Arc<Server> {
    let mut base = fast_options();
    base.trace = trace;
    Arc::new(
        Server::new(ServerConfig {
            base,
            ..ServerConfig::default()
        })
        .unwrap(),
    )
}

fn compile_line(id: &str, extra: &str) -> String {
    let mut src = String::new();
    json::write_str(&mut src, SOURCE);
    format!(r#"{{"type":"compile","id":"{id}","source":{src}{extra}}}"#)
}

fn stats(server: &Server) -> Json {
    let line = server.handle_line(r#"{"type":"stats","id":0}"#).unwrap();
    json::parse(&line).unwrap()
}

fn stat(v: &Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for key in path {
        cur = cur.get(key).unwrap_or_else(|| panic!("no {path:?}: {v:?}"));
    }
    cur.as_u64().unwrap()
}

/// Polls until `cond` holds (10s cap), for conditions that become true
/// on other threads.
fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// 64 identical requests while the pool's only worker is provably busy:
/// one leader (queued), 63 followers — one execution, 64 byte-identical
/// bodies, and the stats/trace record all of it.
#[test]
fn sixty_four_identical_requests_execute_the_pipeline_once() {
    let server = test_server(true);
    let pool = Pool::new(1, 8);

    // Occupy the single worker so the leader cannot finish before the
    // followers join — the stampede is deterministic, not a race the
    // test usually wins.
    let gate = Arc::new(Mutex::new(()));
    let hold = gate.lock().unwrap();
    let g = Arc::clone(&gate);
    pool.try_submit(move || drop(g.lock().unwrap())).unwrap();
    while pool.depth() > 0 {
        std::thread::yield_now();
    }

    let input: String = (0..64)
        .map(|i| compile_line(&format!("s{i:02}"), "") + "\n")
        .collect();
    let out = Arc::new(Mutex::new(Vec::<u8>::new()));
    serve_lines(&server, &pool, input.as_bytes(), &out).unwrap();

    // All 64 are now in flight: 1 leader in the queue, 63 followers
    // waiting on it, zero queue slots consumed by followers.
    assert_eq!(pool.depth(), 1, "followers must not consume queue slots");
    let s = stats(&server);
    assert_eq!(stat(&s, &["coalesce", "waiting"]), 63);

    drop(hold); // release the gate: the leader compiles once
    drop(pool); // join the worker
    server.drain_followers(); // every follower response is flushed

    let written = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    let mut lines: Vec<&str> = written.lines().collect();
    lines.sort_unstable(); // ids are fixed-width, so this orders by id
    assert_eq!(lines.len(), 64, "every request is answered");
    // Byte-identical bodies: strip the (fixed-width) id prefix.
    let prefix_len = r#"{"v":1,"id":"s00","#.len();
    let leader_body = &lines[0][prefix_len..];
    for (i, line) in lines.iter().enumerate() {
        assert!(line.starts_with(&format!(r#"{{"v":1,"id":"s{i:02}","#)));
        assert_eq!(
            &line[prefix_len..],
            leader_body,
            "follower bodies replay the leader's bytes"
        );
    }
    let v = json::parse(lines[0]).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(false));

    // The counters tell the same story: one execution, one cache miss
    // (the leader's), 63 coalesced replays.
    let s = stats(&server);
    assert_eq!(stat(&s, &["executions"]), 1, "exactly one pipeline run");
    assert_eq!(stat(&s, &["coalesce", "coalesced"]), 63);
    assert_eq!(stat(&s, &["coalesce", "expired"]), 0);
    assert_eq!(stat(&s, &["coalesce", "promotions"]), 0);
    assert_eq!(stat(&s, &["compiles", "ok"]), 64);
    assert_eq!(stat(&s, &["cache", "misses"]), 1);
    assert_eq!(stat(&s, &["cache", "hits"]), 0);
    assert_eq!(stat(&s, &["coalesce", "waiting"]), 0);

    // And so do the serve.request trace spans: 64 of them, 63 tagged
    // coalesced.
    let spans: Vec<_> = server
        .tracer()
        .records()
        .into_iter()
        .filter(|r| r.name() == Some("serve.request"))
        .collect();
    assert_eq!(spans.len(), 64);
    let coalesced = spans
        .iter()
        .filter(|r| r.get("coalesced") == Some(&Value::Bool(true)))
        .count();
    assert_eq!(coalesced, 63);

    // A later identical request is a plain cache hit, byte-identical to
    // the leader's response (modulo id).
    let warm = server.handle_line(&compile_line("s00", "")).unwrap();
    assert_eq!(&warm[prefix_len..], leader_body);
}

/// A follower whose own deadline expires before the leader finishes
/// gets its own degraded answer at its deadline — it does not wait for
/// a leader that might beat *its* deadline but not the follower's.
#[test]
fn follower_deadline_expires_independently_of_its_leader() {
    let server = test_server(false);
    let pool = Pool::new(1, 8);

    let gate = Arc::new(Mutex::new(()));
    let hold = gate.lock().unwrap();
    let g = Arc::clone(&gate);
    pool.try_submit(move || drop(g.lock().unwrap())).unwrap();
    while pool.depth() > 0 {
        std::thread::yield_now();
    }

    // The leader has no deadline; the follower's is 30ms. While the
    // gate blocks the leader, the follower must degrade on schedule.
    let input = format!(
        "{}\n{}\n",
        compile_line("leader", ""),
        compile_line("follower", r#","deadline_ms":30"#)
    );
    let out = Arc::new(Mutex::new(Vec::<u8>::new()));
    serve_lines(&server, &pool, input.as_bytes(), &out).unwrap();

    // The follower answers (degraded) while the leader is still gated.
    eventually("follower's degraded response", || {
        !out.lock().unwrap().is_empty()
    });
    {
        let written = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        let first = json::parse(written.lines().next().unwrap()).unwrap();
        assert_eq!(
            first.get("id").and_then(Json::as_str),
            Some("follower"),
            "the gated leader cannot have answered yet"
        );
        assert_eq!(first.get("degraded").and_then(Json::as_bool), Some(true));
    }

    drop(hold);
    drop(pool);
    server.drain_followers();

    let written = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    let by_id = |id: &str| {
        written
            .lines()
            .map(|l| json::parse(l).unwrap())
            .find(|v| v.get("id").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no response for {id}:\n{written}"))
    };
    // The leader still delivers the full (non-degraded) result.
    let leader = by_id("leader");
    assert_eq!(leader.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(leader.get("degraded").and_then(Json::as_bool), Some(false));
    // Same program identity on both answers.
    assert_eq!(
        leader.get("fingerprint").and_then(Json::as_str),
        by_id("follower").get("fingerprint").and_then(Json::as_str)
    );

    let s = stats(&server);
    assert_eq!(stat(&s, &["executions"]), 1);
    assert_eq!(stat(&s, &["coalesce", "expired"]), 1);
    assert_eq!(stat(&s, &["compiles", "degraded"]), 1);
    assert_eq!(stat(&s, &["compiles", "ok"]), 1);
}

/// A leader that panics mid-pipeline unwinds its guard inside the pool
/// worker (which survives via `catch_unwind`); one waiting follower is
/// promoted to re-execute, and other followers receive the promoted
/// leader's delivery.
#[test]
fn panicking_leader_promotes_a_follower_that_answers_the_rest() {
    let coalescer = Arc::new(Coalescer::new());
    let pool = Pool::new(1, 4);

    let Join::Leader(guard) = coalescer.join("deadbeef") else {
        panic!("first join leads");
    };
    let followers: Vec<_> = (0..2)
        .map(|_| {
            let Join::Follower(f) = coalescer.join("deadbeef") else {
                panic!("duplicate joins follow");
            };
            f
        })
        .collect();
    let (tx, rx) = channel::<String>();
    let waiters: Vec<_> = followers
        .into_iter()
        .map(|f| {
            let tx = tx.clone();
            std::thread::spawn(move || match f.wait(None) {
                Wait::Promoted(g) => {
                    // The promoted follower re-executes; here the
                    // "pipeline" is a canned success.
                    g.complete(Delivery {
                        outcome: "ok",
                        body: "recovered".to_owned(),
                    });
                    tx.send("promoted".to_owned()).unwrap();
                }
                Wait::Delivered(d) => tx.send(d.body).unwrap(),
                Wait::Expired => tx.send("expired".to_owned()).unwrap(),
            })
        })
        .collect();

    // The leader's job panics with the guard in hand — exactly what a
    // pipeline bug does on a worker thread. The worker survives, the
    // unwind orphans the flight, and promotion takes over.
    pool.try_submit(move || {
        let _guard = guard;
        panic!("injected pipeline bug");
    })
    .unwrap();

    let mut outcomes: Vec<String> = (0..2).map(|_| rx.recv().unwrap()).collect();
    outcomes.sort();
    assert_eq!(outcomes, ["promoted", "recovered"]);
    for w in waiters {
        w.join().unwrap();
    }
    // The guard drops mid-unwind, so followers can finish before the
    // worker's catch_unwind returns and bumps the counter.
    eventually("the panic to be counted", || pool.panics() == 1);

    // The flight is fully retired: a fresh join leads a fresh flight.
    assert!(matches!(coalescer.join("deadbeef"), Join::Leader(_)));
    assert_eq!(coalescer.snapshot().waiting, 0);

    // And the pool worker is still alive to run the next job.
    let (tx, rx) = channel();
    pool.try_submit(move || tx.send(42u8).unwrap()).unwrap();
    assert_eq!(rx.recv().unwrap(), 42);
}

/// The ISSUE's acceptance shape: 64 concurrent identical requests over
/// real TCP sockets. Timing decides how many coalesce versus hit the
/// cache behind a completed leader, but the invariant is exact: one
/// pipeline execution, 64 byte-identical bodies.
#[test]
fn tcp_stampede_executes_the_pipeline_exactly_once() {
    let server = test_server(false);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = serve_listener(&server, &listener);
        });
    }

    let clients: Vec<_> = (0..64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut sock = std::net::TcpStream::connect(addr).expect("connect");
                let line = compile_line(&format!("t{i:02}"), "");
                writeln!(sock, "{line}").unwrap();
                sock.flush().unwrap();
                let mut reader = BufReader::new(sock);
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                response.trim_end().to_owned()
            })
        })
        .collect();
    let responses: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let prefix_len = r#"{"v":1,"id":"t00","#.len();
    let body = &responses[0][prefix_len..];
    for (i, response) in responses.iter().enumerate() {
        assert!(response.starts_with(&format!(r#"{{"v":1,"id":"t{i:02}","#)));
        assert_eq!(&response[prefix_len..], body, "byte-identical responses");
    }
    let v = json::parse(&responses[0]).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));

    let s = stats(&server);
    assert_eq!(
        stat(&s, &["executions"]),
        1,
        "one pipeline run regardless of socket timing"
    );
    // Every non-leader either coalesced onto the flight or hit the
    // cache the leader populated before completing it.
    assert_eq!(
        stat(&s, &["coalesce", "coalesced"]) + stat(&s, &["cache", "hits"]),
        63
    );
    assert_eq!(stat(&s, &["cache", "misses"]), 1);
    assert_eq!(stat(&s, &["compiles", "ok"]), 64);
}

/// `--no-coalesce` keeps the old behavior: duplicates queue like any
/// other request and dedup only through the cache.
#[test]
fn coalescing_can_be_disabled() {
    let mut base = fast_options();
    base.trace = false;
    let server = Arc::new(
        Server::new(ServerConfig {
            base,
            coalesce: false,
            ..ServerConfig::default()
        })
        .unwrap(),
    );
    let pool = Pool::new(1, 4);
    let gate = Arc::new(Mutex::new(()));
    let hold = gate.lock().unwrap();
    let g = Arc::clone(&gate);
    pool.try_submit(move || drop(g.lock().unwrap())).unwrap();
    while pool.depth() > 0 {
        std::thread::yield_now();
    }

    let input = format!("{}\n{}\n", compile_line("a", ""), compile_line("b", ""));
    let out = Arc::new(Mutex::new(Vec::<u8>::new()));
    serve_lines(&server, &pool, input.as_bytes(), &out).unwrap();
    // Both duplicates consumed queue slots — no coalescing.
    assert_eq!(pool.depth(), 2);
    drop(hold);
    drop(pool);

    let written = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    assert_eq!(written.lines().count(), 2);
    let s = stats(&server);
    assert_eq!(stat(&s, &["coalesce", "coalesced"]), 0);
    // The second compile ran after the first and dedup'd via the cache.
    assert_eq!(stat(&s, &["executions"]), 1);
    assert_eq!(stat(&s, &["cache", "hits"]), 1);
    assert_eq!(stat(&s, &["cache", "misses"]), 1);
}
