//! End-to-end server behavior, without sockets: the response-level
//! guarantees the PR promises. Each test drives [`Server::handle_line`]
//! (or [`serve_lines`] where admission matters) with real request
//! lines and asserts on the exact response bytes.

use std::sync::{Arc, Mutex};

use denali_axioms::SaturationLimits;
use denali_core::Options;
use denali_serve::pool::Pool;
use denali_serve::server::serve_lines;
use denali_serve::{Server, ServerConfig};
use denali_trace::json::{self, Json};

/// A source cheap enough to compile in milliseconds.
const SOURCE: &str = r"(\procdecl f ((reg6 long)) long (:= (\res (+ (* reg6 4) 1))))";

/// A second distinct source (different fingerprint).
const SOURCE2: &str = r"(\procdecl g ((a long) (b long)) long (:= (\res (& (<< a 2) b))))";

fn fast_options() -> Options {
    Options {
        max_cycles: 8,
        saturation: SaturationLimits {
            max_iterations: 2,
            max_nodes: 400,
            max_instances_per_round: 100,
            max_structural_per_round: 20,
            max_structural_growth: 100,
            ..SaturationLimits::default()
        },
        ..Options::default()
    }
}

fn test_server() -> Server {
    Server::new(ServerConfig {
        base: fast_options(),
        ..ServerConfig::default()
    })
    .unwrap()
}

fn compile_line(id: &str, source: &str, extra: &str) -> String {
    let mut src = String::new();
    json::write_str(&mut src, source);
    format!(r#"{{"type":"compile","id":"{id}","source":{src}{extra}}}"#)
}

#[test]
fn warm_hit_is_byte_identical_to_cold_miss() {
    let server = test_server();
    let line = compile_line("r", SOURCE, "");
    let cold = server.handle_line(&line).unwrap();
    let warm = server.handle_line(&line).unwrap();
    assert_eq!(cold, warm, "cache hit must replay the cold bytes");
    let snap = server.cache().snapshot();
    assert_eq!((snap.hits, snap.misses), (1, 1));

    // And the response is a real result.
    let v = json::parse(&cold).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(false));
    let gmas = v.get("gmas").and_then(Json::as_arr).unwrap();
    assert!(!gmas.is_empty());
    assert!(gmas[0].get("listing").and_then(Json::as_str).is_some());
}

#[test]
fn execution_knobs_share_a_cache_entry() {
    // threads / trace / verbose do not affect results (the pipeline's
    // determinism contract), so they are not part of the fingerprint:
    // requests differing only there must share one cache entry.
    let server = test_server();
    let cold = server
        .handle_line(&compile_line("a", SOURCE, r#","options":{"threads":1}"#))
        .unwrap();
    let warm = server
        .handle_line(&compile_line(
            "a",
            SOURCE,
            r#","options":{"threads":4,"trace":true,"verbose":true}"#,
        ))
        .unwrap();
    assert_eq!(cold, warm);
    assert_eq!(server.cache().snapshot().hits, 1);

    // An output-affecting knob must NOT share the entry.
    let other = server
        .handle_line(&compile_line("a", SOURCE, r#","options":{"max_cycles":7}"#))
        .unwrap();
    let (a, b) = (json::parse(&warm).unwrap(), json::parse(&other).unwrap());
    assert_ne!(
        a.get("fingerprint").and_then(Json::as_str),
        b.get("fingerprint").and_then(Json::as_str)
    );
    assert_eq!(server.cache().snapshot().misses, 2);
}

#[test]
fn malformed_input_errors_and_the_server_keeps_serving() {
    let server = test_server();
    for bad in [
        "not json at all",
        "[1,2,3]",
        r#"{"type":"compile"}"#,
        r#"{"type":"compile","source":"x","surce":"y"}"#,
        &format!("{}{}", "[".repeat(100_000), "1"), // deep-nesting DoS
        r#"{"type":"compile","source":"(((((((((("}"#,
    ] {
        let resp = server.handle_line(bad).unwrap();
        let v = json::parse(&resp).unwrap();
        let status = v.get("status").and_then(Json::as_str);
        assert_eq!(status, Some("error"), "for input {bad:.40}");
    }
    // Still alive and correct afterwards.
    let ok = server
        .handle_line(&compile_line("after", SOURCE, ""))
        .unwrap();
    let v = json::parse(&ok).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
}

#[test]
fn expired_deadline_degrades_to_a_valid_baseline_program() {
    let server = test_server();
    // deadline_ms 0 expires before the search can start.
    let resp = server
        .handle_line(&compile_line("d", SOURCE, r#","deadline_ms":0"#))
        .unwrap();
    let v = json::parse(&resp).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(true));
    let gmas = v.get("gmas").and_then(Json::as_arr).unwrap();
    assert_eq!(gmas.len(), 1);
    let gma = &gmas[0];
    // The baseline claims no optimality certificate but is a real
    // scheduled program.
    assert_eq!(
        gma.get("refuted_below").and_then(Json::as_bool),
        Some(false)
    );
    assert!(gma.get("cycles").and_then(Json::as_u64).unwrap() > 0);
    let listing = gma.get("listing").and_then(Json::as_str).unwrap();
    assert!(listing.contains("res"), "listing:\n{listing}");

    // Degraded results are never cached: the next, unhurried request
    // must compile for real (a miss, then a non-degraded answer).
    assert_eq!(server.cache().snapshot().entries, 0);
    let full = server.handle_line(&compile_line("d", SOURCE, "")).unwrap();
    let v = json::parse(&full).unwrap();
    assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(false));
    // Same fingerprint both times: degradation is per-request, the
    // program identity is not.
    assert_eq!(
        v.get("fingerprint").and_then(Json::as_str),
        json::parse(&resp)
            .unwrap()
            .get("fingerprint")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .as_deref()
    );
}

#[test]
fn expired_deadline_under_auto_engine_harvests_the_stochastic_best() {
    // The anytime channel end to end: byteswap4 under the DPLL solver
    // takes minutes to search, but matching plus the auto-engine's
    // stochastic prepass finish in a couple of seconds and publish a
    // verified 6-cycle candidate (the greedy baseline needs 7). A
    // deadline that expires mid-search must therefore harvest the
    // chain's best instead of degrading to the baseline.
    let source = r"
(\procdecl byteswap4 ((a long)) long
  (\var (r long 0)
    (\semi
      (:= ((\selectb r 0) (\selectb a 3)))
      (:= ((\selectb r 1) (\selectb a 2)))
      (:= ((\selectb r 2) (\selectb a 1)))
      (:= ((\selectb r 3) (\selectb a 0)))
      (:= (\res r)))))";
    let server = Server::new(ServerConfig::default()).unwrap();
    let resp = server
        .handle_line(&compile_line(
            "h",
            source,
            r#","deadline_ms":8000,"options":{"solver":"dpll","engine":"auto"}"#,
        ))
        .unwrap();
    let v = json::parse(&resp).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"), "{resp}");
    // Harvested answers are real verified programs, not degraded
    // baselines — and the body says which engine produced them.
    assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("engine").and_then(Json::as_str), Some("stochastic"));
    let gmas = v.get("gmas").and_then(Json::as_arr).unwrap();
    assert_eq!(gmas.len(), 1);
    let gma = &gmas[0];
    // No optimality certificate — the chain cannot refute anything.
    assert_eq!(
        gma.get("refuted_below").and_then(Json::as_bool),
        Some(false)
    );
    // Strictly cheaper than the 7-cycle greedy baseline (the fixed
    // default seed finds 6; anything below 7 proves a real harvest).
    let cycles = gma.get("cycles").and_then(Json::as_u64).unwrap();
    assert!(cycles < 7, "harvest beat the baseline, got {cycles}");

    // The stats surface records the harvest, and counts it as ok.
    let stats = server.handle_line(r#"{"type":"stats","id":1}"#).unwrap();
    let sv = json::parse(&stats).unwrap();
    let stoke = sv.get("stoke").expect("v3 stats carry a stoke section");
    assert_eq!(
        stoke.get("harvests").and_then(Json::as_u64),
        Some(1),
        "{stats}"
    );
    assert_eq!(stoke.get("compiles").and_then(Json::as_u64), Some(1));
    assert_eq!(
        sv.get("compiles")
            .and_then(|c| c.get("ok"))
            .and_then(Json::as_u64),
        Some(1)
    );

    // Harvested bodies are never cached: the chain's answer carries no
    // optimality ladder, so an unhurried request must compile afresh.
    assert_eq!(server.cache().snapshot().entries, 0);
}

#[test]
fn class_budget_exhaustion_is_a_clean_match_error_not_a_panic() {
    // A class budget smaller than the goal terms themselves must come
    // back as a structured "match"-stage error — not a worker panic
    // masquerading as an internal error.
    let mut base = fast_options();
    base.saturation.max_classes = 2;
    let server = Server::new(ServerConfig {
        base,
        ..ServerConfig::default()
    })
    .unwrap();
    let resp = server
        .handle_line(&compile_line("tiny", SOURCE, ""))
        .unwrap();
    let v = json::parse(&resp).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
    let error = v.get("error").unwrap();
    assert_eq!(error.get("stage").and_then(Json::as_str), Some("match"));
    let message = error.get("message").and_then(Json::as_str).unwrap();
    assert!(message.contains("class budget"), "message: {message}");

    // The worker survived and panicked zero times.
    let stats = server.handle_line(r#"{"type":"stats","id":1}"#).unwrap();
    let v = json::parse(&stats).unwrap();
    assert_eq!(v.get("worker_panics").and_then(Json::as_u64), Some(0));
    assert_eq!(
        v.get("compiles")
            .and_then(|c| c.get("error"))
            .and_then(Json::as_u64),
        Some(1)
    );
}

#[test]
fn disk_tier_survives_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("denali-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        base: fast_options(),
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let line = compile_line("x", SOURCE2, "");
    let cold = {
        let server = Server::new(config.clone()).unwrap();
        server.handle_line(&line).unwrap()
    };
    // "Restart": a fresh server over the same cache directory.
    let server = Server::new(config).unwrap();
    let warm = server.handle_line(&line).unwrap();
    assert_eq!(cold, warm, "disk tier must replay across restarts");
    let snap = server.cache().snapshot();
    assert_eq!((snap.hits, snap.disk_hits), (1, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_sheds_with_a_retryable_error() {
    let server = Arc::new(test_server());
    // One worker, one queue slot — and both are occupied by jobs that
    // block until we release the gate, so the compile below must shed.
    let pool = Pool::new(1, 1);
    let gate = Arc::new(Mutex::new(()));
    let hold = gate.lock().unwrap();
    let g = Arc::clone(&gate);
    pool.try_submit(move || drop(g.lock().unwrap())).unwrap();
    // Wait until the worker has dequeued the blocker before filling
    // the single queue slot.
    while pool.depth() > 0 {
        std::thread::yield_now();
    }
    let g = Arc::clone(&gate);
    pool.try_submit(move || drop(g.lock().unwrap())).unwrap();

    let out = Arc::new(Mutex::new(Vec::<u8>::new()));
    let line = compile_line("shed", SOURCE, "");
    serve_lines(&server, &pool, line.as_bytes(), &out).unwrap();
    drop(hold);
    drop(pool);

    let written = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    let v = json::parse(written.trim()).unwrap();
    assert_eq!(v.get("id").and_then(Json::as_str), Some("shed"));
    assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
    let error = v.get("error").unwrap();
    assert_eq!(error.get("stage").and_then(Json::as_str), Some("overload"));
    assert_eq!(error.get("retryable").and_then(Json::as_bool), Some(true));
}

#[test]
fn ping_stats_and_eof_shutdown_over_a_transport() {
    let server = Arc::new(test_server());
    let pool = Pool::new(1, 8);
    let out = Arc::new(Mutex::new(Vec::<u8>::new()));
    let input = format!(
        "{}\n\n{}\n{}\n",
        r#"{"type":"ping","id":1}"#,
        compile_line("c", SOURCE, ""),
        r#"{"type":"stats","id":2}"#
    );
    // serve_lines returns at EOF; dropping the pool drains the compile.
    serve_lines(&server, &pool, input.as_bytes(), &out).unwrap();
    drop(pool);

    let written = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = written.lines().collect();
    assert_eq!(lines.len(), 3, "blank line elicits no response:\n{written}");
    // The ping is answered on the reader thread before the compile is
    // even dispatched, so it is deterministically first. The stats
    // response (also reader-thread) and the pooled compile response may
    // interleave — the protocol says correlate by id, so the test does.
    let pong = json::parse(lines[0]).unwrap();
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
    assert_eq!(pong.get("id").and_then(Json::as_u64), Some(1));
    let rest: Vec<Json> = lines[1..].iter().map(|l| json::parse(l).unwrap()).collect();
    let stats = rest
        .iter()
        .find(|v| v.get("id").and_then(Json::as_u64) == Some(2))
        .expect("stats response");
    // All three requests were counted on the reader thread before the
    // stats body was rendered (the stats line came last).
    assert_eq!(stats.get("requests").and_then(Json::as_u64), Some(3));
    assert!(stats.get("uptime_ms").and_then(Json::as_u64).is_some());
    let compile = rest
        .iter()
        .find(|v| v.get("id").and_then(Json::as_str) == Some("c"))
        .expect("compile response");
    assert_eq!(compile.get("status").and_then(Json::as_str), Some("ok"));
}
