//! Cross-checks between the server's three observability surfaces:
//! the authoritative [`Stats`] counters, the per-stage/per-outcome
//! latency histograms, and the flight recorder. They are recorded at
//! different points by different code — these tests pin the invariants
//! that keep them mutually consistent.

use denali_axioms::SaturationLimits;
use denali_core::Options;
use denali_serve::{Server, ServerConfig};
use denali_trace::json::{self, Json};
use denali_trace::{jsonl, report};

const SOURCE: &str = r"(\procdecl f ((reg6 long)) long (:= (\res (+ (* reg6 4) 1))))";

fn fast_options() -> Options {
    Options {
        max_cycles: 8,
        saturation: SaturationLimits {
            max_iterations: 2,
            max_nodes: 400,
            max_instances_per_round: 100,
            max_structural_per_round: 20,
            max_structural_growth: 100,
            ..SaturationLimits::default()
        },
        ..Options::default()
    }
}

fn compile_line(id: &str, source: &str, extra: &str) -> String {
    let mut src = String::new();
    json::write_str(&mut src, source);
    format!(r#"{{"type":"compile","id":"{id}","source":{src}{extra}}}"#)
}

fn count(latency: &Json, section: &str, name: &str) -> u64 {
    latency
        .get(section)
        .and_then(|s| s.get(name))
        .and_then(|e| e.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {section}.{name}.count"))
}

#[test]
fn stage_histograms_sum_consistently_with_the_stats_counters() {
    let server = Server::new(ServerConfig {
        base: fast_options(),
        ..ServerConfig::default()
    })
    .unwrap();

    // One of each terminal outcome. The expired deadline goes first:
    // deadlines are execution knobs outside the fingerprint, so once
    // the cache is warm the same source would be a hit instead.
    server
        .handle_line(&compile_line("c", SOURCE, r#","deadline_ms":0"#))
        .unwrap();
    server.handle_line(&compile_line("a", SOURCE, "")).unwrap();
    server.handle_line(&compile_line("b", SOURCE, "")).unwrap();
    server.handle_line(&compile_line("d", "((((", "")).unwrap();

    let stats = server.handle_line(r#"{"type":"stats","id":1}"#).unwrap();
    let v = json::parse(&stats).unwrap();
    assert_eq!(
        v.get("schema").and_then(Json::as_str),
        Some("denali-serve-stats-v3")
    );
    let latency = v.get("latency").expect("v3 stats carry latency");

    // Every compile response got exactly one total-latency observation,
    // and the outcome histograms partition it (coalesced is recorded in
    // addition to a terminal outcome, never instead of one).
    let total = count(latency, "stages", "total");
    let by_outcome = count(latency, "outcomes", "ok")
        + count(latency, "outcomes", "hit")
        + count(latency, "outcomes", "degraded")
        + count(latency, "outcomes", "error");
    assert_eq!(total, by_outcome, "outcomes partition total:\n{stats}");
    assert_eq!(total, 4, "four compile responses:\n{stats}");
    assert_eq!(count(latency, "outcomes", "ok"), 1);
    assert_eq!(count(latency, "outcomes", "hit"), 1);
    assert_eq!(count(latency, "outcomes", "degraded"), 1);
    assert_eq!(count(latency, "outcomes", "error"), 1);
    assert_eq!(count(latency, "outcomes", "coalesced"), 0);

    // The execute histogram counts exactly the pipeline executions the
    // stats counter claims (hits never execute).
    assert_eq!(
        count(latency, "stages", "execute"),
        v.get("executions").and_then(Json::as_u64).unwrap(),
        "execute histogram vs executions counter:\n{stats}"
    );

    // The cache-lookup histogram counts exactly hits + misses.
    let cache = server.cache().snapshot();
    assert_eq!(count(latency, "stages", "cache"), cache.hits + cache.misses);

    // Direct histogram reads agree with the JSON (same snapshots).
    let metrics = server.metrics();
    assert_eq!(metrics.stage_total.snapshot().count(), total);
    // Quantiles are monotone at every stage. Only the pipeline-running
    // stages are guaranteed a >=1us duration — a cache lookup can
    // finish inside the sub-microsecond bucket on a fast machine.
    for stage in ["cache", "execute", "total"] {
        let e = latency.get("stages").and_then(|s| s.get(stage)).unwrap();
        let q = |k: &str| e.get(k).and_then(Json::as_u64).unwrap();
        assert!(q("p50_us") <= q("p90_us"), "{stage}");
        assert!(q("p90_us") <= q("p99_us"), "{stage}");
    }
    for stage in ["execute", "total"] {
        let e = latency.get("stages").and_then(|s| s.get(stage)).unwrap();
        let p99 = e.get("p99_us").and_then(Json::as_u64).unwrap();
        assert!(p99 >= 1, "{stage} saw a real duration");
        assert!(
            e.get("max_us").and_then(Json::as_u64).unwrap() >= 1,
            "{stage}"
        );
    }

    // The exposition over the same registry passes the validator.
    denali_metrics::validate_exposition(&server.metrics_text()).unwrap();
}

#[test]
fn flight_recorder_rings_samples_and_spools_without_trace_enabled() {
    let dir = std::env::temp_dir().join(format!("denali-spool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::new(ServerConfig {
        base: fast_options(), // note: base.trace is OFF
        flight_capacity: 8,
        slow_ms: Some(0), // every request is "slow"
        spool_dir: Some(dir.clone()),
        trace_sample: 1, // and every request is sampled
        ..ServerConfig::default()
    })
    .unwrap();

    server
        .handle_line(&compile_line("slow", SOURCE, ""))
        .unwrap();

    // The ring saw the request, with its sampled trace inline.
    let flight = server.handle_line(r#"{"type":"flight","id":9}"#).unwrap();
    let v = json::parse(&flight).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    let entries = v.get("flight").and_then(Json::as_arr).unwrap();
    assert_eq!(entries.len(), 1);
    let entry = &entries[0];
    assert_eq!(entry.get("id").and_then(Json::as_str), Some("slow"));
    assert_eq!(entry.get("outcome").and_then(Json::as_str), Some("ok"));
    assert!(entry.get("total_us").and_then(Json::as_u64).unwrap() >= 1);
    let trace = entry.get("trace").and_then(Json::as_str).unwrap();

    // The spooled file exists and both it and the inline trace parse
    // back into a span tree whose report names the request — the whole
    // point: a full trace of a slow request with --trace off.
    assert_eq!(server.flight().spooled(), 1);
    let spooled = std::fs::read_to_string(dir.join("slow-1.jsonl")).unwrap();
    assert_eq!(spooled, trace, "ring and spool carry the same bytes");
    let records = jsonl::parse_records(&spooled).unwrap();
    assert!(records.len() > 1, "a real span tree, not just the seal");
    let rendered = report::render(&records);
    assert!(
        rendered.contains("serve requests: 1"),
        "trace-report summarizes it:\n{rendered}"
    );
    assert!(rendered.contains("ok"), "outcome visible:\n{rendered}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flight_ring_survives_requests_that_are_not_sampled() {
    let server = Server::new(ServerConfig {
        base: fast_options(),
        trace_sample: 2, // first sampled, second not
        ..ServerConfig::default()
    })
    .unwrap();
    server
        .handle_line(&compile_line("one", SOURCE, ""))
        .unwrap();
    server
        .handle_line(&compile_line("two", SOURCE, ""))
        .unwrap();
    let entries = server.flight().entries();
    assert_eq!(entries.len(), 2);
    assert!(entries[0].trace.is_some(), "request 1 sampled");
    assert!(entries[1].trace.is_none(), "request 2 not sampled");
    // Sampling never perturbs results: the unsampled warm hit replays
    // the sampled cold miss byte-for-byte (asserted via outcome here;
    // byte identity is pinned in tests/server.rs).
    assert_eq!(entries[0].outcome, "ok");
    assert_eq!(entries[1].outcome, "hit");
}
