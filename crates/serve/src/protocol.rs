//! Protocol schema v1: request parsing and response rendering.
//!
//! Framing is JSONL: every request is one JSON object on one line;
//! every request produces exactly one JSON object response on one line,
//! correlated by the echoed `id`. The full schema is documented in
//! `docs/SERVER.md`; the invariants that matter here:
//!
//! * Unknown top-level or option keys are **errors**, not ignored —
//!   a typo like `"max_cycle"` silently compiling with defaults would
//!   be a correctness trap for clients.
//! * `id` must be a string or a non-negative integer so the server can
//!   echo it byte-identically (floats do not round-trip textually).
//! * The *result body* (everything after the echoed `id`) contains
//!   only deterministic fields — no timings, no cached-or-not marker —
//!   which is what makes a cache hit byte-identical to the fresh
//!   compile that populated it. Freshness indicators live in `stats`.

use std::fmt;

use denali_core::{EngineChoice, SolverChoice};
use denali_trace::json::{self, Json};

/// The protocol version this server speaks.
pub const VERSION: u64 = 1;

/// A request's correlation id, echoed verbatim in the response.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestId {
    /// No id supplied (echoed as `null`).
    Null,
    /// An integer id.
    Num(u64),
    /// A string id.
    Str(String),
}

impl RequestId {
    /// Renders the id exactly as it will appear in the response.
    pub fn render(&self) -> String {
        match self {
            RequestId::Null => "null".to_owned(),
            RequestId::Num(n) => n.to_string(),
            RequestId::Str(s) => {
                let mut out = String::new();
                json::write_str(&mut out, s);
                out
            }
        }
    }
}

/// A malformed request. Always mapped to a `"stage": "protocol"`
/// error response; never fatal to the server.
#[derive(Clone, Debug)]
pub struct ProtocolError {
    /// Explanation.
    pub message: String,
}

impl ProtocolError {
    fn new(message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// Per-request overrides of the server's base [`denali_core::Options`].
///
/// Only the knobs a client could reasonably vary per request are
/// exposed. `threads`, `trace`, and `verbose` are accepted for client
/// convenience but are *execution* knobs: the pipeline's determinism
/// contract makes them result-invariant, so they are excluded from the
/// compilation fingerprint (pinned by a test) — requests differing only
/// there share a cache entry.
#[derive(Clone, Debug, Default)]
pub struct OptionOverrides {
    /// Target machine, by name (`ev6`, `ia64like`, `ev6-unclustered`,
    /// `single-issue`).
    pub machine: Option<String>,
    /// SAT engine (`cdcl` or `dpll`).
    pub solver: Option<SolverChoice>,
    /// Optimizer engine (`sat`, `stochastic`, or `auto`). Output-
    /// affecting: part of the compilation fingerprint, so requests
    /// with different engines never share a cache entry.
    pub engine: Option<EngineChoice>,
    /// Cycle-budget ceiling.
    pub max_cycles: Option<u32>,
    /// Load-latency override.
    pub load_latency: Option<u32>,
    /// Latency for `\derefm` loads.
    pub miss_latency: Option<u32>,
    /// Mechanized software pipelining of loop loads.
    pub pipeline_loads: Option<bool>,
    /// Worker threads (execution knob; not fingerprinted).
    pub threads: Option<usize>,
    /// Portfolio width: race this many diversified CDCL configurations
    /// per probe (execution knob; not fingerprinted — output is
    /// byte-identical at any width).
    pub portfolio: Option<usize>,
    /// Structured tracing (observability knob; not fingerprinted).
    pub trace: Option<bool>,
    /// Verbose server logging (observability knob; not fingerprinted).
    pub verbose: Option<bool>,
}

impl OptionOverrides {
    /// Applies the overrides to `options`.
    ///
    /// # Errors
    ///
    /// Fails on an unknown machine name.
    pub fn apply(&self, options: &mut denali_core::Options) -> Result<(), ProtocolError> {
        if let Some(name) = &self.machine {
            options.machine = machine_by_name(name)?;
        }
        if let Some(solver) = self.solver {
            options.solver = solver;
        }
        if let Some(engine) = self.engine {
            options.engine = engine;
        }
        if let Some(k) = self.max_cycles {
            options.max_cycles = k;
        }
        if let Some(l) = self.load_latency {
            options.load_latency = Some(l);
        }
        if let Some(l) = self.miss_latency {
            options.miss_latency = l;
        }
        if let Some(p) = self.pipeline_loads {
            options.pipeline_loads = p;
        }
        if let Some(t) = self.threads {
            options.threads = t;
        }
        if let Some(p) = self.portfolio {
            options.portfolio = p;
        }
        if let Some(t) = self.trace {
            options.trace = t;
        }
        Ok(())
    }
}

/// Resolves a machine name to its description.
///
/// # Errors
///
/// Fails on unknown names, listing the known ones.
pub fn machine_by_name(name: &str) -> Result<denali_arch::Machine, ProtocolError> {
    match name {
        "ev6" => Ok(denali_arch::Machine::ev6()),
        "ia64like" => Ok(denali_arch::Machine::ia64like()),
        "ev6-unclustered" => Ok(denali_arch::Machine::ev6_unclustered()),
        "single-issue" => Ok(denali_arch::Machine::single_issue()),
        other => Err(ProtocolError::new(format!(
            "unknown machine {other:?} (known: ev6, ia64like, ev6-unclustered, single-issue)"
        ))),
    }
}

/// A `compile` request.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    /// Correlation id.
    pub id: RequestId,
    /// Denali source text.
    pub source: String,
    /// Procedure to compile (default: the first in `source`).
    pub proc: Option<String>,
    /// Soft deadline measured from admission; on expiry the response
    /// degrades to the baseline program instead of erroring.
    pub deadline_ms: Option<u64>,
    /// Per-request option overrides.
    pub options: OptionOverrides,
}

/// One parsed request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Compile source text.
    Compile(Box<CompileRequest>),
    /// Report server statistics.
    Stats(RequestId),
    /// Liveness check.
    Ping(RequestId),
    /// Read the flight recorder's ring of recent requests.
    Flight(RequestId),
}

impl Request {
    /// The request's correlation id.
    pub fn id(&self) -> &RequestId {
        match self {
            Request::Compile(c) => &c.id,
            Request::Stats(id) | Request::Ping(id) | Request::Flight(id) => id,
        }
    }
}

fn parse_id(value: Option<&Json>) -> Result<RequestId, ProtocolError> {
    match value {
        None | Some(Json::Null) => Ok(RequestId::Null),
        Some(Json::Str(s)) => Ok(RequestId::Str(s.clone())),
        Some(n @ Json::Num(_)) => n
            .as_u64()
            .map(RequestId::Num)
            .ok_or_else(|| ProtocolError::new("id must be a string or a non-negative integer")),
        Some(_) => Err(ProtocolError::new(
            "id must be a string or a non-negative integer",
        )),
    }
}

fn require_keys(obj: &Json, allowed: &[&str], what: &str) -> Result<(), ProtocolError> {
    let Json::Obj(pairs) = obj else {
        return Err(ProtocolError::new(format!("{what} must be an object")));
    };
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(ProtocolError::new(format!(
                "unknown {what} key {key:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn get_u64(obj: &Json, key: &str) -> Result<Option<u64>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtocolError::new(format!("{key} must be a non-negative integer"))),
    }
}

fn get_bool(obj: &Json, key: &str) -> Result<Option<bool>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| ProtocolError::new(format!("{key} must be a boolean"))),
    }
}

fn get_str(obj: &Json, key: &str) -> Result<Option<String>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| ProtocolError::new(format!("{key} must be a string"))),
    }
}

fn parse_overrides(obj: &Json) -> Result<OptionOverrides, ProtocolError> {
    require_keys(
        obj,
        &[
            "machine",
            "solver",
            "engine",
            "max_cycles",
            "load_latency",
            "miss_latency",
            "pipeline_loads",
            "threads",
            "portfolio",
            "trace",
            "verbose",
        ],
        "options",
    )?;
    let solver = match get_str(obj, "solver")?.as_deref() {
        None => None,
        Some("cdcl") => Some(SolverChoice::Cdcl),
        Some("dpll") => Some(SolverChoice::Dpll),
        Some(other) => {
            return Err(ProtocolError::new(format!(
                "unknown solver {other:?} (known: cdcl, dpll)"
            )))
        }
    };
    let engine = match get_str(obj, "engine")?.as_deref() {
        None => None,
        Some(name) => Some(EngineChoice::parse(name).ok_or_else(|| {
            ProtocolError::new(format!(
                "unknown engine {name:?} (known: sat, stochastic, auto)"
            ))
        })?),
    };
    // Validate the machine name at parse time so a typo is rejected
    // before the request is queued.
    if let Some(name) = get_str(obj, "machine")? {
        machine_by_name(&name)?;
    }
    Ok(OptionOverrides {
        machine: get_str(obj, "machine")?,
        solver,
        engine,
        max_cycles: get_u64(obj, "max_cycles")?
            .map(|v| u32::try_from(v).map_err(|_| ProtocolError::new("max_cycles out of range")))
            .transpose()?,
        load_latency: get_u64(obj, "load_latency")?
            .map(|v| u32::try_from(v).map_err(|_| ProtocolError::new("load_latency out of range")))
            .transpose()?,
        miss_latency: get_u64(obj, "miss_latency")?
            .map(|v| u32::try_from(v).map_err(|_| ProtocolError::new("miss_latency out of range")))
            .transpose()?,
        pipeline_loads: get_bool(obj, "pipeline_loads")?,
        threads: get_u64(obj, "threads")?.map(|v| v as usize),
        portfolio: get_u64(obj, "portfolio")?.map(|v| v as usize),
        trace: get_bool(obj, "trace")?,
        verbose: get_bool(obj, "verbose")?,
    })
}

/// Parses one request line.
///
/// # Errors
///
/// Fails on malformed JSON, schema violations, or unknown keys; the
/// caller maps the error to a `protocol`-stage response.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let value =
        json::parse(line).map_err(|e| ProtocolError::new(format!("malformed JSON: {e}")))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(ProtocolError::new("request must be a JSON object"));
    }
    if let Some(v) = value.get("v") {
        if v.as_u64() != Some(VERSION) {
            return Err(ProtocolError::new(format!(
                "unsupported protocol version (this server speaks v{VERSION})"
            )));
        }
    }
    let id = parse_id(value.get("id"))?;
    let kind = value
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new("missing request type"))?;
    match kind {
        "compile" => {
            require_keys(
                &value,
                &[
                    "v",
                    "type",
                    "id",
                    "source",
                    "proc",
                    "deadline_ms",
                    "options",
                ],
                "request",
            )?;
            let source = get_str(&value, "source")?
                .ok_or_else(|| ProtocolError::new("compile request needs a source string"))?;
            let options = match value.get("options") {
                None | Some(Json::Null) => OptionOverrides::default(),
                Some(obj) => parse_overrides(obj)?,
            };
            Ok(Request::Compile(Box::new(CompileRequest {
                id,
                source,
                proc: get_str(&value, "proc")?,
                deadline_ms: get_u64(&value, "deadline_ms")?,
                options,
            })))
        }
        "stats" => {
            require_keys(&value, &["v", "type", "id"], "request")?;
            Ok(Request::Stats(id))
        }
        "ping" => {
            require_keys(&value, &["v", "type", "id"], "request")?;
            Ok(Request::Ping(id))
        }
        "flight" => {
            require_keys(&value, &["v", "type", "id"], "request")?;
            Ok(Request::Flight(id))
        }
        other => Err(ProtocolError::new(format!(
            "unknown request type {other:?} (known: compile, stats, ping, flight)"
        ))),
    }
}

/// Summary of one compiled GMA, as rendered into a result body.
#[derive(Clone, Debug)]
pub struct GmaSummary {
    /// GMA name (`proc_loop0`, ...).
    pub name: String,
    /// Achieved cycle count.
    pub cycles: u32,
    /// Instruction count.
    pub instructions: usize,
    /// Whether `cycles - 1` was refuted (the optimality certificate;
    /// always `false` on the degraded path).
    pub refuted_below: bool,
    /// Assembly listing.
    pub listing: String,
}

/// Renders the *cacheable* result body: only deterministic fields, so a
/// cache hit is byte-identical to the fresh compile that stored it.
/// `engine` names the optimizer that produced the programs (`sat` or
/// `stochastic` — never `auto`, which always resolves to one of the
/// two).
pub fn render_result_body(
    fingerprint: &str,
    degraded: bool,
    engine: &str,
    gmas: &[GmaSummary],
) -> String {
    let mut out = String::new();
    out.push_str("\"status\":\"ok\",\"degraded\":");
    out.push_str(if degraded { "true" } else { "false" });
    out.push_str(",\"engine\":");
    json::write_str(&mut out, engine);
    out.push_str(",\"fingerprint\":");
    json::write_str(&mut out, fingerprint);
    out.push_str(",\"gmas\":[");
    for (i, gma) in gmas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_str(&mut out, &gma.name);
        out.push_str(&format!(
            ",\"cycles\":{},\"instructions\":{},\"refuted_below\":{}",
            gma.cycles, gma.instructions, gma.refuted_below
        ));
        out.push_str(",\"listing\":");
        json::write_str(&mut out, &gma.listing);
        out.push('}');
    }
    out.push(']');
    out
}

/// Checks that a cached *result body* (the brace-less key/value run
/// stored by the cache tiers) still parses as a protocol-v1 success
/// response. The disk tier is plain files on disk — corruption,
/// truncation, or hand-editing must not be promoted to memory and
/// replayed as protocol bytes. Degraded bodies are rejected too: they
/// are never cached, so finding one on disk means the entry is not
/// trustworthy.
pub fn is_valid_result_body(body: &str) -> bool {
    let Ok(value) = json::parse(&format!("{{{body}}}")) else {
        return false;
    };
    value.get("status").and_then(Json::as_str) == Some("ok")
        && value.get("degraded").and_then(Json::as_bool) == Some(false)
        && value.get("engine").and_then(Json::as_str).is_some()
        && value.get("fingerprint").and_then(Json::as_str).is_some()
        && value.get("gmas").and_then(Json::as_arr).is_some()
}

/// Renders an error body. `retryable` tells the client whether backing
/// off and resending the identical request can succeed (true only for
/// transient conditions like a full admission queue).
pub fn render_error_body(stage: &str, message: &str, retryable: bool) -> String {
    let mut out = String::new();
    out.push_str("\"status\":\"error\",\"error\":{\"stage\":");
    json::write_str(&mut out, stage);
    out.push_str(",\"message\":");
    json::write_str(&mut out, message);
    out.push_str(&format!(",\"retryable\":{retryable}}}"));
    out
}

/// Wraps a body into a full response line (no trailing newline).
pub fn render_response(id: &RequestId, body: &str) -> String {
    format!("{{\"v\":{VERSION},\"id\":{},{body}}}", id.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_compile_request() {
        let req = parse_request(r#"{"type":"compile","id":1,"source":"(x)"}"#).unwrap();
        let Request::Compile(c) = req else {
            panic!("expected compile");
        };
        assert_eq!(c.id, RequestId::Num(1));
        assert_eq!(c.source, "(x)");
        assert!(c.proc.is_none() && c.deadline_ms.is_none());
    }

    #[test]
    fn rejects_unknown_keys_everywhere() {
        // Top level.
        let err = parse_request(r#"{"type":"compile","source":"x","sauce":"y"}"#).unwrap_err();
        assert!(err.message.contains("sauce"), "{err}");
        // Options.
        let err = parse_request(r#"{"type":"compile","source":"x","options":{"max_cycle":3}}"#)
            .unwrap_err();
        assert!(err.message.contains("max_cycle"), "{err}");
    }

    #[test]
    fn rejects_bad_json_and_bad_types() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request(r#"{"type":"dance"}"#).is_err());
        assert!(parse_request(r#"{"type":"compile","source":7}"#).is_err());
        assert!(parse_request(r#"{"type":"compile","source":"x","id":1.5}"#).is_err());
        assert!(parse_request(r#"{"v":2,"type":"ping"}"#).is_err());
        assert!(
            parse_request(r#"{"type":"compile","source":"x","options":{"machine":"ev7"}}"#)
                .is_err()
        );
        assert!(
            parse_request(r#"{"type":"compile","source":"x","options":{"solver":"z3"}}"#).is_err()
        );
        assert!(
            parse_request(r#"{"type":"compile","source":"x","options":{"engine":"quantum"}}"#)
                .is_err()
        );
    }

    #[test]
    fn parses_the_engine_option() {
        for (name, want) in [
            ("sat", EngineChoice::Sat),
            ("stochastic", EngineChoice::Stochastic),
            ("auto", EngineChoice::Auto),
        ] {
            let line =
                format!(r#"{{"type":"compile","source":"x","options":{{"engine":"{name}"}}}}"#);
            let Request::Compile(c) = parse_request(&line).unwrap() else {
                panic!("expected compile");
            };
            assert_eq!(c.options.engine, Some(want));
        }
    }

    #[test]
    fn result_body_validation_rejects_everything_but_ok_results() {
        let good = render_result_body("abc123", false, "sat", &[]);
        assert!(is_valid_result_body(&good));
        // Degraded bodies are never cached, so they are not valid
        // cache contents even though they are valid responses.
        assert!(!is_valid_result_body(&render_result_body(
            "abc123",
            true,
            "sat",
            &[]
        )));
        assert!(!is_valid_result_body(&render_error_body(
            "compile", "boom", false
        )));
        assert!(!is_valid_result_body("")); // empty file
        assert!(!is_valid_result_body(&good[..good.len() / 2])); // truncated
        assert!(!is_valid_result_body("\"status\":\"ok\"")); // missing fields
        assert!(!is_valid_result_body("not json at all"));
    }

    #[test]
    fn ids_render_verbatim() {
        assert_eq!(RequestId::Null.render(), "null");
        assert_eq!(RequestId::Num(42).render(), "42");
        assert_eq!(RequestId::Str("a\"b".into()).render(), r#""a\"b""#);
    }

    #[test]
    fn response_rendering_is_valid_json() {
        let body = render_result_body(
            "abc123",
            false,
            "sat",
            &[GmaSummary {
                name: "f_final".into(),
                cycles: 1,
                instructions: 2,
                refuted_below: true,
                listing: "s4addq a, 1, res # 0, U0\n".into(),
            }],
        );
        let line = render_response(&RequestId::Str("r1".into()), &body);
        let parsed = denali_trace::json::parse(&line).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(parsed.get("degraded").and_then(Json::as_bool), Some(false));
        assert_eq!(parsed.get("engine").and_then(Json::as_str), Some("sat"));
        assert_eq!(
            parsed.get("gmas").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );

        let line = render_response(
            &RequestId::Null,
            &render_error_body("overload", "queue full", true),
        );
        let parsed = denali_trace::json::parse(&line).unwrap();
        let error = parsed.get("error").unwrap();
        assert_eq!(error.get("retryable").and_then(Json::as_bool), Some(true));
    }
}
