//! Single-flight request coalescing: in-flight deduplication keyed on
//! the compilation fingerprint.
//!
//! The content-addressed cache only dedups *completed* work: N
//! concurrent identical requests all miss, each burns a worker, and the
//! queue sheds unrelated traffic — the classic cache stampede, and the
//! worst possible failure mode for a server whose unit of work is a
//! ladder of SAT probes. This module closes the window: the first
//! request for a fingerprint becomes the **leader** and occupies a
//! worker; concurrent duplicates become **followers** that subscribe to
//! the leader's result without consuming a worker or a queue slot.
//!
//! The pinned semantics (tested here and in `tests/stampede.rs`):
//!
//! * A leader delivers its outcome — success, degradation, or error —
//!   to every follower via [`LeaderGuard::complete`]; followers replay
//!   the exact body bytes. Whether the outcome is *cached* is the
//!   server's decision, not this module's (degraded and error outcomes
//!   never are).
//! * A follower whose own deadline expires before the leader finishes
//!   gets [`Wait::Expired`] and answers with its own degraded program
//!   rather than waiting past its deadline.
//! * A leader that vanishes without an outcome (a panicking pipeline
//!   unwinds the [`LeaderGuard`]) orphans the flight; one waiting
//!   follower is **promoted** ([`Wait::Promoted`]) and re-executes
//!   rather than wasting the queued demand, and a later request for the
//!   same key can claim an orphan with no waiters.
//!
//! Completion removes the key from the in-flight map *before* waking
//! followers, and the server populates the cache *before* completing —
//! so at every instant a duplicate request either hits the cache, joins
//! the flight, or becomes a fresh leader that immediately hits the
//! cache. "Exactly one pipeline execution per stampede" is therefore an
//! invariant, not a race that usually goes well.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A leader's outcome, as delivered to followers: the rendered response
/// body (everything after the echoed id — follower responses differ
/// only in the id they echo) plus the outcome tag for stats/logging.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Outcome tag: `ok`, `degraded`, `error`, or `shed`.
    pub outcome: &'static str,
    /// The rendered response body followers replay byte-for-byte.
    pub body: String,
}

enum FlightState {
    /// A leader owns the flight and will complete or orphan it.
    Running,
    /// The leader delivered; followers replay the body.
    Done(Delivery),
    /// The leader vanished without an outcome (panic/unwind); the next
    /// waiter or joiner claims leadership.
    Orphaned,
}

struct Flight {
    state: Mutex<FlightState>,
    wake: Condvar,
}

struct Inner {
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
    /// Followers currently blocked in [`FollowerHandle::wait`].
    waiting: AtomicU64,
}

/// A point-in-time snapshot of the coalescer's gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceSnapshot {
    /// Fingerprints with a flight currently in the map.
    pub inflight: u64,
    /// Followers currently waiting on a leader.
    pub waiting: u64,
}

/// The in-flight request table. One per server, shared by every
/// transport and connection — coalescing is a server-wide property,
/// like the cache, not a per-connection one.
pub struct Coalescer {
    inner: Arc<Inner>,
}

impl Default for Coalescer {
    fn default() -> Coalescer {
        Coalescer::new()
    }
}

/// The result of [`Coalescer::join`].
pub enum Join {
    /// First request for this key (or claimant of an orphaned flight):
    /// execute the work and [`LeaderGuard::complete`] it.
    Leader(LeaderGuard),
    /// A duplicate of an in-flight request: [`FollowerHandle::wait`]
    /// for the leader's outcome.
    Follower(FollowerHandle),
}

impl Coalescer {
    /// Creates an empty coalescer.
    pub fn new() -> Coalescer {
        Coalescer {
            inner: Arc::new(Inner {
                inflight: Mutex::new(HashMap::new()),
                waiting: AtomicU64::new(0),
            }),
        }
    }

    /// Joins the flight for `key`, creating it if absent. An orphaned
    /// flight (leader died, no follower promoted yet) is claimed — the
    /// caller becomes its new leader.
    pub fn join(&self, key: &str) -> Join {
        let mut map = self.inner.inflight.lock().unwrap();
        if let Some(flight) = map.get(key) {
            let flight = Arc::clone(flight);
            drop(map);
            {
                let mut state = flight.state.lock().unwrap();
                if matches!(*state, FlightState::Orphaned) {
                    *state = FlightState::Running;
                    drop(state);
                    return Join::Leader(self.guard(key, flight));
                }
            }
            self.inner.waiting.fetch_add(1, Ordering::Relaxed);
            Join::Follower(FollowerHandle {
                inner: Arc::clone(&self.inner),
                key: key.to_owned(),
                flight,
            })
        } else {
            let flight = Arc::new(Flight {
                state: Mutex::new(FlightState::Running),
                wake: Condvar::new(),
            });
            map.insert(key.to_owned(), Arc::clone(&flight));
            drop(map);
            Join::Leader(self.guard(key, flight))
        }
    }

    fn guard(&self, key: &str, flight: Arc<Flight>) -> LeaderGuard {
        LeaderGuard {
            inner: Arc::clone(&self.inner),
            key: key.to_owned(),
            flight,
            completed: false,
        }
    }

    /// Snapshots the gauges for the `stats` request.
    pub fn snapshot(&self) -> CoalesceSnapshot {
        CoalesceSnapshot {
            inflight: self.inner.inflight.lock().unwrap().len() as u64,
            waiting: self.inner.waiting.load(Ordering::Relaxed),
        }
    }
}

/// Proof of flight leadership. [`LeaderGuard::complete`] delivers an
/// outcome to every follower; dropping the guard without completing
/// (the panic/unwind path) orphans the flight so a follower can be
/// promoted instead of hanging forever.
pub struct LeaderGuard {
    inner: Arc<Inner>,
    key: String,
    flight: Arc<Flight>,
    completed: bool,
}

impl LeaderGuard {
    /// The flight's key (the compilation fingerprint).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Delivers `delivery` to every follower and retires the flight.
    /// The key is removed from the in-flight map *before* the state
    /// flips to done, so a new request can never join a completed
    /// flight — it either hits the (already-populated) cache or starts
    /// a fresh leader.
    pub fn complete(mut self, delivery: Delivery) {
        self.completed = true;
        self.remove_from_map();
        let mut state = self.flight.state.lock().unwrap();
        *state = FlightState::Done(delivery);
        self.flight.wake.notify_all();
    }

    fn remove_from_map(&self) {
        let mut map = self.inner.inflight.lock().unwrap();
        // Guard against removing a *successor* flight: only remove the
        // entry if it is still this guard's flight.
        if map
            .get(&self.key)
            .is_some_and(|f| Arc::ptr_eq(f, &self.flight))
        {
            map.remove(&self.key);
        }
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // The leader unwound without an outcome. Orphan the flight (the
        // key stays in the map so joiners can also claim it) and wake
        // the followers so one promotes itself.
        let mut state = self.flight.state.lock().unwrap();
        *state = FlightState::Orphaned;
        self.flight.wake.notify_all();
    }
}

/// The outcome of [`FollowerHandle::wait`].
pub enum Wait {
    /// The leader finished; replay the delivered body.
    Delivered(Delivery),
    /// The follower's own deadline passed first; answer with its own
    /// degraded program.
    Expired,
    /// The leader vanished; this follower is now the leader and must
    /// execute the work itself.
    Promoted(LeaderGuard),
}

/// A follower's subscription to a flight. Must be consumed by
/// [`FollowerHandle::wait`].
pub struct FollowerHandle {
    inner: Arc<Inner>,
    key: String,
    flight: Arc<Flight>,
}

impl FollowerHandle {
    /// Blocks until the leader delivers, the follower's `deadline`
    /// passes, or the leader vanishes and this follower is promoted.
    pub fn wait(self, deadline: Option<Instant>) -> Wait {
        let done = |inner: &Inner| inner.waiting.fetch_sub(1, Ordering::Relaxed);
        let mut state = self.flight.state.lock().unwrap();
        loop {
            match &*state {
                FlightState::Done(delivery) => {
                    let delivery = delivery.clone();
                    drop(state);
                    done(&self.inner);
                    return Wait::Delivered(delivery);
                }
                FlightState::Orphaned => {
                    *state = FlightState::Running;
                    drop(state);
                    done(&self.inner);
                    return Wait::Promoted(LeaderGuard {
                        inner: Arc::clone(&self.inner),
                        key: self.key.clone(),
                        flight: Arc::clone(&self.flight),
                        completed: false,
                    });
                }
                FlightState::Running => {}
            }
            state = match deadline {
                None => self.flight.wake.wait(state).unwrap(),
                Some(at) => {
                    let now = Instant::now();
                    if at <= now {
                        drop(state);
                        done(&self.inner);
                        return Wait::Expired;
                    }
                    self.flight.wake.wait_timeout(state, at - now).unwrap().0
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ok(body: &str) -> Delivery {
        Delivery {
            outcome: "ok",
            body: body.to_owned(),
        }
    }

    #[test]
    fn leader_then_followers_replay_the_delivery() {
        let c = Coalescer::new();
        let Join::Leader(leader) = c.join("aa") else {
            panic!("first join must lead");
        };
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let Join::Follower(f) = c.join("aa") else {
                    panic!("duplicate join must follow");
                };
                f
            })
            .collect();
        assert_eq!(c.snapshot().waiting, 4);
        let waits: Vec<_> = followers
            .into_iter()
            .map(|f| std::thread::spawn(move || f.wait(None)))
            .collect();
        leader.complete(ok("body"));
        for wait in waits {
            match wait.join().unwrap() {
                Wait::Delivered(d) => assert_eq!((d.outcome, d.body.as_str()), ("ok", "body")),
                _ => panic!("follower must be delivered"),
            }
        }
        let snap = c.snapshot();
        assert_eq!((snap.inflight, snap.waiting), (0, 0));
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let c = Coalescer::new();
        let Join::Leader(a) = c.join("aa") else {
            panic!();
        };
        let Join::Leader(b) = c.join("bb") else {
            panic!("distinct key must lead its own flight");
        };
        assert_eq!(c.snapshot().inflight, 2);
        a.complete(ok("a"));
        b.complete(ok("b"));
        assert_eq!(c.snapshot().inflight, 0);
    }

    #[test]
    fn follower_deadline_expires_independently_of_the_leader() {
        let c = Coalescer::new();
        let Join::Leader(leader) = c.join("aa") else {
            panic!();
        };
        let Join::Follower(f) = c.join("aa") else {
            panic!();
        };
        // The leader never completes within the follower's deadline.
        let wait = f.wait(Some(Instant::now() + Duration::from_millis(10)));
        assert!(matches!(wait, Wait::Expired));
        assert_eq!(c.snapshot().waiting, 0);
        // The flight is unaffected: a late follower still gets the body.
        let Join::Follower(late) = c.join("aa") else {
            panic!();
        };
        leader.complete(ok("body"));
        assert!(matches!(late.wait(None), Wait::Delivered(_)));
    }

    #[test]
    fn dropped_leader_promotes_exactly_one_follower() {
        let c = Coalescer::new();
        let Join::Leader(leader) = c.join("aa") else {
            panic!();
        };
        // Waiters report through a channel: which thread wins promotion
        // is the scheduler's pick, so outcomes must be collected in
        // completion order, not spawn order.
        let (tx, rx) = std::sync::mpsc::channel();
        let waits: Vec<_> = (0..3)
            .map(|_| {
                let Join::Follower(f) = c.join("aa") else {
                    panic!();
                };
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(f.wait(None)).unwrap())
            })
            .collect();
        // Give the followers time to block, then unwind the leader
        // without an outcome (the panic path).
        std::thread::sleep(Duration::from_millis(20));
        drop(leader);
        // Exactly one follower is promoted, and it unblocks first: the
        // other two can only be delivered once the promoted guard
        // completes, which happens below.
        let timeout = Duration::from_secs(10);
        let Wait::Promoted(guard) = rx.recv_timeout(timeout).unwrap() else {
            panic!("the first unblocked follower must be the promotion");
        };
        guard.complete(ok("recovered"));
        for _ in 0..2 {
            match rx.recv_timeout(timeout).unwrap() {
                Wait::Delivered(d) => assert_eq!(d.body, "recovered"),
                Wait::Promoted(_) => panic!("only one follower may be promoted"),
                Wait::Expired => panic!("no deadline set"),
            }
        }
        for wait in waits {
            wait.join().unwrap();
        }
        assert_eq!(c.snapshot().inflight, 0);
    }

    #[test]
    fn orphan_with_no_waiters_is_claimed_by_the_next_joiner() {
        let c = Coalescer::new();
        let Join::Leader(leader) = c.join("aa") else {
            panic!();
        };
        drop(leader); // orphaned, nobody waiting
        assert_eq!(c.snapshot().inflight, 1);
        let Join::Leader(claimed) = c.join("aa") else {
            panic!("joiner must claim the orphan, not wait on it");
        };
        claimed.complete(ok("body"));
        assert_eq!(c.snapshot().inflight, 0);
    }

    #[test]
    fn completion_races_are_first_writer_wins() {
        // A leader completing while a fresh join happens concurrently
        // must never hang the joiner: it either follows (and is
        // delivered) or leads a fresh flight.
        for _ in 0..50 {
            let c = Arc::new(Coalescer::new());
            let Join::Leader(leader) = c.join("aa") else {
                panic!();
            };
            let c2 = Arc::clone(&c);
            let joiner = std::thread::spawn(move || match c2.join("aa") {
                Join::Follower(f) => match f.wait(None) {
                    Wait::Delivered(d) => d.body,
                    _ => panic!("follower of a completing flight is delivered"),
                },
                Join::Leader(g) => {
                    g.complete(ok("fresh"));
                    "fresh".to_owned()
                }
            });
            leader.complete(ok("led"));
            let got = joiner.join().unwrap();
            assert!(got == "led" || got == "fresh", "{got}");
            assert_eq!(c.snapshot().inflight, 0);
        }
    }
}
