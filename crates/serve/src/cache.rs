//! Content-addressed result cache: an in-memory LRU with a byte budget
//! in front of an optional on-disk tier that survives restarts.
//!
//! Keys are the canonical compilation fingerprints produced by
//! [`denali_core::fingerprint`] — a hash over the normalized GMAs, the
//! axiom-set identity, and the output-affecting option subset. Values
//! are rendered *response bodies* (see [`crate::protocol`]): caching
//! the final bytes rather than a structured result is what makes the
//! hit-equals-miss guarantee trivially auditable — a warm hit replays
//! exactly the bytes the cold compile produced.
//!
//! The disk tier stores one file per key under `--cache-dir`, written
//! atomically (temp file + rename) so a crash mid-write can never leave
//! a torn entry for a later process to replay. Disk hits are promoted
//! into the memory tier.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A point-in-time snapshot of the cache's counters and gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups served from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Of the hits, how many were served by the disk tier.
    pub disk_hits: u64,
    /// Disk-tier entries that failed protocol validation and were
    /// deleted (corruption, truncation, hand-editing).
    pub disk_invalid: u64,
    /// Entries evicted from memory to respect the byte budget.
    pub evictions: u64,
    /// Entries currently resident in memory.
    pub entries: u64,
    /// Bytes currently resident in memory.
    pub bytes: u64,
}

/// In-memory state: entries plus recency order (front = coldest).
#[derive(Default)]
struct Lru {
    entries: HashMap<String, String>,
    order: VecDeque<String>,
    bytes: usize,
}

impl Lru {
    fn touch(&mut self, key: &str) {
        if let Some(at) = self.order.iter().position(|k| k == key) {
            self.order.remove(at);
            self.order.push_back(key.to_owned());
        }
    }
}

/// The two-tier result cache. Thread-safe: workers share one `Cache`
/// by reference.
pub struct Cache {
    lru: Mutex<Lru>,
    budget: usize,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_invalid: AtomicU64,
    evictions: AtomicU64,
}

impl Cache {
    /// Creates a cache with a memory budget of `budget` bytes and, if
    /// `dir` is given, a persistent disk tier rooted there (the
    /// directory is created if missing).
    ///
    /// # Errors
    ///
    /// Fails if the cache directory cannot be created.
    pub fn new(budget: usize, dir: Option<PathBuf>) -> std::io::Result<Cache> {
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(Cache {
            lru: Mutex::new(Lru::default()),
            budget,
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_invalid: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// Whether a disk tier is configured.
    pub fn has_disk_tier(&self) -> bool {
        self.dir.is_some()
    }

    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        // Keys are 32-char lowercase hex fingerprints; refuse anything
        // else so a key can never smuggle path components.
        let dir = self.dir.as_ref()?;
        if key.is_empty() || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(dir.join(format!("{key}.json")))
    }

    /// Looks up `key`, consulting memory first and then the disk tier.
    /// Disk hits are promoted into memory.
    pub fn get(&self, key: &str) -> Option<String> {
        {
            let mut lru = self.lru.lock().unwrap();
            if let Some(body) = lru.entries.get(key).cloned() {
                lru.touch(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(body);
            }
        }
        if let Some(path) = self.disk_path(key) {
            if let Ok(body) = std::fs::read_to_string(&path) {
                // The disk tier is plain files: corruption, truncation,
                // or hand-editing must not be promoted to memory and
                // replayed as protocol bytes. An invalid entry is
                // deleted and the lookup falls through to a miss, so
                // the next compile rewrites it.
                if crate::protocol::is_valid_result_body(&body) {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.insert_memory(key, &body);
                    return Some(body);
                }
                self.disk_invalid.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(&path);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores `body` under `key` in both tiers. Disk-tier write
    /// failures are swallowed: the cache is an accelerator, and a full
    /// disk must degrade throughput, not correctness.
    pub fn put(&self, key: &str, body: &str) {
        self.insert_memory(key, body);
        if let Some(path) = self.disk_path(key) {
            let _ = write_atomically(&path, body);
        }
    }

    fn insert_memory(&self, key: &str, body: &str) {
        if body.len() > self.budget {
            // Larger than the whole budget: admitting it would evict
            // everything and then be evicted itself next insert.
            return;
        }
        let mut lru = self.lru.lock().unwrap();
        if let Some(old) = lru.entries.insert(key.to_owned(), body.to_owned()) {
            lru.bytes -= old.len();
            lru.touch(key);
        } else {
            lru.order.push_back(key.to_owned());
        }
        lru.bytes += body.len();
        while lru.bytes > self.budget {
            let Some(coldest) = lru.order.pop_front() else {
                break;
            };
            if let Some(evicted) = lru.entries.remove(&coldest) {
                lru.bytes -= evicted.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshots counters and gauges for the `stats` request.
    pub fn snapshot(&self) -> CacheSnapshot {
        let lru = self.lru.lock().unwrap();
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_invalid: self.disk_invalid.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: lru.entries.len() as u64,
            bytes: lru.bytes as u64,
        }
    }
}

/// Writes `body` to `path` via a temp file in the same directory plus
/// an atomic rename, so concurrent writers and crashes can never
/// expose a torn entry.
fn write_atomically(path: &Path, body: &str) -> std::io::Result<()> {
    let dir = path.parent().ok_or(std::io::ErrorKind::InvalidInput)?;
    // Distinguish concurrent writers by thread so two workers storing
    // the same key cannot interleave on one temp file; last rename
    // wins, and both wrote identical bytes anyway.
    let tmp = dir.join(format!(
        ".tmp-{:?}-{}",
        std::thread::current().id(),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("entry")
    ));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
    }
    let renamed = std::fs::rename(&tmp, path);
    if renamed.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    renamed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("denali-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A minimal body that passes disk-tier protocol validation.
    fn valid_body(fingerprint: &str) -> String {
        crate::protocol::render_result_body(fingerprint, false, "sat", &[])
    }

    #[test]
    fn memory_roundtrip_and_counters() {
        let cache = Cache::new(1 << 20, None).unwrap();
        assert_eq!(cache.get("00ff"), None);
        cache.put("00ff", "body-a");
        assert_eq!(cache.get("00ff").as_deref(), Some("body-a"));
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.entries), (1, 1, 1));
        assert_eq!(snap.bytes, "body-a".len() as u64);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // Budget fits exactly two 4-byte bodies.
        let cache = Cache::new(8, None).unwrap();
        cache.put("aa", "aaaa");
        cache.put("bb", "bbbb");
        assert!(cache.get("aa").is_some()); // "aa" is now hottest
        cache.put("cc", "cccc"); // must evict "bb"
        assert!(cache.get("aa").is_some());
        assert!(cache.get("bb").is_none());
        assert!(cache.get("cc").is_some());
        assert_eq!(cache.snapshot().evictions, 1);
    }

    #[test]
    fn oversized_bodies_are_not_admitted() {
        let cache = Cache::new(4, None).unwrap();
        cache.put("aa", "toolarge");
        assert_eq!(cache.snapshot().entries, 0);
        assert!(cache.get("aa").is_none());
    }

    #[test]
    fn replacing_an_entry_adjusts_the_byte_gauge() {
        let cache = Cache::new(64, None).unwrap();
        cache.put("aa", "xxxxxxxx");
        cache.put("aa", "yy");
        let snap = cache.snapshot();
        assert_eq!((snap.entries, snap.bytes), (1, 2));
        assert_eq!(cache.get("aa").as_deref(), Some("yy"));
    }

    #[test]
    fn disk_tier_survives_restart_and_promotes() {
        let dir = temp_dir("restart");
        let body = valid_body("abcd0123");
        {
            let cache = Cache::new(1 << 20, Some(dir.clone())).unwrap();
            cache.put("abcd0123", &body);
        }
        // "Restart": a fresh cache over the same directory.
        let cache = Cache::new(1 << 20, Some(dir.clone())).unwrap();
        assert_eq!(cache.get("abcd0123").as_deref(), Some(body.as_str()));
        let snap = cache.snapshot();
        assert_eq!((snap.disk_hits, snap.entries), (1, 1));
        // Promoted: a second get is a pure memory hit.
        assert_eq!(cache.get("abcd0123").as_deref(), Some(body.as_str()));
        assert_eq!(cache.snapshot().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_disk_entries_are_deleted_and_miss() {
        let dir = temp_dir("corrupt");
        let cache = Cache::new(1 << 20, Some(dir.clone())).unwrap();
        // A torn/hand-edited entry appears on disk behind the cache's
        // back (simulating corruption the atomic writer cannot cause).
        std::fs::write(dir.join("deadbeef.json"), "{not a resp").unwrap();
        assert_eq!(cache.get("deadbeef"), None, "corruption must miss");
        assert!(
            !dir.join("deadbeef.json").exists(),
            "invalid entry must be deleted so the next compile rewrites it"
        );
        let snap = cache.snapshot();
        assert_eq!((snap.disk_invalid, snap.hits, snap.misses), (1, 0, 1));
        // A truncated but otherwise plausible body is also rejected.
        let body = valid_body("deadbeef");
        std::fs::write(dir.join("deadbeef.json"), &body[..body.len() / 2]).unwrap();
        assert_eq!(cache.get("deadbeef"), None);
        assert_eq!(cache.snapshot().disk_invalid, 2);
        // A valid entry on disk still round-trips.
        std::fs::write(dir.join("deadbeef.json"), &body).unwrap();
        assert_eq!(cache.get("deadbeef").as_deref(), Some(body.as_str()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_hex_keys_never_touch_the_filesystem() {
        let dir = temp_dir("keys");
        let cache = Cache::new(1 << 20, Some(dir.clone())).unwrap();
        cache.put("../escape", "nope");
        assert!(!dir.join("../escape.json").exists());
        // Still served from memory.
        assert_eq!(cache.get("../escape").as_deref(), Some("nope"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
