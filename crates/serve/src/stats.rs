//! Server telemetry: lock-free counters plus the `stats` response body.
//!
//! Counters are plain relaxed [`AtomicU64`]s — they are monotone tallies
//! read for observability, not for synchronization, so torn cross-counter
//! snapshots (a request counted as received but not yet as completed)
//! are acceptable and documented in `docs/SERVER.md`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::cache::CacheSnapshot;
use crate::coalesce::CoalesceSnapshot;

/// Monotone request/outcome counters. One instance per server, shared
/// by reference across workers.
#[derive(Debug)]
pub struct Stats {
    /// Request lines received (including malformed ones).
    pub requests: AtomicU64,
    /// Compiles answered with a full (non-degraded) result.
    pub compiles_ok: AtomicU64,
    /// Compiles answered with a `degraded: true` baseline program.
    pub compiles_degraded: AtomicU64,
    /// Compiles answered with an error (parse/lower/search/...).
    pub compile_errors: AtomicU64,
    /// Lines rejected before admission (malformed JSON, schema).
    pub protocol_errors: AtomicU64,
    /// Requests shed with a retryable `overload` error.
    pub overload_rejections: AtomicU64,
    /// Requests rejected because the server is shutting down
    /// (non-retryable `shutting_down` error).
    pub shutdown_rejections: AtomicU64,
    /// Pipeline executions actually started (cache hits and coalesced
    /// followers do *not* count — this is the denominator stampede
    /// tests assert on).
    pub executions: AtomicU64,
    /// Requests answered by replaying an in-flight leader's result.
    pub coalesced: AtomicU64,
    /// Followers whose own deadline expired before their leader
    /// finished (answered with their own degraded program).
    pub coalesced_expired: AtomicU64,
    /// Followers promoted to leader after their leader vanished.
    pub promotions: AtomicU64,
    /// Compile jobs that panicked (the worker survives; the request is
    /// answered with an internal error).
    pub worker_panics: AtomicU64,
    /// Portfolio probe races completed (probes that ran diversified
    /// CDCL lanes instead of a single solver).
    pub portfolio_races: AtomicU64,
    /// Portfolio races won by a non-default lane (configuration index
    /// greater than zero).
    pub portfolio_alt_wins: AtomicU64,
    /// E-graph arena nodes saturated across all executions (cumulative
    /// over the GMAs of every non-cached compile).
    pub egraph_nodes: AtomicU64,
    /// E-graph storage payload bytes across all executions (arena +
    /// interned slices + class lists + memo; cumulative like
    /// `egraph_nodes`, so bytes ÷ nodes is a fleet-wide bytes/node).
    pub egraph_bytes: AtomicU64,
    /// Deadline-expired compiles answered with a simulator-verified
    /// stochastic program harvested from the anytime channel (a full
    /// `degraded: false` answer instead of the baseline fallback).
    pub stoke_harvests: AtomicU64,
    /// Compiles answered by the stochastic engine (full runs, not
    /// harvests): the request asked for `engine: stochastic`, or
    /// `auto` fell back after the SAT budget was exhausted.
    pub stoke_compiles: AtomicU64,
    /// When the server was started.
    pub started: Instant,
}

impl Default for Stats {
    fn default() -> Stats {
        Stats {
            requests: AtomicU64::new(0),
            compiles_ok: AtomicU64::new(0),
            compiles_degraded: AtomicU64::new(0),
            compile_errors: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            overload_rejections: AtomicU64::new(0),
            shutdown_rejections: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            coalesced_expired: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            portfolio_races: AtomicU64::new(0),
            portfolio_alt_wins: AtomicU64::new(0),
            egraph_nodes: AtomicU64::new(0),
            egraph_bytes: AtomicU64::new(0),
            stoke_harvests: AtomicU64::new(0),
            stoke_compiles: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

impl Stats {
    /// Increments a counter (convenience for call sites).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the `stats` response body (everything after the echoed
    /// id). `queue_depth` comes from the pool, `cache` from the cache,
    /// `coalesce` from the coalescer, and `latency` is the pre-rendered
    /// JSON object from [`crate::metrics::ServeMetrics::latency_json`],
    /// so one body carries the full picture.
    ///
    /// Schema v2 = v1 plus the `schema` tag and the `latency` section;
    /// v3 = v2 plus the `stoke` section (anytime harvests and
    /// stochastic-engine compiles) — each bump strictly additive, so
    /// older consumers keep working (the migration notes are in
    /// `docs/SERVER.md`).
    pub fn render_body(
        &self,
        queue_depth: u64,
        cache: &CacheSnapshot,
        coalesce: &CoalesceSnapshot,
        latency: &str,
    ) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            concat!(
                "\"status\":\"ok\",",
                "\"schema\":\"denali-serve-stats-v3\",",
                "\"uptime_ms\":{},",
                "\"requests\":{},",
                "\"compiles\":{{\"ok\":{},\"degraded\":{},\"error\":{}}},",
                "\"executions\":{},",
                "\"protocol_errors\":{},",
                "\"overload_rejections\":{},",
                "\"shutdown_rejections\":{},",
                "\"worker_panics\":{},",
                "\"queue_depth\":{},",
                "\"portfolio\":{{\"races\":{},\"alt_wins\":{}}},",
                "\"stoke\":{{\"harvests\":{},\"compiles\":{}}},",
                "\"egraph\":{{\"nodes\":{},\"bytes\":{},\"bytes_per_node\":{}}},",
                "\"coalesce\":{{\"coalesced\":{},\"expired\":{},\"promotions\":{},",
                "\"inflight\":{},\"waiting\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"disk_hits\":{},\"disk_invalid\":{},",
                "\"evictions\":{},\"entries\":{},\"bytes\":{}}},",
                "\"latency\":{}"
            ),
            self.started.elapsed().as_millis(),
            load(&self.requests),
            load(&self.compiles_ok),
            load(&self.compiles_degraded),
            load(&self.compile_errors),
            load(&self.executions),
            load(&self.protocol_errors),
            load(&self.overload_rejections),
            load(&self.shutdown_rejections),
            load(&self.worker_panics),
            queue_depth,
            load(&self.portfolio_races),
            load(&self.portfolio_alt_wins),
            load(&self.stoke_harvests),
            load(&self.stoke_compiles),
            load(&self.egraph_nodes),
            load(&self.egraph_bytes),
            load(&self.egraph_bytes)
                .checked_div(load(&self.egraph_nodes))
                .unwrap_or(0),
            load(&self.coalesced),
            load(&self.coalesced_expired),
            load(&self.promotions),
            coalesce.inflight,
            coalesce.waiting,
            cache.hits,
            cache.misses,
            cache.disk_hits,
            cache.disk_invalid,
            cache.evictions,
            cache.entries,
            cache.bytes,
            latency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{render_response, RequestId};
    use denali_trace::json::{self, Json};

    #[test]
    fn stats_body_is_valid_json_with_all_gauges() {
        let stats = Stats::default();
        Stats::bump(&stats.requests);
        Stats::bump(&stats.requests);
        Stats::bump(&stats.compiles_ok);
        Stats::bump(&stats.coalesced);
        Stats::bump(&stats.portfolio_races);
        Stats::bump(&stats.portfolio_races);
        Stats::bump(&stats.portfolio_alt_wins);
        Stats::bump(&stats.stoke_harvests);
        stats.egraph_nodes.fetch_add(10, Ordering::Relaxed);
        stats.egraph_bytes.fetch_add(720, Ordering::Relaxed);
        let cache = CacheSnapshot {
            hits: 3,
            misses: 1,
            disk_hits: 2,
            disk_invalid: 1,
            evictions: 0,
            entries: 1,
            bytes: 512,
        };
        let coalesce = CoalesceSnapshot {
            inflight: 2,
            waiting: 5,
        };
        let latency = crate::metrics::ServeMetrics::new().latency_json();
        let line = render_response(
            &RequestId::Num(9),
            &stats.render_body(4, &cache, &coalesce, &latency),
        );
        let v = json::parse(&line).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("denali-serve-stats-v3")
        );
        assert!(
            v.get("latency").and_then(|l| l.get("stages")).is_some(),
            "v2+ bodies carry the latency section"
        );
        let stoke = v.get("stoke").unwrap();
        assert_eq!(stoke.get("harvests").and_then(Json::as_u64), Some(1));
        assert_eq!(stoke.get("compiles").and_then(Json::as_u64), Some(0));
        assert_eq!(v.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("queue_depth").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("worker_panics").and_then(Json::as_u64), Some(0));
        let portfolio = v.get("portfolio").unwrap();
        assert_eq!(portfolio.get("races").and_then(Json::as_u64), Some(2));
        assert_eq!(portfolio.get("alt_wins").and_then(Json::as_u64), Some(1));
        let egraph = v.get("egraph").unwrap();
        assert_eq!(egraph.get("nodes").and_then(Json::as_u64), Some(10));
        assert_eq!(egraph.get("bytes").and_then(Json::as_u64), Some(720));
        assert_eq!(
            egraph.get("bytes_per_node").and_then(Json::as_u64),
            Some(72)
        );
        assert_eq!(v.get("shutdown_rejections").and_then(Json::as_u64), Some(0));
        let compiles = v.get("compiles").unwrap();
        assert_eq!(compiles.get("ok").and_then(Json::as_u64), Some(1));
        assert_eq!(compiles.get("degraded").and_then(Json::as_u64), Some(0));
        let co = v.get("coalesce").unwrap();
        assert_eq!(co.get("coalesced").and_then(Json::as_u64), Some(1));
        assert_eq!(co.get("inflight").and_then(Json::as_u64), Some(2));
        assert_eq!(co.get("waiting").and_then(Json::as_u64), Some(5));
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(3));
        assert_eq!(cache.get("disk_invalid").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("bytes").and_then(Json::as_u64), Some(512));
        assert!(v.get("uptime_ms").and_then(Json::as_u64).is_some());
    }
}
