//! Deadline watchdog: arms [`CancelToken`]s when request deadlines
//! expire.
//!
//! One thread serves every in-flight deadline. Workers arm a token
//! with [`DeadlineWatch::arm`] before compiling; the returned guard
//! disarms on drop, so a request that finishes in time leaves no
//! residue. The watchdog sleeps on a [`Condvar`] until the earliest
//! armed deadline (or a new arm/shutdown), cancels expired tokens, and
//! goes back to sleep — no polling, no per-request timer threads.
//!
//! Cancellation is *cooperative*: firing a token merely flips the
//! shared flag that the search loop and SAT solver check at their
//! checkpoints (see `denali_core::search`), so an expired request
//! stops within one probe step, not instantly. That latency is
//! accepted by design: the paper's probes are the unit of progress,
//! and interrupting below probe granularity would buy nothing.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use denali_par::CancelToken;

/// The instant `ms` milliseconds after `from`, or `None` when the sum
/// overflows `Instant`'s range (platform-dependent; some clocks cannot
/// represent dates centuries out). A request with an unrepresentable
/// `deadline_ms` is indistinguishable from one with no deadline, so
/// `None` means "never arm" — the alternative (the bare `+` this
/// replaces) panics inside a worker thread on such inputs.
pub fn deadline_at(from: Instant, ms: u64) -> Option<Instant> {
    from.checked_add(Duration::from_millis(ms))
}

struct State {
    entries: Vec<(u64, Instant, CancelToken)>,
    next_id: u64,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    wake: Condvar,
}

/// The watchdog thread plus the shared deadline table.
pub struct DeadlineWatch {
    inner: Arc<Inner>,
    handle: Option<JoinHandle<()>>,
}

/// Proof that a deadline is armed; dropping it disarms the deadline
/// (whether or not it already fired).
pub struct DeadlineGuard {
    inner: Arc<Inner>,
    id: u64,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.entries.retain(|(id, _, _)| *id != self.id);
        // No wake needed: removing an entry can only postpone the
        // watchdog's next wakeup, and a spurious early wakeup is
        // harmless.
    }
}

impl Default for DeadlineWatch {
    fn default() -> DeadlineWatch {
        DeadlineWatch::new()
    }
}

impl DeadlineWatch {
    /// Spawns the watchdog thread.
    pub fn new() -> DeadlineWatch {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                entries: Vec::new(),
                next_id: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let for_thread = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("serve-deadline".to_owned())
            .spawn(move || watchdog_loop(&for_thread))
            .expect("spawn deadline watchdog");
        DeadlineWatch {
            inner,
            handle: Some(handle),
        }
    }

    /// Cancels `token` at `at` unless the guard is dropped first.
    #[must_use = "dropping the guard immediately disarms the deadline"]
    pub fn arm(&self, at: Instant, token: CancelToken) -> DeadlineGuard {
        let mut state = self.inner.state.lock().unwrap();
        let id = state.next_id;
        state.next_id += 1;
        state.entries.push((id, at, token));
        drop(state);
        self.inner.wake.notify_one();
        DeadlineGuard {
            inner: Arc::clone(&self.inner),
            id,
        }
    }
}

impl Drop for DeadlineWatch {
    fn drop(&mut self) {
        self.inner.state.lock().unwrap().shutdown = true;
        self.inner.wake.notify_one();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn watchdog_loop(inner: &Inner) {
    let mut state = inner.state.lock().unwrap();
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        state.entries.retain(|(_, at, token)| {
            let expired = *at <= now;
            if expired {
                token.cancel();
            }
            !expired
        });
        let next = state.entries.iter().map(|(_, at, _)| *at).min();
        state = match next {
            None => inner.wake.wait(state).unwrap(),
            Some(at) => {
                let timeout = at.saturating_duration_since(now);
                inner.wake.wait_timeout(state, timeout).unwrap().0
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "timed out waiting for {what}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn fires_expired_deadlines() {
        let watch = DeadlineWatch::new();
        let token = CancelToken::default();
        let _guard = watch.arm(Instant::now() + Duration::from_millis(5), token.clone());
        eventually("token cancellation", || token.is_cancelled());
    }

    #[test]
    fn disarmed_deadlines_never_fire() {
        let watch = DeadlineWatch::new();
        let token = CancelToken::default();
        let guard = watch.arm(Instant::now() + Duration::from_millis(20), token.clone());
        drop(guard);
        std::thread::sleep(Duration::from_millis(60));
        assert!(!token.is_cancelled());
    }

    #[test]
    fn tracks_many_deadlines_independently() {
        let watch = DeadlineWatch::new();
        let soon = CancelToken::default();
        let later = CancelToken::default();
        let _g1 = watch.arm(Instant::now() + Duration::from_millis(5), soon.clone());
        let _g2 = watch.arm(Instant::now() + Duration::from_secs(3600), later.clone());
        eventually("near deadline", || soon.is_cancelled());
        assert!(!later.is_cancelled());
    }

    #[test]
    fn absurd_deadlines_never_panic() {
        // Whether a deadline ~584 million years out is representable is
        // platform business; the helper must return, never panic.
        let _ = deadline_at(Instant::now(), u64::MAX);
        assert!(deadline_at(Instant::now(), 2000).is_some());
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let watch = DeadlineWatch::new();
        let token = CancelToken::default();
        let _guard = watch.arm(Instant::now() + Duration::from_secs(3600), token);
        drop(watch); // must not hang
    }
}
