#![warn(missing_docs)]

//! The Denali compilation server.
//!
//! The paper frames Denali as a tool invoked repeatedly on small,
//! performance-critical kernels (§1, §6). That workload is exactly what
//! a persistent daemon wins at: axiom construction, process startup,
//! and — above all — re-solving GMAs the server has already seen can
//! all be amortized across requests. This crate turns the [`Denali`]
//! façade into such a daemon:
//!
//! * **Protocol** ([`protocol`]) — framed JSONL over stdio or TCP: one
//!   request object per line in, one response object per line out,
//!   correlated by `id`. See `docs/SERVER.md` for schema v1.
//! * **Content-addressed cache** ([`cache`]) — results are keyed by a
//!   canonical fingerprint over the lowered GMAs, the axiom set, and
//!   the output-affecting option subset ([`denali_core::fingerprint`]).
//!   An in-memory LRU with a byte budget fronts an optional on-disk
//!   tier that survives restarts. Cache hits return *byte-identical*
//!   response bodies to fresh compiles.
//! * **Bounded worker pool** ([`pool`]) — requests are admitted to a
//!   fixed-capacity queue served by a fixed set of workers;
//!   when the queue is full the server sheds load with a retryable
//!   `overload` error instead of stalling the connection (and with a
//!   non-retryable `shutting_down` error once the pool has closed).
//! * **Single-flight coalescing** ([`coalesce`]) — concurrent requests
//!   with the same fingerprint execute the pipeline once: the first
//!   becomes the leader and occupies a worker, the duplicates become
//!   followers that replay the leader's exact response bytes without
//!   consuming a worker or a queue slot. The cache dedups *completed*
//!   work; the coalescer closes the stampede window for *in-flight*
//!   work.
//! * **Deadlines and graceful degradation** ([`deadline`],
//!   [`server`]) — a request may carry `deadline_ms`; a watchdog arms
//!   the pipeline's [`CancelToken`](denali_par::CancelToken) so an
//!   expired search is abandoned mid-probe, and the server answers
//!   with the baseline rewrite program tagged `"degraded": true` — the
//!   client always gets *a* correct program.
//! * **Stats** ([`stats`]) — a `stats` request exposes request/outcome
//!   counters, cache hit/miss/eviction gauges, queue depth, uptime,
//!   and (schema v2) per-stage/per-outcome latency quantiles. Every
//!   request runs under a `serve.request` trace span.
//! * **Metrics** ([`metrics`]) — per-stage (queue, cache, coalesce,
//!   execute, total) and per-outcome latency histograms plus mirrors of
//!   every counter, rendered in the Prometheus text exposition format
//!   for `denali serve --metrics-addr` (see `denali_metrics`).
//! * **Flight recorder** ([`flight`]) — an always-on bounded ring of
//!   finished-request summaries (the `flight` request reads it back),
//!   deterministic 1-in-N trace sampling, and retroactive spooling of
//!   slow requests' full span trees to disk.
//!
//! [`Denali`]: denali_core::Denali

pub mod cache;
pub mod coalesce;
pub mod deadline;
pub mod flight;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod stats;

pub use cache::Cache;
pub use flight::{FlightEntry, FlightRecorder};
pub use metrics::ServeMetrics;
pub use server::{serve_listener, serve_stdio, serve_tcp, Server, ServerConfig};
