//! A bounded worker pool with an admission queue.
//!
//! The server must stay responsive under overload: SAT probes can run
//! for seconds, and an unbounded queue would silently convert overload
//! into unbounded latency. Instead admission is a [`SyncSender`] with a
//! fixed capacity — [`Pool::try_submit`] never blocks, and a full queue
//! is reported to the caller, which maps it to a *retryable* `overload`
//! protocol error. The client, not the queue, decides whether to wait.
//!
//! Workers are plain threads sharing one receiver. Dropping the pool
//! closes the channel and joins the workers, so already-admitted
//! requests finish (and their responses flush) before shutdown — the
//! "graceful" half of graceful degradation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`Pool::try_submit`] declined a job. The two cases demand
/// opposite client behaviour, so they must not be conflated: `Full` is
/// transient (back off and retry the identical request), `Closed` is
/// terminal (the server is shutting down; retrying re-sends into a
/// closing process).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity; shed with a *retryable*
    /// `overload` error.
    Full,
    /// The pool has shut down and accepts no further work; shed with a
    /// *non-retryable* `shutting_down` error.
    Closed,
}

/// A fixed set of worker threads fed by a bounded queue.
pub struct Pool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    queued: Arc<AtomicU64>,
    panics: Arc<AtomicU64>,
    gauge: Option<Arc<denali_metrics::Gauge>>,
}

impl Pool {
    /// Spawns `workers` threads (at least 1) behind a queue holding at
    /// most `queue` waiting jobs beyond the ones being executed.
    pub fn new(workers: usize, queue: usize) -> Pool {
        Pool::with_depth_gauge(workers, queue, None)
    }

    /// [`Pool::new`], mirroring the queue depth into `gauge` on every
    /// submit and dequeue (the `denali_serve_queue_depth` family). The
    /// mirror is advisory — racing updates may briefly publish a stale
    /// depth; [`Pool::depth`] stays authoritative.
    pub fn with_depth_gauge(
        workers: usize,
        queue: usize,
        gauge: Option<Arc<denali_metrics::Gauge>>,
    ) -> Pool {
        let (sender, receiver) = mpsc::sync_channel::<Job>(queue);
        let receiver = Arc::new(Mutex::new(receiver));
        let queued = Arc::new(AtomicU64::new(0));
        let panics = Arc::new(AtomicU64::new(0));
        let workers = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let queued = Arc::clone(&queued);
                let panics = Arc::clone(&panics);
                let gauge = gauge.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &queued, &panics, gauge.as_deref()))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool {
            sender: Some(sender),
            workers,
            queued,
            panics,
            gauge,
        }
    }

    /// Admits `job` if the queue has room.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::Closed`] when the pool has shut down; either way
    /// the job is returned to the caller unexecuted (dropped here,
    /// since it is consumed).
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let sender = self.sender.as_ref().expect("pool not shut down");
        // Count before sending so a worker that dequeues instantly
        // never observes a decrement racing ahead of the increment.
        self.queued.fetch_add(1, Ordering::Relaxed);
        let result = match sender.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(err) => {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                Err(match err {
                    TrySendError::Full(_) => SubmitError::Full,
                    TrySendError::Disconnected(_) => SubmitError::Closed,
                })
            }
        };
        if let Some(gauge) = &self.gauge {
            gauge.set(self.queued.load(Ordering::Relaxed));
        }
        result
    }

    /// Jobs admitted but not yet started (the queue-depth gauge).
    pub fn depth(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Jobs that panicked on a worker (the worker survives each one).
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain the queue, then exit.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    receiver: &Mutex<Receiver<Job>>,
    queued: &AtomicU64,
    panics: &AtomicU64,
    gauge: Option<&denali_metrics::Gauge>,
) {
    loop {
        // Hold the lock only while dequeuing, never while running.
        let job = match receiver.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // pool dropped and queue drained
        };
        queued.fetch_sub(1, Ordering::Relaxed);
        if let Some(gauge) = gauge {
            gauge.set(queued.load(Ordering::Relaxed));
        }
        // A panicking job must not take the worker thread with it:
        // every panic would silently shrink the pool until admitted
        // requests hang forever. The payload is discarded — the server
        // layer answers the request (its job wrapper catches first and
        // renders an internal error); this is the backstop that keeps
        // the thread alive either way.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn runs_jobs_on_workers() {
        let pool = Pool::new(2, 8);
        let (tx, rx) = channel();
        for i in 0..6 {
            let tx = tx.clone();
            pool.try_submit(move || tx.send(i).unwrap()).unwrap();
        }
        let mut got: Vec<i32> = (0..6).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn sheds_load_when_the_queue_is_full() {
        let pool = Pool::new(1, 1);
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        // First job occupies the single worker...
        let g = Arc::clone(&gate);
        pool.try_submit(move || drop(g.lock().unwrap())).unwrap();
        // ...wait until it is actually running (queue drained)...
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        // ...second fills the queue slot; third must be rejected.
        let g = Arc::clone(&gate);
        pool.try_submit(move || drop(g.lock().unwrap())).unwrap();
        assert_eq!(pool.try_submit(|| ()), Err(SubmitError::Full));
        assert_eq!(pool.depth(), 1);
        drop(hold);
    }

    #[test]
    fn closed_pool_is_distinguishable_from_a_full_one() {
        // Construct a pool whose receiver is already gone: submission
        // must report Closed, not Full — clients retry Full but must
        // not retry into a shutting-down server.
        let (sender, receiver) = mpsc::sync_channel::<Job>(4);
        drop(receiver);
        let pool = Pool {
            sender: Some(sender),
            workers: Vec::new(),
            queued: Arc::new(AtomicU64::new(0)),
            panics: Arc::new(AtomicU64::new(0)),
            gauge: None,
        };
        assert_eq!(pool.try_submit(|| ()), Err(SubmitError::Closed));
        assert_eq!(pool.depth(), 0, "a rejected job is not queued");
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        let pool = Pool::new(1, 8);
        let (tx, rx) = channel();
        pool.try_submit(|| panic!("job blew up")).unwrap();
        // The single worker must survive to run the next job.
        pool.try_submit(move || tx.send(42).unwrap()).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
        assert_eq!(pool.panics(), 1);
    }

    #[test]
    fn depth_gauge_mirrors_the_queue() {
        let gauge = Arc::new(denali_metrics::Gauge::default());
        let pool = Pool::with_depth_gauge(1, 4, Some(Arc::clone(&gauge)));
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        let g = Arc::clone(&gate);
        pool.try_submit(move || drop(g.lock().unwrap())).unwrap();
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        let g = Arc::clone(&gate);
        pool.try_submit(move || drop(g.lock().unwrap())).unwrap();
        assert_eq!(gauge.get(), 1, "gauge tracks the queued job");
        drop(hold);
        drop(pool);
        assert_eq!(gauge.get(), 0, "gauge returns to zero once drained");
    }

    #[test]
    fn drop_drains_admitted_jobs() {
        let pool = Pool::new(2, 16);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 10);
    }
}
