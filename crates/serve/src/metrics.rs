//! The server's metric families: per-stage and per-outcome latency
//! histograms plus Prometheus-mirrored views of the [`Stats`] counters.
//!
//! Each [`Server`](crate::Server) owns one [`ServeMetrics`] with its own
//! [`Registry`] — servers must not share request latency (tests run
//! several per process) — while the core pipeline's families live in
//! [`denali_metrics::global`]. [`ServeMetrics::render`] emits both, so
//! one `GET /metrics` scrape carries the whole picture.
//!
//! The histograms are recorded on the request path (lock-free,
//! nanoseconds per event); the counter/gauge mirrors are *pull*-style —
//! [`ServeMetrics::sync`] copies the authoritative [`Stats`] /cache/
//! coalescer values at scrape or stats time. Mirroring beats double
//! counting: the JSONL `stats` response and the exposition endpoint can
//! never disagree about a tally.

use std::sync::Arc;

use denali_metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};

use crate::cache::CacheSnapshot;
use crate::coalesce::CoalesceSnapshot;
use crate::stats::Stats;

/// The five stages a pooled compile passes through; `total` spans
/// admission to response.
const STAGES: [&str; 5] = ["queue", "cache", "coalesce", "execute", "total"];

/// The five terminal outcomes latency is classified by. `coalesced` is
/// an overlay — a coalesced request records under its outcome *and*
/// under `coalesced`.
const OUTCOMES: [&str; 5] = ["ok", "hit", "degraded", "error", "coalesced"];

/// One server's metric families and the handles its hot paths record
/// through.
pub struct ServeMetrics {
    registry: Registry,
    /// Time from admission to the start of leader execution (pooled
    /// paths only; the synchronous test path has no queue).
    pub stage_queue: Arc<Histogram>,
    /// Time inside a result-cache lookup.
    pub stage_cache: Arc<Histogram>,
    /// A follower's wait for its leader's delivery.
    pub stage_coalesce: Arc<Histogram>,
    /// Time inside the compile pipeline (the SAT-probe ladder).
    pub stage_execute: Arc<Histogram>,
    /// Admission to rendered response, every request.
    pub stage_total: Arc<Histogram>,
    /// The pool's queue-depth gauge, updated live on submit/dequeue.
    pub queue_depth: Arc<Gauge>,
    outcomes: [Arc<Histogram>; 5],
    mirror: Mirror,
}

/// Scrape-time mirrors of the authoritative counters.
struct Mirror {
    requests: Arc<Counter>,
    compiles_ok: Arc<Counter>,
    compiles_degraded: Arc<Counter>,
    compile_errors: Arc<Counter>,
    executions: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    overload_rejections: Arc<Counter>,
    shutdown_rejections: Arc<Counter>,
    worker_panics: Arc<Counter>,
    coalesced: Arc<Counter>,
    coalesced_expired: Arc<Counter>,
    promotions: Arc<Counter>,
    stoke_harvests: Arc<Counter>,
    stoke_compiles: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_disk_hits: Arc<Counter>,
    cache_disk_invalid: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_entries: Arc<Gauge>,
    cache_bytes: Arc<Gauge>,
    coalesce_inflight: Arc<Gauge>,
    coalesce_waiting: Arc<Gauge>,
    uptime_seconds: Arc<Gauge>,
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Builds the families in a fresh registry.
    pub fn new() -> ServeMetrics {
        let registry = Registry::new();
        let stage_help = "Per-stage request latency (microseconds)";
        let stage = |name: &str| {
            registry.histogram_with("denali_serve_stage_us", &[("stage", name)], stage_help)
        };
        let outcome_help = "Request latency by terminal outcome (microseconds)";
        let outcome = |name: &str| {
            registry.histogram_with(
                "denali_serve_outcome_us",
                &[("outcome", name)],
                outcome_help,
            )
        };
        let compiles = |tag: &str| {
            registry.counter_with(
                "denali_serve_compiles_total",
                &[("outcome", tag)],
                "Compile responses by outcome",
            )
        };
        let stage_queue = stage(STAGES[0]);
        let stage_cache = stage(STAGES[1]);
        let stage_coalesce = stage(STAGES[2]);
        let stage_execute = stage(STAGES[3]);
        let stage_total = stage(STAGES[4]);
        let queue_depth = registry.gauge(
            "denali_serve_queue_depth",
            "Jobs admitted to the pool but not yet started",
        );
        let outcomes = [
            outcome(OUTCOMES[0]),
            outcome(OUTCOMES[1]),
            outcome(OUTCOMES[2]),
            outcome(OUTCOMES[3]),
            outcome(OUTCOMES[4]),
        ];
        let mirror = Mirror {
            requests: registry.counter(
                "denali_serve_requests_total",
                "Request lines received (including malformed ones)",
            ),
            compiles_ok: compiles("ok"),
            compiles_degraded: compiles("degraded"),
            compile_errors: compiles("error"),
            executions: registry.counter(
                "denali_serve_executions_total",
                "Pipeline executions actually started",
            ),
            protocol_errors: registry.counter(
                "denali_serve_protocol_errors_total",
                "Lines rejected before admission",
            ),
            overload_rejections: registry.counter(
                "denali_serve_overload_rejections_total",
                "Requests shed with a retryable overload error",
            ),
            shutdown_rejections: registry.counter(
                "denali_serve_shutdown_rejections_total",
                "Requests rejected during shutdown",
            ),
            worker_panics: registry.counter(
                "denali_serve_worker_panics_total",
                "Compile jobs that panicked",
            ),
            coalesced: registry.counter(
                "denali_serve_coalesced_total",
                "Requests answered by replaying an in-flight leader's result",
            ),
            coalesced_expired: registry.counter(
                "denali_serve_coalesced_expired_total",
                "Followers whose deadline expired before their leader finished",
            ),
            promotions: registry.counter(
                "denali_serve_promotions_total",
                "Followers promoted to leader after their leader vanished",
            ),
            stoke_harvests: registry.counter(
                "denali_serve_stoke_harvests_total",
                "Deadline expiries answered from the anytime channel",
            ),
            stoke_compiles: registry.counter(
                "denali_serve_stoke_compiles_total",
                "Compiles answered by the stochastic engine",
            ),
            cache_hits: registry.counter("denali_serve_cache_hits_total", "Result-cache hits"),
            cache_misses: registry
                .counter("denali_serve_cache_misses_total", "Result-cache misses"),
            cache_disk_hits: registry.counter(
                "denali_serve_cache_disk_hits_total",
                "Misses answered by the disk tier",
            ),
            cache_disk_invalid: registry.counter(
                "denali_serve_cache_disk_invalid_total",
                "Disk-tier entries that failed validation and were discarded",
            ),
            cache_evictions: registry.counter(
                "denali_serve_cache_evictions_total",
                "Memory-tier evictions under the byte budget",
            ),
            cache_entries: registry
                .gauge("denali_serve_cache_entries", "Memory-tier cache entries"),
            cache_bytes: registry.gauge("denali_serve_cache_bytes", "Memory-tier cache bytes"),
            coalesce_inflight: registry.gauge(
                "denali_serve_coalesce_inflight",
                "Flights currently executing",
            ),
            coalesce_waiting: registry.gauge(
                "denali_serve_coalesce_waiting",
                "Followers waiting on an in-flight leader",
            ),
            uptime_seconds: registry
                .gauge("denali_serve_uptime_seconds", "Seconds since server start"),
        };
        ServeMetrics {
            registry,
            stage_queue,
            stage_cache,
            stage_coalesce,
            stage_execute,
            stage_total,
            queue_depth,
            outcomes,
            mirror,
        }
    }

    /// Records a finished request: `total_us` into the total-stage
    /// histogram, the mapped outcome histogram, and — when the request
    /// was answered by coalescing — the `coalesced` overlay.
    pub fn observe_outcome(&self, outcome: &str, coalesced: bool, total_us: u64) {
        self.stage_total.observe(total_us);
        // Shed/panic tags (`overload`, `shutdown`, `panic`) classify as
        // errors: the client did not get a program. A harvested answer
        // is a full result (`degraded: false`), so it classifies as ok.
        let index = match outcome {
            "ok" | "harvested" => 0,
            "hit" => 1,
            "degraded" => 2,
            _ => 3,
        };
        self.outcomes[index].observe(total_us);
        if coalesced {
            self.outcomes[4].observe(total_us);
        }
    }

    /// Copies the authoritative counters into their exposition mirrors.
    pub fn sync(&self, stats: &Stats, cache: &CacheSnapshot, coalesce: &CoalesceSnapshot) {
        use std::sync::atomic::Ordering;
        let load = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        let m = &self.mirror;
        m.requests.set(load(&stats.requests));
        m.compiles_ok.set(load(&stats.compiles_ok));
        m.compiles_degraded.set(load(&stats.compiles_degraded));
        m.compile_errors.set(load(&stats.compile_errors));
        m.executions.set(load(&stats.executions));
        m.protocol_errors.set(load(&stats.protocol_errors));
        m.overload_rejections.set(load(&stats.overload_rejections));
        m.shutdown_rejections.set(load(&stats.shutdown_rejections));
        m.worker_panics.set(load(&stats.worker_panics));
        m.coalesced.set(load(&stats.coalesced));
        m.coalesced_expired.set(load(&stats.coalesced_expired));
        m.promotions.set(load(&stats.promotions));
        m.stoke_harvests.set(load(&stats.stoke_harvests));
        m.stoke_compiles.set(load(&stats.stoke_compiles));
        m.cache_hits.set(cache.hits);
        m.cache_misses.set(cache.misses);
        m.cache_disk_hits.set(cache.disk_hits);
        m.cache_disk_invalid.set(cache.disk_invalid);
        m.cache_evictions.set(cache.evictions);
        m.cache_entries.set(cache.entries);
        m.cache_bytes.set(cache.bytes);
        m.coalesce_inflight.set(coalesce.inflight);
        m.coalesce_waiting.set(coalesce.waiting);
        m.uptime_seconds.set(stats.started.elapsed().as_secs());
    }

    /// Renders this server's families in the exposition format.
    pub fn render(&self) -> String {
        self.registry.render()
    }

    /// The `latency` section of the `stats` response (a JSON object
    /// value): p50/p90/p99/max per stage and per outcome, read from the
    /// same histograms `/metrics` exposes.
    pub fn latency_json(&self) -> String {
        let quantiles = |s: &HistogramSnapshot| {
            format!(
                "{{\"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
                s.count(),
                s.quantile(0.5),
                s.quantile(0.9),
                s.quantile(0.99),
                s.max
            )
        };
        let stages = [
            &self.stage_queue,
            &self.stage_cache,
            &self.stage_coalesce,
            &self.stage_execute,
            &self.stage_total,
        ];
        let mut out = String::from("{\"stages\":{");
        for (i, (name, h)) in STAGES.iter().zip(stages).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", quantiles(&h.snapshot())));
        }
        out.push_str("},\"outcomes\":{");
        for (i, (name, h)) in OUTCOMES.iter().zip(&self.outcomes).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", quantiles(&h.snapshot())));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use denali_trace::json::{self, Json};

    #[test]
    fn latency_json_is_valid_and_covers_every_stage_and_outcome() {
        let metrics = ServeMetrics::new();
        metrics.stage_execute.observe(1000);
        metrics.observe_outcome("ok", false, 1500);
        metrics.observe_outcome("hit", true, 20);
        let v = json::parse(&metrics.latency_json()).unwrap();
        let stages = v.get("stages").unwrap();
        for name in STAGES {
            assert!(stages.get(name).is_some(), "missing stage {name}");
        }
        let outcomes = v.get("outcomes").unwrap();
        for name in OUTCOMES {
            assert!(outcomes.get(name).is_some(), "missing outcome {name}");
        }
        assert_eq!(
            stages
                .get("total")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            outcomes
                .get("coalesced")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(1),
            "coalesced overlays the outcome histogram"
        );
    }

    #[test]
    fn rendered_exposition_passes_the_validator() {
        let metrics = ServeMetrics::new();
        metrics.observe_outcome("ok", false, 12345);
        metrics.stage_queue.observe(7);
        metrics.sync(
            &Stats::default(),
            &CacheSnapshot {
                hits: 1,
                misses: 2,
                disk_hits: 0,
                disk_invalid: 0,
                evictions: 0,
                entries: 1,
                bytes: 100,
            },
            &CoalesceSnapshot {
                inflight: 0,
                waiting: 0,
            },
        );
        let text = metrics.render();
        denali_metrics::validate_exposition(&text).unwrap();
        assert!(text.contains("denali_serve_stage_us_bucket{stage=\"queue\""));
        assert!(text.contains("denali_serve_cache_hits_total 1"));
    }
}
