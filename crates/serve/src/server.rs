//! The server proper: request handling plus the stdio and TCP
//! transports.
//!
//! A [`Server`] owns the shared state (base options, cache, deadline
//! watchdog, stats); transports own the [`Pool`] so that dropping the
//! transport drains admitted requests before the process exits — EOF on
//! stdin is a *graceful* shutdown, not an abort.
//!
//! Request handling is deliberately a pure function from request line
//! to response line ([`Server::handle_line`]): the transports only add
//! admission (the bounded pool) and the wall-clock admission instant
//! that deadlines are measured from. This keeps every protocol and
//! caching property unit-testable without sockets or pipes.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use denali_core::{CompileError, Denali, Options};
use denali_par::CancelToken;
use denali_trace::field;

use crate::cache::Cache;
use crate::deadline::DeadlineWatch;
use crate::pool::Pool;
use crate::protocol::{self, CompileRequest, GmaSummary, Request, RequestId};
use crate::stats::Stats;

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Base pipeline options; per-request overrides are applied on top.
    pub base: Options,
    /// Worker threads (0 = one per available CPU).
    pub workers: usize,
    /// Admission-queue capacity beyond the requests being executed.
    pub queue: usize,
    /// Memory-tier cache budget in bytes.
    pub cache_bytes: usize,
    /// Disk-tier cache directory (persists across restarts).
    pub cache_dir: Option<PathBuf>,
    /// Log one line per request to stderr.
    pub verbose: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            base: Options::default(),
            workers: 0,
            queue: 64,
            cache_bytes: 64 << 20,
            cache_dir: None,
            verbose: false,
        }
    }
}

/// Shared server state; transports hold it in an [`Arc`].
pub struct Server {
    config: ServerConfig,
    cache: Cache,
    watch: DeadlineWatch,
    stats: Stats,
}

impl Server {
    /// Builds the server (creating the cache directory if configured).
    ///
    /// # Errors
    ///
    /// Fails if the cache directory cannot be created.
    pub fn new(config: ServerConfig) -> std::io::Result<Server> {
        let cache = Cache::new(config.cache_bytes, config.cache_dir.clone())?;
        Ok(Server {
            config,
            cache,
            watch: DeadlineWatch::new(),
            stats: Stats::default(),
        })
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The result cache (exposed for tests and benches).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Handles one request line synchronously (admission = now, queue
    /// depth reported as 0). The transports go through [`dispatch`]
    /// instead to get pooled admission; tests and benches use this.
    /// Returns `None` for blank lines, which elicit no response.
    pub fn handle_line(&self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        Stats::bump(&self.stats.requests);
        match protocol::parse_request(line) {
            Err(e) => Some(self.protocol_error(&e.message)),
            Ok(Request::Ping(id)) => Some(pong(&id)),
            Ok(Request::Stats(id)) => Some(self.stats_response(&id, 0)),
            Ok(Request::Compile(req)) => Some(self.handle_compile(&req, Instant::now())),
        }
    }

    fn protocol_error(&self, message: &str) -> String {
        Stats::bump(&self.stats.protocol_errors);
        protocol::render_response(
            &RequestId::Null,
            &protocol::render_error_body("protocol", message, false),
        )
    }

    fn stats_response(&self, id: &RequestId, queue_depth: u64) -> String {
        let body = self.stats.render_body(queue_depth, &self.cache.snapshot());
        protocol::render_response(id, &body)
    }

    /// Compiles one request, measuring its deadline from `admitted`.
    ///
    /// The flow pins the PR's three guarantees:
    /// * **hit == miss**: the cache stores the rendered (deterministic)
    ///   body, keyed by the canonical fingerprint, so a warm hit
    ///   replays the cold compile's bytes.
    /// * **degraded, not dead**: a deadline expiry cancels the search
    ///   mid-probe; the response falls back to the baseline rewrite
    ///   program with `"degraded": true` — and is *never* cached, so a
    ///   later unhurried request gets the real optimum.
    /// * **always an answer**: every outcome, including internal
    ///   errors, renders a well-formed response correlated by id.
    pub fn handle_compile(&self, req: &CompileRequest, admitted: Instant) -> String {
        let started = Instant::now();
        let mut options = self.config.base.clone();
        if let Err(e) = req.options.apply(&mut options) {
            return self.protocol_error(&e.message);
        }
        let cancel = CancelToken::default();
        options.cancel = Some(cancel.clone());
        let denali = Denali::new(options);
        let span = denali
            .tracer()
            .span_fields("serve.request", vec![field("id", req.id.render())]);

        // Arm the deadline before any pipeline work so parse/lower time
        // counts against it too. An already-expired deadline cancels
        // inline — deterministic degradation, no watchdog race.
        let _guard = req.deadline_ms.map(|ms| {
            let at = admitted + Duration::from_millis(ms);
            if at <= Instant::now() {
                cancel.cancel();
            }
            self.watch.arm(at, cancel.clone())
        });

        let prepared = match req.proc.as_deref() {
            None => denali.prepare_source(&req.source),
            Some(name) => match denali_lang::parse_program(&req.source) {
                Ok(program) => denali.prepare_proc(&program, name),
                Err(e) => Err(CompileError {
                    stage: "parse",
                    message: e.to_string(),
                }),
            },
        };
        let prepared = match prepared {
            Ok(p) => p,
            Err(e) => {
                Stats::bump(&self.stats.compile_errors);
                return self.finish(
                    req,
                    started,
                    "error",
                    protocol::render_error_body(e.stage, &e.message, false),
                );
            }
        };
        let fingerprint = denali.fingerprint(&prepared);

        if let Some(body) = self.cache.get(&fingerprint) {
            span.finish();
            Stats::bump(&self.stats.compiles_ok);
            return self.finish(req, started, "hit", body);
        }

        let issue_width = denali.options().machine.issue_width();
        let body = match denali.compile_prepared(&prepared) {
            Ok(result) => {
                let gmas: Vec<GmaSummary> = result
                    .gmas
                    .iter()
                    .map(|c| GmaSummary {
                        name: c.gma.name.clone(),
                        cycles: c.cycles,
                        instructions: c.program.len(),
                        refuted_below: c.refuted_below,
                        listing: c.program.listing(issue_width),
                    })
                    .collect();
                let body = protocol::render_result_body(&fingerprint, false, &gmas);
                self.cache.put(&fingerprint, &body);
                Stats::bump(&self.stats.compiles_ok);
                self.finish(req, started, "ok", body)
            }
            Err(e) if e.is_cancelled() => {
                match degraded_body(&denali, &prepared, &fingerprint) {
                    Ok(body) => {
                        // Never cached: degradation is a property of
                        // this request's deadline, not of the program.
                        Stats::bump(&self.stats.compiles_degraded);
                        self.finish(req, started, "degraded", body)
                    }
                    Err(message) => {
                        Stats::bump(&self.stats.compile_errors);
                        self.finish(
                            req,
                            started,
                            "error",
                            protocol::render_error_body("degraded", &message, false),
                        )
                    }
                }
            }
            Err(e) => {
                Stats::bump(&self.stats.compile_errors);
                self.finish(
                    req,
                    started,
                    "error",
                    protocol::render_error_body(e.stage, &e.message, false),
                )
            }
        };
        body
    }

    /// Renders the final response line, logging it when verbose.
    fn finish(
        &self,
        req: &CompileRequest,
        started: Instant,
        outcome: &str,
        body: String,
    ) -> String {
        if self.config.verbose {
            eprintln!(
                "serve: compile id={} outcome={outcome} ms={:.1}",
                req.id.render(),
                started.elapsed().as_secs_f64() * 1e3
            );
        }
        protocol::render_response(&req.id, &body)
    }
}

/// Compiles every GMA with the baseline rewriter (microseconds, no
/// search) and renders a `degraded: true` body.
fn degraded_body(
    denali: &Denali,
    prepared: &denali_core::Prepared,
    fingerprint: &str,
) -> Result<String, String> {
    let machine = &denali.options().machine;
    let issue_width = machine.issue_width();
    let mut gmas = Vec::with_capacity(prepared.gmas.len());
    for gma in &prepared.gmas {
        let program = denali_baseline::degraded_compile(gma, machine)
            .map_err(|e| format!("baseline fallback failed for {}: {e}", gma.name))?;
        gmas.push(GmaSummary {
            name: gma.name.clone(),
            cycles: program.cycles(),
            instructions: program.len(),
            // The baseline makes no optimality claim.
            refuted_below: false,
            listing: program.listing(issue_width),
        });
    }
    Ok(protocol::render_result_body(fingerprint, true, &gmas))
}

fn pong(id: &RequestId) -> String {
    protocol::render_response(id, "\"status\":\"ok\",\"pong\":true")
}

fn write_line<W: Write>(out: &Mutex<W>, line: &str) {
    let mut out = out.lock().unwrap();
    // A dead transport (client hung up) is not a server error.
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Routes one request line: cheap requests (ping, stats, protocol
/// errors) answer on the reader thread; compiles go through the bounded
/// pool and are shed with a retryable `overload` error when it is full.
fn dispatch<W: Write + Send + 'static>(
    server: &Arc<Server>,
    pool: &Pool,
    line: &str,
    out: &Arc<Mutex<W>>,
) {
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    Stats::bump(&server.stats.requests);
    match protocol::parse_request(line) {
        Err(e) => write_line(out, &server.protocol_error(&e.message)),
        Ok(Request::Ping(id)) => write_line(out, &pong(&id)),
        Ok(Request::Stats(id)) => write_line(out, &server.stats_response(&id, pool.depth())),
        Ok(Request::Compile(req)) => {
            let admitted = Instant::now();
            let id = req.id.clone();
            let server2 = Arc::clone(server);
            let out2 = Arc::clone(out);
            let submitted = pool.try_submit(move || {
                let response = server2.handle_compile(&req, admitted);
                write_line(&out2, &response);
            });
            if submitted.is_err() {
                Stats::bump(&server.stats.overload_rejections);
                write_line(
                    out,
                    &protocol::render_response(
                        &id,
                        &protocol::render_error_body(
                            "overload",
                            "admission queue is full; retry later",
                            true,
                        ),
                    ),
                );
            }
        }
    }
}

/// Serves framed JSONL requests from `reader`, writing responses to
/// `out`. Returns when the reader reaches EOF, after draining every
/// admitted request — the graceful-shutdown path.
///
/// # Errors
///
/// Propagates read failures from the transport.
pub fn serve_lines<R: BufRead, W: Write + Send + 'static>(
    server: &Arc<Server>,
    pool: &Pool,
    reader: R,
    out: &Arc<Mutex<W>>,
) -> std::io::Result<()> {
    for line in reader.lines() {
        dispatch(server, pool, &line?, out);
    }
    Ok(())
}

/// Serves requests on stdin/stdout until EOF, then drains the pool and
/// returns — so `denali serve --stdio < requests.jsonl` emits every
/// response before exiting.
///
/// # Errors
///
/// Propagates stdin read failures.
pub fn serve_stdio(server: &Arc<Server>) -> std::io::Result<()> {
    let workers = denali_par::resolve_threads(server.config.workers);
    let pool = Pool::new(workers, server.config.queue);
    let out = Arc::new(Mutex::new(std::io::stdout()));
    let stdin = std::io::stdin();
    let result = serve_lines(server, &pool, stdin.lock(), &out);
    drop(pool); // join workers: flush in-flight responses before exit
    result
}

/// Binds `addr` and serves each connection on its own reader thread,
/// all sharing one bounded pool (so total compile concurrency is
/// bounded server-wide, not per connection). Runs until the process is
/// terminated.
///
/// # Errors
///
/// Fails if the address cannot be bound or accepting a connection
/// fails.
pub fn serve_tcp(server: &Arc<Server>, addr: &str) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    if server.config.verbose {
        eprintln!("serve: listening on {}", listener.local_addr()?);
    }
    let workers = denali_par::resolve_threads(server.config.workers);
    let pool = Arc::new(Pool::new(workers, server.config.queue));
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        let out = Arc::new(Mutex::new(stream));
        let server = Arc::clone(server);
        let pool = Arc::clone(&pool);
        std::thread::Builder::new()
            .name("serve-conn".to_owned())
            .spawn(move || {
                // A dropped connection mid-read is the client's
                // prerogative; the server keeps serving others.
                let _ = serve_lines(&server, &pool, reader, &out);
            })
            .expect("spawn connection thread");
    }
    Ok(())
}
