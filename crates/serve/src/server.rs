//! The server proper: request handling plus the stdio and TCP
//! transports.
//!
//! A [`Server`] owns the shared state (base options, cache, deadline
//! watchdog, coalescer, stats); transports own the [`Pool`] so that
//! dropping the transport drains admitted requests before the process
//! exits — EOF on stdin is a *graceful* shutdown, not an abort.
//!
//! Request handling is deliberately a pure function from request line
//! to response line ([`Server::handle_line`]): the transports only add
//! admission (the bounded pool), single-flight coalescing, and the
//! wall-clock admission instant that deadlines are measured from. This
//! keeps every protocol and caching property unit-testable without
//! sockets or pipes.
//!
//! ## The pooled compile path
//!
//! [`dispatch`] runs on the reader thread and splits a compile into two
//! halves. **Preparation** (option merge, parse, lower, fingerprint) is
//! cheap and runs inline — it must, because the fingerprint is the
//! coalescing key. **Execution** (the SAT-probe ladder) is expensive
//! and goes through [`Coalescer::join`]:
//!
//! * the **leader** — first request for a fingerprint — occupies a
//!   worker slot via the pool, re-checks the cache (a previous leader
//!   may have finished while it queued), executes, populates the cache
//!   *before* completing the flight, and delivers its body to every
//!   follower;
//! * **followers** — concurrent duplicates — wait on a lightweight
//!   thread that consumes neither a worker nor a queue slot, then
//!   replay the leader's exact body bytes under their own id (counted
//!   as `coalesced` in stats, `coalesced: true` in the trace span).
//!
//! Because the cache is written before the flight is removed from the
//! in-flight map, a duplicate request at any instant either hits the
//! cache, joins the flight, or becomes a fresh leader whose re-check
//! hits the cache — "one pipeline execution per stampede" is an
//! invariant, not a race.

use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use denali_core::{AnytimeSlot, CompileError, Denali, EngineChoice, Options, Prepared};
use denali_par::CancelToken;
use denali_trace::{field, jsonl, Tracer, Value};

use crate::cache::Cache;
use crate::coalesce::{Coalescer, Delivery, Join, LeaderGuard, Wait};
use crate::deadline::{deadline_at, DeadlineWatch};
use crate::flight::FlightRecorder;
use crate::metrics::ServeMetrics;
use crate::pool::{Pool, SubmitError};
use crate::protocol::{self, CompileRequest, GmaSummary, Request, RequestId};
use crate::stats::Stats;

/// A duration as saturating whole microseconds (histogram units).
fn us(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Base pipeline options; per-request overrides are applied on top.
    pub base: Options,
    /// Worker threads (0 = one per available CPU).
    pub workers: usize,
    /// Admission-queue capacity beyond the requests being executed.
    pub queue: usize,
    /// Memory-tier cache budget in bytes.
    pub cache_bytes: usize,
    /// Disk-tier cache directory (persists across restarts).
    pub cache_dir: Option<PathBuf>,
    /// Single-flight coalescing of concurrent identical requests
    /// (default on; `--no-coalesce` turns it off for A/B runs).
    pub coalesce: bool,
    /// Log one line per request to stderr.
    pub verbose: bool,
    /// Flight-recorder ring capacity (finished-request summaries).
    pub flight_capacity: usize,
    /// Slow-request threshold: an execution whose total latency exceeds
    /// this many milliseconds has its full trace spooled to
    /// [`ServerConfig::spool_dir`] (which must also be set).
    pub slow_ms: Option<u64>,
    /// Directory slow-request traces are written to.
    pub spool_dir: Option<PathBuf>,
    /// Deterministic trace sampling: capture the full span tree of
    /// every `N`th execution into its flight-ring entry (0 = off).
    pub trace_sample: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            base: Options::default(),
            workers: 0,
            queue: 64,
            cache_bytes: 64 << 20,
            cache_dir: None,
            coalesce: true,
            verbose: false,
            flight_capacity: 256,
            slow_ms: None,
            spool_dir: None,
            trace_sample: 0,
        }
    }
}

/// Tracks live follower-waiter threads so graceful shutdown can wait
/// for their responses to flush. A counter + condvar instead of join
/// handles: the TCP path runs forever and must not accumulate handles.
#[derive(Default)]
struct FollowerTracker {
    count: Mutex<u64>,
    idle: Condvar,
}

impl FollowerTracker {
    fn enter(&self) {
        *self.count.lock().unwrap() += 1;
    }

    fn exit(&self) {
        let mut count = self.count.lock().unwrap();
        *count -= 1;
        if *count == 0 {
            self.idle.notify_all();
        }
    }

    fn drain(&self) {
        let mut count = self.count.lock().unwrap();
        while *count > 0 {
            count = self.idle.wait(count).unwrap();
        }
    }
}

/// Shared server state; transports hold it in an [`Arc`].
pub struct Server {
    config: ServerConfig,
    cache: Cache,
    watch: DeadlineWatch,
    stats: Stats,
    coalescer: Coalescer,
    tracer: Tracer,
    followers: FollowerTracker,
    metrics: ServeMetrics,
    flight: FlightRecorder,
}

/// A request carried through preparation: the per-request pipeline, the
/// lowered GMAs, and the fingerprint that keys both cache and
/// coalescer. Shared (via [`Arc`]) between the leader's pool job and
/// any follower threads — a promoted follower re-executes from the same
/// preparation instead of re-parsing.
struct PreparedRequest {
    denali: Denali,
    prepared: Prepared,
    fingerprint: String,
}

impl Server {
    /// Builds the server (creating the cache and spool directories if
    /// configured).
    ///
    /// # Errors
    ///
    /// Fails if the cache or spool directory cannot be created.
    pub fn new(config: ServerConfig) -> std::io::Result<Server> {
        let cache = Cache::new(config.cache_bytes, config.cache_dir.clone())?;
        if let Some(dir) = &config.spool_dir {
            std::fs::create_dir_all(dir)?;
        }
        let tracer = Tracer::when(config.base.trace);
        let flight = FlightRecorder::new(
            config.flight_capacity,
            config.slow_ms,
            config.spool_dir.clone(),
            config.trace_sample,
        );
        Ok(Server {
            config,
            cache,
            watch: DeadlineWatch::new(),
            stats: Stats::default(),
            coalescer: Coalescer::new(),
            tracer,
            followers: FollowerTracker::default(),
            metrics: ServeMetrics::new(),
            flight,
        })
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The result cache (exposed for tests and benches).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// The server's metric families (stage/outcome histograms, counter
    /// mirrors).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The flight recorder (recent-request ring, sampling, spooling).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Renders the full `/metrics` exposition: this server's families
    /// (mirrors refreshed at scrape time) followed by the process-wide
    /// [`denali_metrics::global`] families the core pipeline records
    /// into. One scrape, the whole picture.
    pub fn metrics_text(&self) -> String {
        self.metrics.sync(
            &self.stats,
            &self.cache.snapshot(),
            &self.coalescer.snapshot(),
        );
        let mut out = self.metrics.render();
        out.push_str(&denali_metrics::global().render());
        out
    }

    /// The server-level tracer. When the base options enable tracing,
    /// every answered compile appends one flat `serve.request` span
    /// (id, outcome, `coalesced`) here — flat because requests complete
    /// on worker and follower threads, not in a serial call tree. The
    /// records accumulate until read ([`Tracer::take_records`]), so
    /// tracing a long-running server is a debugging mode, not a
    /// production default.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Blocks until every follower-waiter thread has delivered its
    /// response. Graceful shutdown calls this *after* dropping the pool
    /// (leaders complete their flights while the pool drains, which is
    /// what unblocks the followers).
    pub fn drain_followers(&self) {
        self.followers.drain();
    }

    /// Handles one request line synchronously (admission = now, queue
    /// depth reported as 0, no coalescing — there is no concurrency to
    /// coalesce on a single thread). The transports go through
    /// [`dispatch`] instead to get pooled admission; tests and benches
    /// use this. Returns `None` for blank lines, which elicit no
    /// response.
    pub fn handle_line(&self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        Stats::bump(&self.stats.requests);
        match protocol::parse_request(line) {
            Err(e) => Some(self.protocol_error(&e.message)),
            Ok(Request::Ping(id)) => Some(pong(&id)),
            Ok(Request::Stats(id)) => Some(self.stats_response(&id, 0)),
            Ok(Request::Flight(id)) => {
                Some(protocol::render_response(&id, &self.flight.render_body()))
            }
            Ok(Request::Compile(req)) => Some(self.handle_compile(&req, Instant::now())),
        }
    }

    fn protocol_error(&self, message: &str) -> String {
        Stats::bump(&self.stats.protocol_errors);
        protocol::render_response(
            &RequestId::Null,
            &protocol::render_error_body("protocol", message, false),
        )
    }

    fn stats_response(&self, id: &RequestId, queue_depth: u64) -> String {
        let body = self.stats.render_body(
            queue_depth,
            &self.cache.snapshot(),
            &self.coalescer.snapshot(),
            &self.metrics.latency_json(),
        );
        protocol::render_response(id, &body)
    }

    /// Compiles one request synchronously, measuring its deadline from
    /// `admitted` — preparation, cache lookup, and execution in one
    /// call. The pooled path splits the same three steps across
    /// threads; the guarantees are identical:
    /// * **hit == miss**: the cache stores the rendered (deterministic)
    ///   body, keyed by the canonical fingerprint, so a warm hit
    ///   replays the cold compile's bytes.
    /// * **degraded, not dead**: a deadline expiry cancels the search
    ///   mid-probe; the response falls back to the baseline rewrite
    ///   program with `"degraded": true` — and is *never* cached, so a
    ///   later unhurried request gets the real optimum.
    /// * **always an answer**: every outcome, including internal
    ///   errors, renders a well-formed response correlated by id.
    pub fn handle_compile(&self, req: &CompileRequest, admitted: Instant) -> String {
        let ctx = match self.prepare_request(req) {
            Ok(ctx) => ctx,
            Err(response) => return response,
        };
        if let Some(body) = self.timed_cache_get(&ctx.fingerprint) {
            Stats::bump(&self.stats.compiles_ok);
            return self.finish(&req.id, admitted, "hit", false, None, &body);
        }
        let (outcome, body, trace) = self.execute(&req.id, &ctx, req.deadline_ms, admitted);
        self.finish(&req.id, admitted, outcome, false, trace, &body)
    }

    /// A cache lookup timed into the `cache` stage histogram.
    fn timed_cache_get(&self, fingerprint: &str) -> Option<String> {
        let lookup = Instant::now();
        let body = self.cache.get(fingerprint);
        self.metrics.stage_cache.observe(us(lookup.elapsed()));
        body
    }

    /// The cheap, uncancellable half of a compile: option merge, parse,
    /// lower, fingerprint. Runs inline on the caller (for the pooled
    /// path: the reader thread) because the fingerprint is both the
    /// cache key and the coalescing key. On failure the full response
    /// line is returned as `Err` — preparation errors are answered
    /// immediately, never queued.
    fn prepare_request(&self, req: &CompileRequest) -> Result<PreparedRequest, String> {
        let mut options = self.config.base.clone();
        if let Err(e) = req.options.apply(&mut options) {
            return Err(self.protocol_error(&e.message));
        }
        let denali = Denali::new(options);
        let prepared = match req.proc.as_deref() {
            None => denali.prepare_source(&req.source),
            Some(name) => match denali_lang::parse_program(&req.source) {
                Ok(program) => denali.prepare_proc(&program, name),
                Err(e) => Err(CompileError {
                    stage: "parse",
                    message: e.to_string(),
                }),
            },
        };
        match prepared {
            Ok(prepared) => {
                let fingerprint = denali.fingerprint(&prepared);
                Ok(PreparedRequest {
                    denali,
                    prepared,
                    fingerprint,
                })
            }
            Err(e) => {
                Stats::bump(&self.stats.compile_errors);
                Err(self.finish(
                    &req.id,
                    Instant::now(),
                    "error",
                    false,
                    None,
                    &protocol::render_error_body(e.stage, &e.message, false),
                ))
            }
        }
    }

    /// The expensive half: runs the pipeline under a deadline-armed
    /// cancel token and renders the outcome body. Successful bodies are
    /// written to the cache *here*, before any flight completion, which
    /// is what makes the stampede invariant airtight. Returns the
    /// outcome tag (`ok` / `degraded` / `error`), the body, and — when
    /// this execution was trace-sampled — the captured trace JSONL.
    fn execute(
        &self,
        id: &RequestId,
        ctx: &PreparedRequest,
        deadline_ms: Option<u64>,
        admitted: Instant,
    ) -> (&'static str, String, Option<String>) {
        Stats::bump(&self.stats.executions);
        let exec_started = Instant::now();
        // Attach a private capture tracer when this execution is
        // sampled, or whenever slow-spooling is armed (the keep/discard
        // decision is retroactive — see [`FlightRecorder`]). Capture
        // only records; the compiled output is byte-identical with or
        // without it, which the determinism tests pin.
        let sampled = self.flight.sample_hit();
        let capture = (sampled || self.flight.spool_armed()).then(Tracer::new);
        let cancel = CancelToken::default();
        let mut denali = ctx.denali.with_cancel(cancel.clone());
        if let Some(tracer) = &capture {
            denali = denali.with_tracer(tracer.clone());
        }
        // Under `engine: auto`, install an anytime slot: the stochastic
        // prepass publishes verified best-so-far candidates into it, so
        // a deadline expiry can harvest a real answer instead of
        // degrading to the baseline.
        let anytime = (denali.options().engine == EngineChoice::Auto).then(AnytimeSlot::new);
        if let Some(slot) = &anytime {
            denali = denali.with_anytime(slot.clone());
        }
        // Arm the deadline, measured from admission so queue time counts
        // against it. An already-expired deadline cancels inline —
        // deterministic degradation, no watchdog race. A deadline too
        // far out to represent is no deadline at all (`deadline_at`),
        // not a panic on the worker.
        let _guard = deadline_ms.and_then(|ms| {
            let at = deadline_at(admitted, ms)?;
            if at <= Instant::now() {
                cancel.cancel();
            }
            Some(self.watch.arm(at, cancel.clone()))
        });

        let issue_width = denali.options().machine.issue_width();
        let (outcome, body) = match denali.compile_prepared(&ctx.prepared) {
            Ok(result) => {
                for stats in result.gmas.iter().flat_map(|c| &c.probes) {
                    if let Some(winner) = stats.winner {
                        Stats::bump(&self.stats.portfolio_races);
                        if winner != 0 {
                            Stats::bump(&self.stats.portfolio_alt_wins);
                        }
                    }
                }
                for mem in result.gmas.iter().map(|c| c.egraph_memory) {
                    self.stats
                        .egraph_nodes
                        .fetch_add(mem.nodes, std::sync::atomic::Ordering::Relaxed);
                    self.stats
                        .egraph_bytes
                        .fetch_add(mem.total_bytes, std::sync::atomic::Ordering::Relaxed);
                }
                let gmas: Vec<GmaSummary> = result
                    .gmas
                    .iter()
                    .map(|c| GmaSummary {
                        name: c.gma.name.clone(),
                        cycles: c.cycles,
                        instructions: c.program.len(),
                        refuted_below: c.refuted_below,
                        listing: c.program.listing(issue_width),
                    })
                    .collect();
                let engine = if result
                    .gmas
                    .iter()
                    .any(|c| c.engine == EngineChoice::Stochastic)
                {
                    Stats::bump(&self.stats.stoke_compiles);
                    "stochastic"
                } else {
                    "sat"
                };
                let body = protocol::render_result_body(&ctx.fingerprint, false, engine, &gmas);
                self.cache.put(&ctx.fingerprint, &body);
                Stats::bump(&self.stats.compiles_ok);
                ("ok", body)
            }
            Err(e) if e.is_cancelled() => {
                match fallback_body(&denali, &ctx.prepared, &ctx.fingerprint, anytime.as_ref()) {
                    // Never cached (either arm): the answer depends on
                    // when this request's deadline fired, not on the
                    // program alone.
                    Ok((body, true)) => {
                        Stats::bump(&self.stats.stoke_harvests);
                        // A harvest is a stochastic-answered compile,
                        // so it counts under both stoke gauges.
                        Stats::bump(&self.stats.stoke_compiles);
                        Stats::bump(&self.stats.compiles_ok);
                        ("harvested", body)
                    }
                    Ok((body, false)) => {
                        Stats::bump(&self.stats.compiles_degraded);
                        ("degraded", body)
                    }
                    Err(message) => {
                        Stats::bump(&self.stats.compile_errors);
                        (
                            "error",
                            protocol::render_error_body("degraded", &message, false),
                        )
                    }
                }
            }
            Err(e) => {
                Stats::bump(&self.stats.compile_errors);
                (
                    "error",
                    protocol::render_error_body(e.stage, &e.message, false),
                )
            }
        };
        self.metrics
            .stage_execute
            .observe(us(exec_started.elapsed()));
        let trace =
            capture.and_then(|tracer| self.capture_trace(&tracer, id, outcome, admitted, sampled));
        (outcome, body, trace)
    }

    /// Seals a capture tracer into trace JSONL: appends the enclosing
    /// `serve.request` span, renders the records, spools the text when
    /// the request crossed the slow threshold, and returns it when the
    /// execution was sampled (so it rides in the flight-ring entry).
    fn capture_trace(
        &self,
        tracer: &Tracer,
        id: &RequestId,
        outcome: &str,
        admitted: Instant,
        sampled: bool,
    ) -> Option<String> {
        let total = admitted.elapsed();
        tracer.complete_span(
            "serve.request",
            None,
            0.0,
            total.as_secs_f64() * 1e3,
            vec![
                field("id", id.render()),
                field("outcome", outcome.to_owned()),
                field("coalesced", false),
            ],
        );
        let records = tracer.take_records();
        let text = jsonl::to_string(
            &[("source", Value::Str("denali-serve".to_owned()))],
            &records,
        );
        if self.flight.is_slow(us(total)) {
            match self.flight.spool(&text) {
                Ok(path) => {
                    if self.config.verbose {
                        eprintln!("serve: slow request spooled to {}", path.display());
                    }
                }
                // A full disk must not fail a request that was merely
                // slow; the trace is lost, the response is not.
                Err(e) => eprintln!("serve: failed to spool slow-request trace: {e}"),
            }
        }
        sampled.then_some(text)
    }

    /// Renders the final response line: records the total/outcome
    /// latency histograms and the flight-ring entry (with the sampled
    /// `trace`, if any), logs when verbose, and appends the
    /// `serve.request` span to the server tracer.
    fn finish(
        &self,
        id: &RequestId,
        started: Instant,
        outcome: &str,
        coalesced: bool,
        trace: Option<String>,
        body: &str,
    ) -> String {
        let total = started.elapsed();
        let ms = total.as_secs_f64() * 1e3;
        self.metrics.observe_outcome(outcome, coalesced, us(total));
        self.flight
            .record(id.render(), outcome, coalesced, us(total), trace);
        if self.config.verbose {
            eprintln!(
                "serve: compile id={} outcome={outcome} coalesced={coalesced} ms={ms:.1}",
                id.render(),
            );
        }
        self.tracer.complete_span(
            "serve.request",
            None,
            ms,
            ms,
            vec![
                field("id", id.render()),
                field("outcome", outcome.to_owned()),
                field("coalesced", coalesced),
            ],
        );
        protocol::render_response(id, body)
    }
}

/// Renders the deadline-expiry body. Each GMA takes its simulator-
/// verified anytime candidate when the slot has one (published by the
/// stochastic prepass before the deadline hit) and the baseline rewrite
/// otherwise. When *every* GMA was harvested the body is a full
/// `degraded: false` answer tagged `engine: "stochastic"` — the
/// programs are verified and strictly cheaper than the baseline, so
/// nothing about it is degraded; otherwise it is the classic
/// `degraded: true` baseline body. Returns the body and whether it was
/// fully harvested.
fn fallback_body(
    denali: &Denali,
    prepared: &denali_core::Prepared,
    fingerprint: &str,
    anytime: Option<&AnytimeSlot>,
) -> Result<(String, bool), String> {
    let machine = &denali.options().machine;
    let issue_width = machine.issue_width();
    let mut gmas = Vec::with_capacity(prepared.gmas.len());
    let mut harvested = 0;
    for gma in &prepared.gmas {
        if let Some(best) = anytime.and_then(|slot| slot.get(&gma.name)) {
            harvested += 1;
            gmas.push(GmaSummary {
                name: gma.name.clone(),
                cycles: best.cycles,
                instructions: best.program.len(),
                // Verified, but no optimality certificate.
                refuted_below: false,
                listing: best.program.listing(issue_width),
            });
            continue;
        }
        let program = denali_baseline::degraded_compile(gma, machine)
            .map_err(|e| format!("baseline fallback failed for {}: {e}", gma.name))?;
        gmas.push(GmaSummary {
            name: gma.name.clone(),
            cycles: program.cycles(),
            instructions: program.len(),
            // The baseline makes no optimality claim.
            refuted_below: false,
            listing: program.listing(issue_width),
        });
    }
    let full = harvested == prepared.gmas.len() && harvested > 0;
    let engine = if full { "stochastic" } else { "baseline" };
    Ok((
        protocol::render_result_body(fingerprint, !full, engine, &gmas),
        full,
    ))
}

/// Compiles every GMA with the baseline rewriter (microseconds, no
/// search) and renders a `degraded: true` body — the no-anytime-slot
/// fallback used by expired coalesced followers.
fn degraded_body(
    denali: &Denali,
    prepared: &denali_core::Prepared,
    fingerprint: &str,
) -> Result<String, String> {
    fallback_body(denali, prepared, fingerprint, None).map(|(body, _)| body)
}

fn pong(id: &RequestId) -> String {
    protocol::render_response(id, "\"status\":\"ok\",\"pong\":true")
}

fn write_line<W: Write>(out: &Mutex<W>, line: &str) {
    let mut out = out.lock().unwrap();
    // A dead transport (client hung up) is not a server error.
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Runs a leader's half of a flight on the current thread (a pool
/// worker, or a promoted follower's waiter thread): cache re-check,
/// execution, response, flight completion — with a panic boundary so a
/// pipeline bug answers the request and promotes a follower instead of
/// hanging the stampede.
fn run_leader<W: Write + Send + 'static>(
    server: &Arc<Server>,
    guard: LeaderGuard,
    req: &CompileRequest,
    ctx: &Arc<PreparedRequest>,
    admitted: Instant,
    out: &Arc<Mutex<W>>,
) {
    // Re-check the cache: a previous leader for this fingerprint may
    // have completed (and populated the cache) while this one sat in
    // the queue. This is the only cache lookup on the pooled path, so
    // each compile still counts exactly one hit or one miss.
    // Throughout: the flight is completed (or orphaned) *before* the
    // leader's own response is written. A lock-step client that reads
    // the response and immediately resends the same request must
    // deterministically hit the cache as a fresh leader, not race into
    // following a flight that is already answered.
    // The queue stage: time from admission to the leader starting.
    // (Promoted followers pass through here too — their wait for the
    // vanished leader *was* their queue.)
    server.metrics.stage_queue.observe(us(admitted.elapsed()));
    if let Some(body) = server.timed_cache_get(&ctx.fingerprint) {
        Stats::bump(&server.stats.compiles_ok);
        let line = server.finish(&req.id, admitted, "hit", false, None, &body);
        guard.complete(Delivery {
            outcome: "ok",
            body,
        });
        write_line(out, &line);
        return;
    }
    match catch_unwind(AssertUnwindSafe(|| {
        server.execute(&req.id, ctx, req.deadline_ms, admitted)
    })) {
        Ok((outcome, body, trace)) => {
            let line = server.finish(&req.id, admitted, outcome, false, trace, &body);
            guard.complete(Delivery { outcome, body });
            write_line(out, &line);
        }
        Err(_) => {
            // The pipeline panicked. Answer this request with an
            // internal error, then *orphan* the flight (drop without
            // complete) so one waiting follower is promoted and
            // re-executes — its demand is real and the panic may have
            // been stateful. Each promoted leader that panics again
            // answers its own request the same way, so the chain
            // terminates with every request answered.
            Stats::bump(&server.stats.worker_panics);
            Stats::bump(&server.stats.compile_errors);
            let body = protocol::render_error_body(
                "internal",
                "compile job panicked; see server log",
                false,
            );
            let line = server.finish(&req.id, admitted, "panic", false, None, &body);
            drop(guard);
            write_line(out, &line);
        }
    }
}

/// Submits a leader to the pool. The [`LeaderGuard`] travels in a slot
/// shared with the job so that a failed submit can take it back and
/// complete the flight with the shed outcome — otherwise dropping the
/// rejected job would orphan the flight and promote a follower into
/// executing *outside* the pool's bounds, defeating admission control.
fn submit_leader<W: Write + Send + 'static>(
    server: &Arc<Server>,
    pool: &Pool,
    guard: LeaderGuard,
    req: Box<CompileRequest>,
    ctx: Arc<PreparedRequest>,
    admitted: Instant,
    out: &Arc<Mutex<W>>,
) {
    let slot = Arc::new(Mutex::new(Some(guard)));
    let job_slot = Arc::clone(&slot);
    let id = req.id.clone();
    let server2 = Arc::clone(server);
    let out2 = Arc::clone(out);
    let submitted = pool.try_submit(move || {
        let Some(guard) = job_slot.lock().unwrap().take() else {
            return; // dispatch reclaimed the guard (submit raced shed)
        };
        run_leader(&server2, guard, &req, &ctx, admitted, &out2);
    });
    if let Err(e) = submitted {
        let (outcome, counter, stage, message, retryable) = match e {
            SubmitError::Full => (
                "overload",
                &server.stats.overload_rejections,
                "overload",
                "admission queue is full; retry later",
                true,
            ),
            SubmitError::Closed => (
                "shutdown",
                &server.stats.shutdown_rejections,
                "shutting_down",
                "server is shutting down; do not retry",
                false,
            ),
        };
        Stats::bump(counter);
        let body = protocol::render_error_body(stage, message, retryable);
        let line = server.finish(&id, admitted, outcome, false, None, &body);
        // Deliver the same outcome to any followers already subscribed
        // (their requests were duplicates of one the server just shed)
        // before answering the leader, so a lock-step client never
        // races into a flight that is already dead.
        if let Some(guard) = slot.lock().unwrap().take() {
            guard.complete(Delivery { outcome, body });
        }
        write_line(out, &line);
    }
}

/// Spawns the waiter thread for one follower. Followers deliberately do
/// not occupy a worker or a queue slot — the whole point of coalescing
/// is that N duplicates cost one worker — so their (cheap, blocked)
/// waits live on dedicated threads tracked for graceful shutdown.
fn spawn_follower<W: Write + Send + 'static>(
    server: &Arc<Server>,
    handle: crate::coalesce::FollowerHandle,
    req: Box<CompileRequest>,
    ctx: Arc<PreparedRequest>,
    admitted: Instant,
    out: &Arc<Mutex<W>>,
) {
    server.followers.enter();
    let server = Arc::clone(server);
    let out = Arc::clone(out);
    std::thread::Builder::new()
        .name("serve-follower".to_owned())
        .spawn(move || {
            follower_wait(&server, handle, &req, &ctx, admitted, &out);
            server.followers.exit();
        })
        .expect("spawn follower thread");
}

/// A follower's life: wait for the leader's delivery (bounded by the
/// follower's *own* deadline), then answer under its own id.
fn follower_wait<W: Write + Send + 'static>(
    server: &Arc<Server>,
    handle: crate::coalesce::FollowerHandle,
    req: &CompileRequest,
    ctx: &Arc<PreparedRequest>,
    admitted: Instant,
    out: &Arc<Mutex<W>>,
) {
    let deadline = req.deadline_ms.and_then(|ms| deadline_at(admitted, ms));
    let waited = Instant::now();
    let outcome = handle.wait(deadline);
    // The coalesce stage: how long this follower waited on its leader
    // (recorded on every arm — delivery, expiry, and promotion).
    server.metrics.stage_coalesce.observe(us(waited.elapsed()));
    match outcome {
        Wait::Delivered(d) => {
            Stats::bump(&server.stats.coalesced);
            let counter = match d.outcome {
                "ok" | "harvested" => &server.stats.compiles_ok,
                "degraded" => &server.stats.compiles_degraded,
                "overload" => &server.stats.overload_rejections,
                "shutdown" => &server.stats.shutdown_rejections,
                _ => &server.stats.compile_errors,
            };
            Stats::bump(counter);
            let line = server.finish(&req.id, admitted, d.outcome, true, None, &d.body);
            write_line(out, &line);
        }
        Wait::Expired => {
            // The follower's deadline passed while its leader was still
            // compiling. Pinned semantics: it gets its own degraded
            // answer now, exactly as if it had run and been cancelled —
            // waiting past the deadline for a maybe-soon leader would
            // violate the one guarantee deadlines make.
            Stats::bump(&server.stats.coalesced_expired);
            match degraded_body(&ctx.denali, &ctx.prepared, &ctx.fingerprint) {
                Ok(body) => {
                    Stats::bump(&server.stats.compiles_degraded);
                    let line = server.finish(&req.id, admitted, "degraded", true, None, &body);
                    write_line(out, &line);
                }
                Err(message) => {
                    Stats::bump(&server.stats.compile_errors);
                    let body = protocol::render_error_body("degraded", &message, false);
                    let line = server.finish(&req.id, admitted, "error", true, None, &body);
                    write_line(out, &line);
                }
            }
        }
        Wait::Promoted(guard) => {
            // The leader vanished without an outcome. This follower
            // inherits the flight and executes on its waiter thread —
            // the leader's worker slot is already gone (unwound), so
            // this does not exceed the pool's concurrency by more than
            // the vanished leader already freed.
            Stats::bump(&server.stats.promotions);
            run_leader(server, guard, req, ctx, admitted, out);
        }
    }
}

/// Routes one request line: cheap requests (ping, stats, protocol and
/// preparation errors) answer on the reader thread; compiles join the
/// single-flight table — leaders go through the bounded pool (shed with
/// a retryable `overload` error when it is full, a non-retryable
/// `shutting_down` error when it is closed), followers wait for their
/// leader without consuming pool capacity.
fn dispatch<W: Write + Send + 'static>(
    server: &Arc<Server>,
    pool: &Pool,
    line: &str,
    out: &Arc<Mutex<W>>,
) {
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    Stats::bump(&server.stats.requests);
    match protocol::parse_request(line) {
        Err(e) => write_line(out, &server.protocol_error(&e.message)),
        Ok(Request::Ping(id)) => write_line(out, &pong(&id)),
        Ok(Request::Stats(id)) => write_line(out, &server.stats_response(&id, pool.depth())),
        Ok(Request::Flight(id)) => write_line(
            out,
            &protocol::render_response(&id, &server.flight.render_body()),
        ),
        Ok(Request::Compile(req)) => {
            let admitted = Instant::now();
            let ctx = match server.prepare_request(&req) {
                Ok(ctx) => Arc::new(ctx),
                Err(response) => {
                    write_line(out, &response);
                    return;
                }
            };
            if server.config.coalesce {
                match server.coalescer.join(&ctx.fingerprint) {
                    Join::Leader(guard) => {
                        submit_leader(server, pool, guard, req, ctx, admitted, out);
                    }
                    Join::Follower(handle) => {
                        spawn_follower(server, handle, req, ctx, admitted, out);
                    }
                }
            } else {
                let id = req.id.clone();
                let server2 = Arc::clone(server);
                let out2 = Arc::clone(out);
                let submitted = pool.try_submit(move || {
                    server2.metrics.stage_queue.observe(us(admitted.elapsed()));
                    let line = if let Some(body) = server2.timed_cache_get(&ctx.fingerprint) {
                        Stats::bump(&server2.stats.compiles_ok);
                        server2.finish(&req.id, admitted, "hit", false, None, &body)
                    } else {
                        let (outcome, body, trace) =
                            server2.execute(&req.id, &ctx, req.deadline_ms, admitted);
                        server2.finish(&req.id, admitted, outcome, false, trace, &body)
                    };
                    write_line(&out2, &line);
                });
                if let Err(e) = submitted {
                    let (counter, stage, message, retryable) = match e {
                        SubmitError::Full => (
                            &server.stats.overload_rejections,
                            "overload",
                            "admission queue is full; retry later",
                            true,
                        ),
                        SubmitError::Closed => (
                            &server.stats.shutdown_rejections,
                            "shutting_down",
                            "server is shutting down; do not retry",
                            false,
                        ),
                    };
                    Stats::bump(counter);
                    write_line(
                        out,
                        &protocol::render_response(
                            &id,
                            &protocol::render_error_body(stage, message, retryable),
                        ),
                    );
                }
            }
        }
    }
}

/// Serves framed JSONL requests from `reader`, writing responses to
/// `out`. Returns when the reader reaches EOF, after draining every
/// admitted request — the graceful-shutdown path.
///
/// # Errors
///
/// Propagates read failures from the transport.
pub fn serve_lines<R: BufRead, W: Write + Send + 'static>(
    server: &Arc<Server>,
    pool: &Pool,
    reader: R,
    out: &Arc<Mutex<W>>,
) -> std::io::Result<()> {
    for line in reader.lines() {
        dispatch(server, pool, &line?, out);
    }
    Ok(())
}

/// Serves requests on stdin/stdout until EOF, then drains the pool and
/// the follower waiters, and returns — so `denali serve --stdio <
/// requests.jsonl` emits every response before exiting.
///
/// # Errors
///
/// Propagates stdin read failures.
pub fn serve_stdio(server: &Arc<Server>) -> std::io::Result<()> {
    let workers = denali_par::resolve_threads(server.config.workers);
    let pool = Pool::with_depth_gauge(
        workers,
        server.config.queue,
        Some(Arc::clone(&server.metrics.queue_depth)),
    );
    let out = Arc::new(Mutex::new(std::io::stdout()));
    let stdin = std::io::stdin();
    let result = serve_lines(server, &pool, stdin.lock(), &out);
    // Join workers first: leaders complete their flights as the pool
    // drains, which is what unblocks the followers being waited on
    // next. The opposite order would deadlock on any in-flight leader.
    drop(pool);
    server.drain_followers();
    result
}

/// Serves each accepted connection on its own reader thread, all
/// sharing one bounded pool (so total compile concurrency is bounded
/// server-wide, not per connection) and one coalescer (duplicates
/// coalesce *across* connections). Runs until the process is
/// terminated.
///
/// # Errors
///
/// Fails if accepting a connection fails.
pub fn serve_listener(
    server: &Arc<Server>,
    listener: &std::net::TcpListener,
) -> std::io::Result<()> {
    let workers = denali_par::resolve_threads(server.config.workers);
    let pool = Arc::new(Pool::with_depth_gauge(
        workers,
        server.config.queue,
        Some(Arc::clone(&server.metrics.queue_depth)),
    ));
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        let out = Arc::new(Mutex::new(stream));
        let server = Arc::clone(server);
        let pool = Arc::clone(&pool);
        std::thread::Builder::new()
            .name("serve-conn".to_owned())
            .spawn(move || {
                // A dropped connection mid-read is the client's
                // prerogative; the server keeps serving others.
                let _ = serve_lines(&server, &pool, reader, &out);
            })
            .expect("spawn connection thread");
    }
    Ok(())
}

/// Binds `addr` and serves connections via [`serve_listener`]. Runs
/// until the process is terminated.
///
/// # Errors
///
/// Fails if the address cannot be bound or accepting a connection
/// fails.
pub fn serve_tcp(server: &Arc<Server>, addr: &str) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    if server.config.verbose {
        eprintln!("serve: listening on {}", listener.local_addr()?);
    }
    serve_listener(server, &listener)
}
