//! The flight recorder: an always-on bounded ring of per-request
//! summaries, deterministic trace sampling, and slow-request spooling.
//!
//! Three mechanisms, one struct:
//!
//! * **Ring** — every finished request pushes one [`FlightEntry`]
//!   (sequence number, id, outcome, total latency) into a bounded
//!   deque; the oldest entry falls off. A `flight` protocol request
//!   reads the ring back, so "what just happened on this server" is
//!   answerable without logs or tracing having been enabled.
//! * **Sampling** — `--trace-sample N` attaches a private capture
//!   tracer to every Nth *execution*, counted deterministically
//!   (an atomic counter, no RNG, so a replayed request stream samples
//!   the same requests). The sampled request's full span tree rides in
//!   its ring entry as rendered trace JSONL.
//! * **Slow spool** — `--slow-ms T` (with `--spool-dir`) arms capture
//!   tracing on *every* execution; if the request's total latency ends
//!   up over `T`, its complete span tree is spooled to
//!   `spool-dir/slow-<seq>.jsonl` (readable by `denali trace-report`).
//!   The decision is retroactive — capture is cheap, the write happens
//!   only for the requests that actually blew the budget — so the trace
//!   of a latency spike exists even though nobody enabled `--trace`
//!   before the spike.
//!
//! None of this perturbs results: capture tracers only record, and the
//! ring/spool never feed back into compilation.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use denali_trace::json;

/// One finished request, as remembered by the ring.
#[derive(Clone, Debug)]
pub struct FlightEntry {
    /// Monotone per-server sequence number (1-based).
    pub seq: u64,
    /// The request's id, rendered exactly as in its response.
    pub id: String,
    /// Terminal outcome tag (`ok`, `hit`, `degraded`, `error`, ...).
    pub outcome: String,
    /// Whether the request was answered by replaying a leader's result.
    pub coalesced: bool,
    /// Admission-to-response latency in microseconds.
    pub total_us: u64,
    /// Rendered trace JSONL when this request was sampled.
    pub trace: Option<String>,
}

/// The recorder; one per server, shared by reference.
pub struct FlightRecorder {
    capacity: usize,
    slow_us: Option<u64>,
    spool_dir: Option<PathBuf>,
    sample_every: u64,
    ring: Mutex<VecDeque<FlightEntry>>,
    next_seq: AtomicU64,
    sample_seq: AtomicU64,
    spool_seq: AtomicU64,
    spooled: AtomicU64,
}

impl FlightRecorder {
    /// Builds a recorder. `slow_ms` and `spool_dir` arm slow-request
    /// spooling (both are required — a threshold with nowhere to write
    /// is rejected by the CLI); `sample_every` of 0 disables sampling.
    pub fn new(
        capacity: usize,
        slow_ms: Option<u64>,
        spool_dir: Option<PathBuf>,
        sample_every: u64,
    ) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            slow_us: slow_ms.map(|ms| ms.saturating_mul(1000)),
            spool_dir,
            sample_every,
            ring: Mutex::new(VecDeque::new()),
            next_seq: AtomicU64::new(0),
            sample_seq: AtomicU64::new(0),
            spool_seq: AtomicU64::new(0),
            spooled: AtomicU64::new(0),
        }
    }

    /// Deterministic 1-in-N sampling: true on the first execution and
    /// every `sample_every`th after it. Call exactly once per
    /// execution — the counter *is* the sampling state.
    pub fn sample_hit(&self) -> bool {
        if self.sample_every == 0 {
            return false;
        }
        self.sample_seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.sample_every)
    }

    /// True when slow-request spooling is configured (capture tracing
    /// must then run on every execution).
    pub fn spool_armed(&self) -> bool {
        self.slow_us.is_some() && self.spool_dir.is_some()
    }

    /// True when a request of this latency should be spooled.
    pub fn is_slow(&self, total_us: u64) -> bool {
        self.spool_armed() && self.slow_us.is_some_and(|t| total_us >= t)
    }

    /// Writes a captured trace to `spool-dir/slow-<n>.jsonl`.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error; the caller logs it (a full disk
    /// must not fail the request that was merely slow).
    pub fn spool(&self, trace_jsonl: &str) -> std::io::Result<PathBuf> {
        let dir = self.spool_dir.as_ref().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no spool directory")
        })?;
        let n = self.spool_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let path = dir.join(format!("slow-{n}.jsonl"));
        std::fs::write(&path, trace_jsonl)?;
        self.spooled.fetch_add(1, Ordering::Relaxed);
        Ok(path)
    }

    /// Traces spooled so far.
    pub fn spooled(&self) -> u64 {
        self.spooled.load(Ordering::Relaxed)
    }

    /// Pushes one finished request, evicting the oldest entry at
    /// capacity. Returns the entry's sequence number.
    pub fn record(
        &self,
        id: String,
        outcome: &str,
        coalesced: bool,
        total_us: u64,
        trace: Option<String>,
    ) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(FlightEntry {
            seq,
            id,
            outcome: outcome.to_owned(),
            coalesced,
            total_us,
            trace,
        });
        seq
    }

    /// The ring's current contents, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Renders the `flight` response body: the ring, oldest first, each
    /// entry carrying its sampled trace (as a JSON string of trace
    /// JSONL) or `null`.
    pub fn render_body(&self) -> String {
        let ring = self.ring.lock().unwrap();
        let mut out = String::from("\"status\":\"ok\",\"flight\":[");
        for (i, entry) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"id\":{},\"outcome\":\"{}\",\"coalesced\":{},\"total_us\":{},\"trace\":",
                entry.seq, entry.id, entry.outcome, entry.coalesced, entry.total_us
            ));
            match &entry.trace {
                Some(trace) => json::write_str(&mut out, trace),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use denali_trace::json::Json;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let flight = FlightRecorder::new(3, None, None, 0);
        for i in 0..5u64 {
            flight.record(i.to_string(), "ok", false, i * 10, None);
        }
        let entries = flight.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "oldest entries evicted first"
        );
    }

    #[test]
    fn sampling_is_deterministic_one_in_n() {
        let flight = FlightRecorder::new(8, None, None, 3);
        let hits: Vec<bool> = (0..9).map(|_| flight.sample_hit()).collect();
        assert_eq!(
            hits,
            vec![true, false, false, true, false, false, true, false, false]
        );
        let off = FlightRecorder::new(8, None, None, 0);
        assert!(!off.sample_hit());
    }

    #[test]
    fn slow_threshold_requires_spool_dir() {
        let no_dir = FlightRecorder::new(8, Some(5), None, 0);
        assert!(!no_dir.spool_armed());
        let armed = FlightRecorder::new(8, Some(5), Some(std::env::temp_dir()), 0);
        assert!(armed.spool_armed());
        assert!(armed.is_slow(5_000));
        assert!(!armed.is_slow(4_999));
    }

    #[test]
    fn flight_body_is_valid_json_with_traces() {
        let flight = FlightRecorder::new(8, None, None, 0);
        flight.record("7".to_owned(), "ok", false, 1234, None);
        flight.record(
            "\"r\\\"2\"".to_owned(), // a rendered string id, quotes included
            "hit",
            true,
            5,
            Some("{\"type\":\"meta\"}\n".to_owned()),
        );
        let line = format!("{{{}}}", flight.render_body());
        let v = denali_trace::json::parse(&line).unwrap();
        let entries = v.get("flight").and_then(Json::as_arr).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(entries[0].get("trace"), Some(&Json::Null));
        assert_eq!(entries[1].get("id").and_then(Json::as_str), Some("r\"2"));
        assert_eq!(
            entries[1].get("trace").and_then(Json::as_str),
            Some("{\"type\":\"meta\"}\n")
        );
        assert_eq!(
            entries[1].get("coalesced").and_then(Json::as_bool),
            Some(true)
        );
    }
}
