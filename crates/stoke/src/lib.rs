//! Stochastic (MCMC) superoptimization: Denali's second engine.
//!
//! The SAT search is provably optimal but its CNF blows up on large
//! GMAs. Following "Stochastic Superoptimization" (Schkufza, Sharma &
//! Aiken), this crate runs a Metropolis–Hastings chain over *sketches*
//! — straight-line dataflow programs in single-assignment cell form —
//! scoring each proposal by correctness on test vectors plus a
//! schedule-length/latency cost, and keeping the best *verified*
//! candidate seen so far as an anytime answer.
//!
//! Determinism contract: a chain is a pure function of
//! `(machine, sketch, rules, config.seed)`. All randomness flows
//! through one [`denali_prng::Rng`] (SplitMix64), the chain never
//! consults wall-clock time or thread identity, and proposals are
//! evaluated single-threaded, so fixed-seed runs are byte-identical
//! across repetitions and `DENALI_THREADS` settings.
//!
//! Candidates that beat the incumbent are never trusted on the chain's
//! own test vectors alone: they must pass [`denali_arch::validate`] and
//! a [`denali_arch::Simulator`] run on fresh oracle-generated vectors
//! (counterexamples are *widened* into the test set) before they are
//! published through the anytime callback.

use std::sync::OnceLock;
use std::time::Instant;

use denali_arch::{validate, Instr, Machine, Operand, Program, Reg, Simulator, Unit};
use denali_metrics::{Counter, Gauge, Histogram};
use denali_par::CancelToken;
use denali_prng::Rng;
use denali_term::{ops, Symbol};
use denali_trace::{field, Tracer};

/// A value reference inside a [`Sketch`]: a procedure input, the result
/// of an earlier cell, or an immediate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValRef {
    /// The i-th procedure input.
    Input(usize),
    /// The result of cell `i` (always an earlier cell).
    Cell(usize),
    /// A literal word.
    Imm(u64),
}

/// One cell of a sketch: an opcode applied to value references.
///
/// Two opcodes are special: `mov` is a one-argument passthrough (the
/// "deleted instruction" encoding — mov cells are resolved away and
/// never emitted), and `ldiq` materializes its single immediate
/// argument into a register.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cell {
    /// Opcode (an instruction symbol of the machine, or `mov`).
    pub op: Symbol,
    /// Arguments; every [`ValRef::Cell`] points strictly earlier.
    pub args: Vec<ValRef>,
}

/// A rewrite-to-equivalent move mined from the saturated e-graph:
/// "cell `cell` may instead compute `op(args)`" — the e-graph proved
/// the two denotations equal, so installing the rule preserves
/// semantics (and the test vectors re-check it anyway).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EquivRule {
    /// Index of the cell the rule may replace.
    pub cell: usize,
    /// Replacement opcode.
    pub op: Symbol,
    /// Replacement arguments (all strictly earlier than `cell`).
    pub args: Vec<ValRef>,
}

/// A straight-line dataflow program in single-assignment cell form —
/// the state space the Metropolis chain walks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sketch {
    /// Procedure inputs (name, entry register), in program order.
    pub inputs: Vec<(Symbol, Reg)>,
    /// Cells in dependency order.
    pub cells: Vec<Cell>,
    /// Output name → value reference.
    pub outputs: Vec<(Symbol, ValRef)>,
    /// Procedure name (carried into emitted programs).
    pub name: String,
}

fn mov_sym() -> Symbol {
    Symbol::intern("mov")
}

fn ldiq_sym() -> Symbol {
    Symbol::intern("ldiq")
}

fn unit_rank(u: Unit) -> u8 {
    match u {
        Unit::U0 => 0,
        Unit::U1 => 1,
        Unit::L0 => 2,
        Unit::L1 => 3,
    }
}

/// True if an immediate is legal at operand position `pos` of `op`
/// (mirrors the rules `denali_arch::validate` enforces for ALU ops).
/// Exposed so equivalence-rule miners can pre-filter constants.
pub fn imm_ok(machine: &Machine, op: Symbol, pos: usize, value: u64) -> bool {
    match op.as_str() {
        "ldiq" => pos == 0,
        "extr_u" | "dep_z" => (pos == 1 || pos == 2) && machine.fits_alu_literal(value),
        _ => pos == 1 && machine.fits_alu_literal(value),
    }
}

impl Sketch {
    /// Converts a scheduled program (typically the baseline rewrite
    /// output) into a sketch, padded with passthrough cells up to
    /// `max_cells` so the chain has headroom to grow candidates.
    ///
    /// Returns `None` for programs this engine cannot search: memory
    /// operations (`ldq`/`stq`) or opcodes without executable
    /// semantics in `denali_term::ops`.
    pub fn from_program(program: &Program, machine: &Machine, max_cells: usize) -> Option<Sketch> {
        let mov = mov_sym();
        let ldiq = ldiq_sym();
        let mut instrs: Vec<&Instr> = program.instrs.iter().collect();
        instrs.sort_by_key(|i| (i.cycle, unit_rank(i.unit)));

        let mut cells: Vec<Cell> = Vec::with_capacity(instrs.len());
        let mut reg_map: Vec<(Reg, ValRef)> = program
            .inputs
            .iter()
            .enumerate()
            .map(|(i, &(_, r))| (r, ValRef::Input(i)))
            .collect();
        let lookup = |map: &[(Reg, ValRef)], r: Reg| -> Option<ValRef> {
            map.iter().rev().find(|&&(m, _)| m == r).map(|&(_, v)| v)
        };

        for instr in instrs {
            let name = instr.op.as_str();
            if name == "ldq" || name == "stq" || !machine.is_instruction(instr.op) {
                return None;
            }
            if instr.op != mov
                && instr.op != ldiq
                && ops::info(instr.op).is_none_or(|i| i.eval.is_none())
            {
                return None;
            }
            let args: Vec<ValRef> = if instr.op == ldiq {
                match instr.operands.first()? {
                    Operand::Imm(v) => vec![ValRef::Imm(*v)],
                    Operand::Reg(_) => return None,
                }
            } else {
                instr
                    .operands
                    .iter()
                    .map(|o| match o {
                        Operand::Imm(v) => Some(ValRef::Imm(*v)),
                        Operand::Reg(r) => lookup(&reg_map, *r),
                    })
                    .collect::<Option<_>>()?
            };
            let idx = cells.len();
            cells.push(Cell { op: instr.op, args });
            let dest = instr.dest?;
            reg_map.push((dest, ValRef::Cell(idx)));
        }

        let outputs: Vec<(Symbol, ValRef)> = program
            .outputs
            .iter()
            .map(|&(n, r)| lookup(&reg_map, r).map(|v| (n, v)))
            .collect::<Option<_>>()?;

        let mut sketch = Sketch {
            inputs: program.inputs.clone(),
            cells,
            outputs,
            name: program.name.clone(),
        };
        sketch.pad(max_cells);
        Some(sketch)
    }

    /// Interleaves passthrough (`mov`) cells so the chain can insert
    /// instructions anywhere, not only at the tail.
    fn pad(&mut self, max_cells: usize) {
        let n = self.cells.len();
        let target = (n * 2 + 6).min(max_cells.max(n));
        let mut pads = target.saturating_sub(n);
        if pads == 0 {
            return;
        }
        let filler = if self.inputs.is_empty() {
            ValRef::Imm(0)
        } else {
            ValRef::Input(0)
        };
        let mov = mov_sym();
        let mut remap: Vec<usize> = Vec::with_capacity(n);
        let mut padded: Vec<Cell> = Vec::with_capacity(target);
        for (i, cell) in self.cells.drain(..).enumerate() {
            remap.push(padded.len());
            padded.push(cell);
            if pads > 0 && i % 2 == 1 {
                padded.push(Cell {
                    op: mov,
                    args: vec![filler],
                });
                pads -= 1;
            }
        }
        for _ in 0..pads {
            padded.push(Cell {
                op: mov,
                args: vec![filler],
            });
        }
        let fix = |v: ValRef| match v {
            ValRef::Cell(i) => ValRef::Cell(remap[i]),
            other => other,
        };
        for cell in &mut padded {
            for a in &mut cell.args {
                *a = fix(*a);
            }
        }
        for (_, v) in &mut self.outputs {
            *v = fix(*v);
        }
        self.cells = padded;
    }

    /// Follows `mov` chains to the underlying value.
    fn resolve(&self, mut v: ValRef) -> ValRef {
        let mov = mov_sym();
        loop {
            match v {
                ValRef::Cell(i) if self.cells[i].op == mov => v = self.cells[i].args[0],
                other => return other,
            }
        }
    }

    /// Evaluates the sketch on one input vector, returning the output
    /// values in `outputs` order. `None` if some opcode has no
    /// executable semantics for its argument count.
    pub fn eval(&self, input_vals: &[u64]) -> Option<Vec<u64>> {
        let mov = mov_sym();
        let ldiq = ldiq_sym();
        let mut vals: Vec<u64> = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let arg = |v: &ValRef| -> u64 {
                match *v {
                    ValRef::Input(i) => input_vals[i],
                    ValRef::Cell(j) => vals[j],
                    ValRef::Imm(k) => k,
                }
            };
            let value = if cell.op == mov || cell.op == ldiq {
                arg(&cell.args[0])
            } else {
                let args: Vec<u64> = cell.args.iter().map(arg).collect();
                ops::eval(cell.op, &args)?
            };
            vals.push(value);
        }
        Some(
            self.outputs
                .iter()
                .map(|(_, v)| match *v {
                    ValRef::Input(i) => input_vals[i],
                    ValRef::Cell(j) => vals[j],
                    ValRef::Imm(k) => k,
                })
                .collect(),
        )
    }

    /// The emitted (non-`mov`) cells reachable from the outputs, in
    /// ascending index order.
    fn live_cells(&self) -> Vec<usize> {
        let mut live = vec![false; self.cells.len()];
        let mut stack: Vec<ValRef> = self.outputs.iter().map(|&(_, v)| v).collect();
        while let Some(v) = stack.pop() {
            if let ValRef::Cell(i) = self.resolve(v) {
                if !live[i] {
                    live[i] = true;
                    stack.extend(self.cells[i].args.iter().copied());
                }
            }
        }
        (0..self.cells.len()).filter(|&i| live[i]).collect()
    }

    /// Sum of instruction latencies over the live cells — the perf
    /// proxy used while a candidate is still incorrect or
    /// unschedulable.
    fn latency_sum(&self, machine: &Machine) -> u64 {
        self.live_cells()
            .iter()
            .map(|&i| {
                machine
                    .info(self.cells[i].op)
                    .map(|info| u64::from(info.latency))
                    .unwrap_or(8)
            })
            .sum()
    }

    /// Greedy cluster-aware list scheduling of the live cells into a
    /// validated [`Program`]. `None` when the sketch is not emittable
    /// (immediate in an illegal operand position, an output that
    /// resolves to a bare immediate, or no unit can ever issue a cell).
    pub fn to_program(&self, machine: &Machine) -> Option<Program> {
        let live = self.live_cells();
        for &(_, v) in &self.outputs {
            if matches!(self.resolve(v), ValRef::Imm(_)) {
                return None;
            }
        }
        // Dense order index for live cells, and resolved args up front.
        let mut order = vec![usize::MAX; self.cells.len()];
        for (k, &i) in live.iter().enumerate() {
            order[i] = k;
        }
        let resolved: Vec<Vec<ValRef>> = live
            .iter()
            .map(|&i| {
                self.cells[i]
                    .args
                    .iter()
                    .map(|&a| self.resolve(a))
                    .collect()
            })
            .collect();
        for (k, &i) in live.iter().enumerate() {
            let op = self.cells[i].op;
            machine.info(op)?;
            for (pos, arg) in resolved[k].iter().enumerate() {
                if let ValRef::Imm(v) = arg {
                    if !imm_ok(machine, op, pos, *v) {
                        return None;
                    }
                }
            }
        }

        // Register assignment: inputs keep their entry registers; live
        // cells get fresh registers above them.
        let base = self.inputs.iter().map(|&(_, r)| r.0 + 1).max().unwrap_or(1);
        let cell_reg = |k: usize| Reg(base + k as u32);
        let ref_reg = |v: ValRef| -> Reg {
            match v {
                ValRef::Input(i) => self.inputs[i].1,
                ValRef::Cell(i) => cell_reg(order[i]),
                ValRef::Imm(_) => unreachable!("imm refs are emitted as Operand::Imm"),
            }
        };

        // Greedy placement: earliest cycle, units in table order.
        let width = machine.issue_width();
        let mut placed: Vec<Option<(u32, Unit)>> = vec![None; live.len()];
        let mut remaining: Vec<usize> = (0..live.len()).collect();
        let mut cycle: u32 = 0;
        let bound = (live.len() as u32 + 2) * 16 + 64;
        while !remaining.is_empty() {
            if cycle > bound {
                return None;
            }
            let mut used: Vec<Unit> = Vec::with_capacity(width);
            let mut k = 0;
            while k < remaining.len() && used.len() < width {
                let c = remaining[k];
                let info = machine.info(self.cells[live[c]].op).expect("checked above");
                let mut chosen = None;
                'units: for &u in &info.units {
                    if used.contains(&u) {
                        continue;
                    }
                    for arg in &resolved[c] {
                        if let ValRef::Cell(p) = arg {
                            let Some((pc, pu)) = placed[order[*p]] else {
                                continue 'units;
                            };
                            let plat = machine
                                .info(self.cells[*p].op)
                                .expect("checked above")
                                .latency;
                            let mut ready = pc + plat;
                            if pu.cluster() != u.cluster() {
                                ready += machine.cluster_delay();
                            }
                            if ready > cycle {
                                continue 'units;
                            }
                        }
                    }
                    chosen = Some(u);
                    break;
                }
                if let Some(u) = chosen {
                    placed[c] = Some((cycle, u));
                    used.push(u);
                    remaining.remove(k);
                } else {
                    k += 1;
                }
            }
            cycle += 1;
        }

        let mut instrs: Vec<Instr> = live
            .iter()
            .enumerate()
            .map(|(k, &i)| {
                let (cycle, unit) = placed[k].expect("all live cells placed");
                Instr {
                    op: self.cells[i].op,
                    operands: resolved[k]
                        .iter()
                        .map(|&a| match a {
                            ValRef::Imm(v) => Operand::Imm(v),
                            other => Operand::Reg(ref_reg(other)),
                        })
                        .collect(),
                    dest: Some(cell_reg(k)),
                    cycle,
                    unit,
                    comment: String::new(),
                }
            })
            .collect();
        instrs.sort_by_key(|i| (i.cycle, unit_rank(i.unit)));

        Some(Program {
            instrs,
            inputs: self.inputs.clone(),
            outputs: self
                .outputs
                .iter()
                .map(|&(n, v)| (n, ref_reg(self.resolve(v))))
                .collect(),
            name: self.name.clone(),
            reg_reuse: false,
        })
    }
}

/// Chain tuning knobs. Everything here is excluded from the request
/// fingerprint: the engine *choice* affects output, the chain schedule
/// does not change what a result claims to be (any verified result is
/// correct), so knobs may vary between runs without poisoning caches —
/// except that `seed` changes which result is found, which is why
/// cached serve entries are only written for complete, deterministic
/// runs keyed by the default config.
#[derive(Clone, Debug)]
pub struct StokeConfig {
    /// SplitMix64 chain seed.
    pub seed: u64,
    /// Proposals to evaluate before giving up.
    pub iterations: u64,
    /// Inverse temperature for the Metropolis acceptance test.
    pub beta: f64,
    /// Proposals without improvement before restarting from the best.
    pub restart_after: u64,
    /// Test vectors scored on every proposal.
    pub vectors: usize,
    /// Fresh oracle vectors drawn to verify a would-be best candidate.
    pub verify_vectors: usize,
    /// Sketch size ceiling (cells including passthrough padding).
    pub max_cells: usize,
}

impl Default for StokeConfig {
    fn default() -> StokeConfig {
        StokeConfig {
            seed: 0x5EED_CAFE_D15C_0B01,
            iterations: 20_000,
            beta: 0.25,
            restart_after: 4_000,
            vectors: 8,
            verify_vectors: 32,
            max_cells: 48,
        }
    }
}

/// What one chain run produced.
#[derive(Clone, Debug)]
pub struct StokeOutcome {
    /// Best verified program (the baseline itself when nothing beat it).
    pub best_program: Program,
    /// Schedule length of `best_program`.
    pub best_cycles: u32,
    /// Schedule length of the baseline the chain started from.
    pub baseline_cycles: u32,
    /// True when `best_cycles < baseline_cycles`.
    pub improved: bool,
    /// False when the goal could not be searched (oracle failures) and
    /// the baseline was returned untouched.
    pub supported: bool,
    /// Proposals evaluated.
    pub proposals: u64,
    /// Proposals accepted by the Metropolis test.
    pub accepted: u64,
    /// Chain restarts (resets to the best-so-far state).
    pub restarts: u64,
    /// Candidates sent through full simulator verification.
    pub verifications: u64,
    /// Counterexample vectors widened into the test set.
    pub widenings: u64,
    /// True when the chain stopped on a cancellation signal.
    pub cancelled: bool,
    /// Verified best-cost trajectory: (proposal index, cycles), starting
    /// at (0, baseline) — deterministic at a fixed seed.
    pub trajectory: Vec<(u64, u32)>,
}

impl StokeOutcome {
    fn baseline_only(baseline: &Program, supported: bool) -> StokeOutcome {
        let cycles = baseline.cycles();
        StokeOutcome {
            best_program: baseline.clone(),
            best_cycles: cycles,
            baseline_cycles: cycles,
            improved: false,
            supported,
            proposals: 0,
            accepted: 0,
            restarts: 0,
            verifications: 0,
            widenings: 0,
            cancelled: false,
            trajectory: vec![(0, cycles)],
        }
    }
}

/// Aggregated chain telemetry (one static handle, like the pipeline
/// metrics in `denali-core`).
struct StokeMetrics {
    proposals: std::sync::Arc<Counter>,
    accepted: std::sync::Arc<Counter>,
    restarts: std::sync::Arc<Counter>,
    verifications: std::sync::Arc<Counter>,
    improvements: std::sync::Arc<Counter>,
    best_cycles: std::sync::Arc<Gauge>,
    chain_us: std::sync::Arc<Histogram>,
}

fn stoke_metrics() -> &'static StokeMetrics {
    static METRICS: OnceLock<StokeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = denali_metrics::global();
        StokeMetrics {
            proposals: reg.counter(
                "denali_stoke_proposals_total",
                "MCMC proposals evaluated across all chains",
            ),
            accepted: reg.counter(
                "denali_stoke_accepted_total",
                "MCMC proposals accepted by the Metropolis test",
            ),
            restarts: reg.counter(
                "denali_stoke_restarts_total",
                "chain restarts to the best-so-far state",
            ),
            verifications: reg.counter(
                "denali_stoke_verifications_total",
                "candidates sent through simulator verification",
            ),
            improvements: reg.counter(
                "denali_stoke_improvements_total",
                "verified candidates that beat the incumbent",
            ),
            best_cycles: reg.gauge(
                "denali_stoke_best_cycles",
                "cycles of the most recent verified best candidate",
            ),
            chain_us: reg.histogram(
                "denali_stoke_chain_us",
                "wall time of one full chain run (microseconds)",
            ),
        }
    })
}

/// The opcode/literal pool proposals draw from, built once per chain
/// from the machine table intersected with executable semantics.
struct MovePool {
    /// `(op, arity)` in deterministic registry order; `mov`/`ldiq`
    /// excluded (they have dedicated move kinds).
    ops: Vec<(Symbol, usize)>,
    /// Literal candidates for immediate operands.
    literals: Vec<u64>,
}

impl MovePool {
    fn new(machine: &Machine, rules: &[EquivRule]) -> MovePool {
        let mov = mov_sym();
        let ldiq = ldiq_sym();
        let mut ops: Vec<(Symbol, usize)> = ops::all()
            .filter(|info| {
                let sym = Symbol::intern(info.name);
                info.eval.is_some()
                    && machine.is_instruction(sym)
                    && sym != mov
                    && sym != ldiq
                    && info.name != "ldq"
                    && info.name != "stq"
            })
            .map(|info| (Symbol::intern(info.name), info.arity))
            .collect();
        ops.sort_by_key(|&(s, _)| s.as_str().to_owned());
        let mut literals: Vec<u64> = vec![0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 63, 64, 127, 255];
        for rule in rules {
            for arg in &rule.args {
                if let ValRef::Imm(v) = arg {
                    if machine.fits_alu_literal(*v) && !literals.contains(v) {
                        literals.push(*v);
                    }
                }
            }
        }
        MovePool { ops, literals }
    }
}

/// Undo record for one proposal.
enum Undo {
    Cell(usize, Cell),
    Output(usize, ValRef),
}

fn apply_undo(sketch: &mut Sketch, undo: Undo) {
    match undo {
        Undo::Cell(i, cell) => sketch.cells[i] = cell,
        Undo::Output(i, v) => sketch.outputs[i].1 = v,
    }
}

/// A random non-immediate reference legal at cell `idx` (or at an
/// output when `idx == cells.len()`).
fn random_value_ref(rng: &mut Rng, sketch: &Sketch, idx: usize) -> ValRef {
    let n_inputs = sketch.inputs.len();
    if idx == 0 && n_inputs == 0 {
        return ValRef::Imm(0);
    }
    if idx > 0 && (n_inputs == 0 || rng.next_bool()) {
        ValRef::Cell(rng.below_usize(idx))
    } else {
        ValRef::Input(rng.below_usize(n_inputs.max(1)))
    }
}

/// A random argument for position `pos` of `op` at cell `idx`,
/// occasionally an immediate when the position allows one.
fn random_arg(
    rng: &mut Rng,
    sketch: &Sketch,
    machine: &Machine,
    pool: &MovePool,
    idx: usize,
    op: Symbol,
    pos: usize,
) -> ValRef {
    if pos == 1 && op != ldiq_sym() && rng.below(4) == 0 {
        let v = *rng.choose(&pool.literals);
        if imm_ok(machine, op, pos, v) {
            return ValRef::Imm(v);
        }
    }
    random_value_ref(rng, sketch, idx)
}

/// Mutates `sketch` with one random move; returns the undo record, or
/// `None` when the drawn move was a no-op.
fn propose(
    rng: &mut Rng,
    sketch: &mut Sketch,
    machine: &Machine,
    pool: &MovePool,
    rules: &[EquivRule],
) -> Option<Undo> {
    let mov = mov_sym();
    let ldiq = ldiq_sym();
    let n = sketch.cells.len();
    let kind = rng.below(16);
    match kind {
        // Rewrite-to-equivalent: install a mined rule verbatim.
        0..=4 if !rules.is_empty() => {
            let rule = rng.choose(rules);
            let old = sketch.cells[rule.cell].clone();
            let new = Cell {
                op: rule.op,
                args: rule.args.clone(),
            };
            if old == new {
                return None;
            }
            sketch.cells[rule.cell] = new;
            Some(Undo::Cell(rule.cell, old))
        }
        // Opcode swap: keep the arguments, change the operation.
        0..=6 => {
            let i = rng.below_usize(n);
            let cell = &sketch.cells[i];
            if cell.op == mov || cell.op == ldiq {
                return None;
            }
            let arity = cell.args.len();
            let same: Vec<Symbol> = pool
                .ops
                .iter()
                .filter(|&&(s, a)| a == arity && s != cell.op)
                .map(|&(s, _)| s)
                .collect();
            if same.is_empty() {
                return None;
            }
            let new_op = *rng.choose(&same);
            if let Some(ValRef::Imm(v)) = cell.args.get(1) {
                if !imm_ok(machine, new_op, 1, *v) {
                    return None;
                }
            }
            let old = sketch.cells[i].clone();
            sketch.cells[i].op = new_op;
            Some(Undo::Cell(i, old))
        }
        // Operand swap: change one argument.
        7..=9 => {
            let i = rng.below_usize(n);
            let old = sketch.cells[i].clone();
            let op = old.op;
            if op == ldiq {
                let v = *rng.choose(&pool.literals);
                if old.args[0] == ValRef::Imm(v) {
                    return None;
                }
                sketch.cells[i].args[0] = ValRef::Imm(v);
                return Some(Undo::Cell(i, old));
            }
            let pos = rng.below_usize(old.args.len());
            let arg = random_arg(rng, sketch, machine, pool, i, op, pos);
            if sketch.cells[i].args[pos] == arg {
                return None;
            }
            sketch.cells[i].args[pos] = arg;
            Some(Undo::Cell(i, old))
        }
        // Instruction replace: a fresh opcode with fresh arguments.
        10..=12 => {
            let i = rng.below_usize(n);
            if pool.ops.is_empty() {
                return None;
            }
            let (op, arity) = *rng.choose(&pool.ops);
            let args = (0..arity)
                .map(|pos| random_arg(rng, sketch, machine, pool, i, op, pos))
                .collect();
            let old = sketch.cells[i].clone();
            sketch.cells[i] = Cell { op, args };
            Some(Undo::Cell(i, old))
        }
        // Instruction delete: collapse a cell to a passthrough.
        13 => {
            let i = rng.below_usize(n);
            let old = sketch.cells[i].clone();
            let new = Cell {
                op: mov,
                args: vec![random_value_ref(rng, sketch, i)],
            };
            if old == new {
                return None;
            }
            sketch.cells[i] = new;
            Some(Undo::Cell(i, old))
        }
        // Retarget an output.
        _ => {
            let o = rng.below_usize(sketch.outputs.len());
            let v = random_value_ref(rng, sketch, n);
            if sketch.outputs[o].1 == v {
                return None;
            }
            let old = sketch.outputs[o].1;
            sketch.outputs[o].1 = v;
            Some(Undo::Output(o, old))
        }
    }
}

/// One scored chain state.
enum Scored {
    /// Opcode with no semantics for its arguments (reject outright).
    Invalid,
    /// Wrong on at least one test vector, or correct but unschedulable.
    Pending { cost: u64 },
    /// Correct on all vectors and schedulable.
    Correct { cost: u64, program: Program },
}

impl Scored {
    fn cost(&self) -> u64 {
        match self {
            Scored::Invalid => u64::MAX,
            Scored::Pending { cost } | Scored::Correct { cost, .. } => *cost,
        }
    }
}

/// Weight of one wrong output bit relative to one cycle of latency.
const WRONG_BIT_COST: u64 = 2;

fn score(sketch: &Sketch, machine: &Machine, vectors: &[(Vec<u64>, Vec<u64>)]) -> Scored {
    let mut wrong_bits: u64 = 0;
    for (inputs, expected) in vectors {
        let Some(actual) = sketch.eval(inputs) else {
            return Scored::Invalid;
        };
        for (a, e) in actual.iter().zip(expected) {
            wrong_bits += u64::from((a ^ e).count_ones());
        }
    }
    if wrong_bits > 0 {
        return Scored::Pending {
            cost: wrong_bits * WRONG_BIT_COST + sketch.latency_sum(machine),
        };
    }
    match sketch.to_program(machine) {
        Some(program) => Scored::Correct {
            cost: u64::from(program.cycles()),
            program,
        },
        None => Scored::Pending {
            cost: sketch.latency_sum(machine) + 8,
        },
    }
}

fn random_input(rng: &mut Rng) -> u64 {
    match rng.below(8) {
        0 => 0,
        1 => 1,
        2 => u64::MAX,
        3 => 0x0123_4567_89AB_CDEF,
        4 => u64::from(rng.next_u64() as u8),
        _ => rng.next_u64(),
    }
}

fn uniform_f64(rng: &mut Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Simulates `program` on one vector and returns the outputs in
/// `sketch.outputs` order.
fn simulate(
    sim: &Simulator<'_>,
    sketch: &Sketch,
    program: &Program,
    inputs: &[u64],
) -> Option<Vec<u64>> {
    let regs: std::collections::HashMap<Reg, u64> = sketch
        .inputs
        .iter()
        .zip(inputs)
        .map(|(&(_, r), &v)| (r, v))
        .collect();
    let out = sim
        .run(program, &regs, std::collections::HashMap::new())
        .ok()?;
    sketch
        .outputs
        .iter()
        .map(|&(n, _)| {
            program
                .output_reg(n)
                .and_then(|r| out.regs.get(&r).copied())
        })
        .collect()
}

enum Verdict {
    Pass,
    /// A fresh oracle vector disagreed; widen it into the test set.
    Widen(Vec<u64>, Vec<u64>),
    Fail,
}

/// Full verification of a would-be best candidate: structural
/// validation, simulation on the chain's own vectors, then simulation
/// on fresh oracle vectors (suspicion widening).
#[allow(clippy::too_many_arguments)]
fn verify(
    machine: &Machine,
    sketch: &Sketch,
    program: &Program,
    vectors: &[(Vec<u64>, Vec<u64>)],
    oracle: &mut dyn FnMut(&[u64]) -> Option<Vec<u64>>,
    rng: &mut Rng,
    n_inputs: usize,
    fresh: usize,
) -> Verdict {
    if validate(program, machine).is_err() {
        return Verdict::Fail;
    }
    let sim = Simulator::new(machine);
    for (inputs, expected) in vectors {
        match simulate(&sim, sketch, program, inputs) {
            Some(actual) if &actual == expected => {}
            _ => return Verdict::Fail,
        }
    }
    for _ in 0..fresh {
        let inputs: Vec<u64> = (0..n_inputs).map(|_| random_input(rng)).collect();
        let Some(expected) = oracle(&inputs) else {
            return Verdict::Fail;
        };
        match simulate(&sim, sketch, program, &inputs) {
            Some(actual) if actual == expected => {}
            _ => return Verdict::Widen(inputs, expected),
        }
    }
    Verdict::Pass
}

/// Runs one Metropolis chain over `sketch`, reporting verified
/// improvements through `on_best` as they are found (the anytime
/// channel) and returning the full outcome.
///
/// `oracle` maps an input vector (in `sketch.inputs` order) to the
/// goal's output values (in `sketch.outputs` order); `None` marks the
/// goal as unsupported and returns the baseline untouched.
#[allow(clippy::too_many_arguments)]
pub fn optimize(
    machine: &Machine,
    sketch: &Sketch,
    baseline: &Program,
    oracle: &mut dyn FnMut(&[u64]) -> Option<Vec<u64>>,
    rules: &[EquivRule],
    config: &StokeConfig,
    cancel: Option<&CancelToken>,
    tracer: &Tracer,
    on_best: &mut dyn FnMut(&Program, u32),
) -> StokeOutcome {
    let started = Instant::now();
    let mut rng = Rng::new(config.seed);
    let n_inputs = sketch.inputs.len();

    // Seed the test-vector set from the oracle.
    let mut vectors: Vec<(Vec<u64>, Vec<u64>)> = Vec::with_capacity(config.vectors);
    for _ in 0..config.vectors.max(1) {
        let inputs: Vec<u64> = (0..n_inputs).map(|_| random_input(&mut rng)).collect();
        match oracle(&inputs) {
            Some(outputs) => vectors.push((inputs, outputs)),
            None => return StokeOutcome::baseline_only(baseline, false),
        }
    }

    let baseline_cycles = baseline.cycles();
    let pool = MovePool::new(machine, rules);
    let mut cur = sketch.clone();
    let mut cur_score = score(&cur, machine, &vectors);
    // The starting sketch mirrors the baseline program; if it does not
    // score as correct the conversion is unsound for this goal — fall
    // back to the baseline rather than search a broken space.
    if !matches!(cur_score, Scored::Correct { .. }) {
        return StokeOutcome::baseline_only(baseline, false);
    }

    tracer.event("stoke.start", || {
        vec![
            field("name", sketch.name.clone()),
            field("seed", config.seed),
            field("cells", sketch.cells.len()),
            field("iterations", config.iterations),
            field("baseline_cycles", baseline_cycles),
        ]
    });

    let mut out = StokeOutcome::baseline_only(baseline, true);
    let mut best_sketch = cur.clone();
    let mut since_improve: u64 = 0;

    // The greedy rescheduling of the baseline sketch can itself beat
    // the baseline program; treat it as proposal 0's candidate.
    if let Scored::Correct { ref program, cost } = cur_score {
        let cycles = cost as u32;
        if cycles < out.best_cycles {
            out.verifications += 1;
            let program = program.clone();
            match verify(
                machine,
                &cur,
                &program,
                &vectors,
                oracle,
                &mut rng,
                n_inputs,
                config.verify_vectors,
            ) {
                Verdict::Pass => {
                    out.best_program = program.clone();
                    out.best_cycles = cycles;
                    out.trajectory.push((0, cycles));
                    best_sketch = cur.clone();
                    on_best(&program, cycles);
                }
                Verdict::Widen(i, o) => {
                    vectors.push((i, o));
                    out.widenings += 1;
                    cur_score = score(&cur, machine, &vectors);
                }
                Verdict::Fail => {}
            }
        }
    }

    for p in 1..=config.iterations {
        if p % 64 == 0 && cancel.is_some_and(CancelToken::is_cancelled) {
            out.cancelled = true;
            break;
        }
        out.proposals = p;
        since_improve += 1;
        let Some(undo) = propose(&mut rng, &mut cur, machine, &pool, rules) else {
            continue;
        };
        let new_score = score(&cur, machine, &vectors);
        let delta = new_score.cost() as f64 - cur_score.cost() as f64;
        let accept = !matches!(new_score, Scored::Invalid)
            && (delta <= 0.0 || uniform_f64(&mut rng) < (-config.beta * delta).exp());
        if !accept {
            apply_undo(&mut cur, undo);
            continue;
        }
        out.accepted += 1;
        let mut rescore = false;
        if let Scored::Correct { ref program, cost } = new_score {
            let cycles = cost as u32;
            if cycles < out.best_cycles {
                out.verifications += 1;
                let program = program.clone();
                match verify(
                    machine,
                    &cur,
                    &program,
                    &vectors,
                    oracle,
                    &mut rng,
                    n_inputs,
                    config.verify_vectors,
                ) {
                    Verdict::Pass => {
                        out.best_program = program.clone();
                        out.best_cycles = cycles;
                        out.trajectory.push((p, cycles));
                        best_sketch = cur.clone();
                        since_improve = 0;
                        on_best(&program, cycles);
                        tracer.event("stoke.best", || {
                            vec![field("proposal", p), field("cycles", cycles)]
                        });
                    }
                    Verdict::Widen(i, o) => {
                        vectors.push((i, o));
                        out.widenings += 1;
                        rescore = true;
                    }
                    Verdict::Fail => {}
                }
            }
        }
        cur_score = if rescore {
            score(&cur, machine, &vectors)
        } else {
            new_score
        };
        if since_improve >= config.restart_after {
            cur = best_sketch.clone();
            cur_score = score(&cur, machine, &vectors);
            out.restarts += 1;
            since_improve = 0;
        }
    }

    out.improved = out.best_cycles < baseline_cycles;
    tracer.event("stoke.done", || {
        vec![
            field("proposals", out.proposals),
            field("accepted", out.accepted),
            field("restarts", out.restarts),
            field("best_cycles", out.best_cycles),
            field("improved", out.improved),
        ]
    });
    let m = stoke_metrics();
    m.proposals.add(out.proposals);
    m.accepted.add(out.accepted);
    m.restarts.add(out.restarts);
    m.verifications.add(out.verifications);
    if out.improved {
        m.improvements.inc();
    }
    m.best_cycles.set(u64::from(out.best_cycles));
    m.chain_us
        .observe(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    /// The baseline shape for figure 2's `reg6*4 + 1`: sll + addq.
    fn figure2_baseline() -> Program {
        Program {
            instrs: vec![
                Instr {
                    op: sym("sll"),
                    operands: vec![Operand::Reg(Reg(6)), Operand::Imm(2)],
                    dest: Some(Reg(7)),
                    cycle: 0,
                    unit: Unit::U0,
                    comment: String::new(),
                },
                Instr {
                    op: sym("addq"),
                    operands: vec![Operand::Reg(Reg(7)), Operand::Imm(1)],
                    dest: Some(Reg(8)),
                    cycle: 1,
                    unit: Unit::U0,
                    comment: String::new(),
                },
            ],
            inputs: vec![(sym("reg6"), Reg(6))],
            outputs: vec![(sym("res"), Reg(8))],
            name: "figure2".to_owned(),
            reg_reuse: false,
        }
    }

    fn figure2_oracle(inputs: &[u64]) -> Option<Vec<u64>> {
        Some(vec![inputs[0].wrapping_mul(4).wrapping_add(1)])
    }

    #[test]
    fn sketch_round_trips_the_baseline() {
        let machine = Machine::ev6();
        let baseline = figure2_baseline();
        let sketch = Sketch::from_program(&baseline, &machine, 48).unwrap();
        assert!(sketch.cells.len() >= 2, "padded sketch keeps real cells");
        // The sketch computes the same function.
        for x in [0u64, 1, 7, u64::MAX] {
            assert_eq!(sketch.eval(&[x]).unwrap(), vec![x.wrapping_mul(4) + 1]);
        }
        // And schedules back into a valid program.
        let p = sketch.to_program(&machine).unwrap();
        validate(&p, &machine).unwrap();
        let sim = Simulator::new(&machine);
        let out = sim
            .run(&p, &HashMap::from([(Reg(6), 10u64)]), HashMap::new())
            .unwrap();
        let res = p.output_reg(sym("res")).unwrap();
        assert_eq!(out.regs[&res], 41);
    }

    #[test]
    fn memory_programs_are_unsupported() {
        let machine = Machine::ev6();
        let p = Program {
            instrs: vec![Instr {
                op: sym("ldq"),
                operands: vec![Operand::Reg(Reg(1)), Operand::Imm(0)],
                dest: Some(Reg(2)),
                cycle: 0,
                unit: Unit::L0,
                comment: String::new(),
            }],
            inputs: vec![(sym("p"), Reg(1))],
            outputs: vec![(sym("r"), Reg(2))],
            name: "load".to_owned(),
            reg_reuse: false,
        };
        assert!(Sketch::from_program(&p, &machine, 48).is_none());
    }

    #[test]
    fn equiv_rule_lets_the_chain_find_s4addq() {
        let machine = Machine::ev6();
        let baseline = figure2_baseline();
        let sketch = Sketch::from_program(&baseline, &machine, 48).unwrap();
        // Mined rule: cell 1 (the addq) may be computed as
        // s4addq(input0, 1) directly.
        let rules = vec![EquivRule {
            cell: 1,
            op: sym("s4addq"),
            args: vec![ValRef::Input(0), ValRef::Imm(1)],
        }];
        let config = StokeConfig {
            iterations: 4_000,
            ..StokeConfig::default()
        };
        let mut best_seen = Vec::new();
        let out = optimize(
            &machine,
            &sketch,
            &baseline,
            &mut figure2_oracle,
            &rules,
            &config,
            None,
            &Tracer::disabled(),
            &mut |p, c| best_seen.push((p.clone(), c)),
        );
        assert!(out.supported);
        assert!(out.improved, "chain should find the 1-cycle s4addq form");
        assert_eq!(out.best_cycles, 1);
        assert!(out.best_cycles < out.baseline_cycles);
        assert!(!best_seen.is_empty(), "anytime channel published the best");
        validate(&out.best_program, &machine).unwrap();
        // The published program really computes 4x+1.
        let sim = Simulator::new(&machine);
        let res = out.best_program.output_reg(sym("res")).unwrap();
        for x in [0u64, 3, 255, u64::MAX] {
            let out_regs = sim
                .run(
                    &out.best_program,
                    &HashMap::from([(Reg(6), x)]),
                    HashMap::new(),
                )
                .unwrap();
            assert_eq!(out_regs.regs[&res], x.wrapping_mul(4).wrapping_add(1));
        }
    }

    #[test]
    fn fixed_seed_runs_are_identical() {
        let machine = Machine::ev6();
        let baseline = figure2_baseline();
        let sketch = Sketch::from_program(&baseline, &machine, 48).unwrap();
        let config = StokeConfig {
            iterations: 2_000,
            ..StokeConfig::default()
        };
        let run = || {
            optimize(
                &machine,
                &sketch,
                &baseline,
                &mut figure2_oracle,
                &[],
                &config,
                None,
                &Tracer::disabled(),
                &mut |_, _| {},
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_program.listing(4), b.best_program.listing(4));
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.proposals, b.proposals);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.restarts, b.restarts);
    }

    #[test]
    fn oracle_failure_falls_back_to_baseline() {
        let machine = Machine::ev6();
        let baseline = figure2_baseline();
        let sketch = Sketch::from_program(&baseline, &machine, 48).unwrap();
        let out = optimize(
            &machine,
            &sketch,
            &baseline,
            &mut |_| None,
            &[],
            &StokeConfig::default(),
            None,
            &Tracer::disabled(),
            &mut |_, _| {},
        );
        assert!(!out.supported);
        assert!(!out.improved);
        assert_eq!(out.best_cycles, out.baseline_cycles);
    }

    #[test]
    fn cancellation_stops_the_chain() {
        let machine = Machine::ev6();
        let baseline = figure2_baseline();
        let sketch = Sketch::from_program(&baseline, &machine, 48).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let out = optimize(
            &machine,
            &sketch,
            &baseline,
            &mut figure2_oracle,
            &[],
            &StokeConfig::default(),
            Some(&token),
            &Tracer::disabled(),
            &mut |_, _| {},
        );
        assert!(out.cancelled);
        assert!(out.proposals < StokeConfig::default().iterations);
    }
}
