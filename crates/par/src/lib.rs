#![warn(missing_docs)]

//! Deterministic scoped fork-join helpers.
//!
//! Denali's two compute-heavy phases both have a natural read-only
//! fan-out shape:
//!
//! - **Matching** — every axiom is e-matched against a frozen e-graph;
//!   the collected instances are then applied serially. The e-graph is
//!   only *read* during matching, so axioms can match on any number of
//!   threads as long as results are recombined in axiom order.
//! - **Search** — each SAT probe owns its CNF and solver, so several
//!   cycle budgets can be probed concurrently and losing probes
//!   cancelled.
//!
//! Both uses demand *determinism*: the caller must observe results that
//! are byte-identical to the serial execution regardless of thread
//! count. [`map_indexed`] guarantees this by assigning work items to
//! threads dynamically but returning results in input order. The
//! parallelism is pure fork-join over [`std::thread::scope`]; there is
//! no long-lived pool, which keeps the code dependency-free and makes a
//! thread count of 1 exactly the serial path.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Resolves a user-facing thread-count knob: `0` means "one thread per
/// available CPU", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Applies `f` to every item, fanning out over at most `threads`
/// OS threads, and returns the results **in input order**.
///
/// `f` must be a pure read-only function of its inputs for the
/// parallelism to be sound; the type system enforces `Fn + Sync` but
/// interior mutability is the caller's responsibility. With
/// `threads <= 1` (or one item) the items are processed serially on the
/// caller's thread — no spawning, identical behavior.
///
/// Work is distributed dynamically (an atomic cursor), so uneven item
/// costs balance across threads, but the output vector is always
/// `[f(0, &items[0]), f(1, &items[1]), ...]` — scheduling can never
/// change what the caller sees.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
pub fn map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<R>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || Mutex::new(None));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index visited")
        })
        .collect()
}

/// Splits `0..len` into contiguous ranges of at most `chunk` items, in
/// order. Used to turn one large work item (e.g. "match axiom A against
/// 10 000 candidate classes") into several, so [`map_indexed`]'s dynamic
/// scheduler can balance it across threads; concatenating the per-range
/// results in range order reproduces the unchunked output exactly.
///
/// `chunk == 0` is treated as "one range" (no splitting). An empty input
/// yields no ranges.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    if chunk == 0 {
        // One range covering everything (not a collect-from-range typo).
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..len];
    }
    (0..len)
        .step_by(chunk)
        .map(|s| s..(s + chunk).min(len))
        .collect()
}

/// A shared cancellation flag for speculative work.
///
/// The probe scheduler hands one of these to every speculative SAT
/// probe; when the probe's outcome becomes irrelevant (the budget it
/// tests is off the winning search path) the scheduler raises the flag
/// and the solver abandons the problem at its next checkpoint.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates an unraised token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The raw shared flag, for handing to code that polls an
    /// [`AtomicBool`] directly (e.g. a SAT solver's interrupt hook).
    pub fn handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_serially() {
        let items: Vec<usize> = (0..16).collect();
        let out = map_indexed(1, &items, |i, &x| i * 100 + x);
        assert_eq!(out, (0..16).map(|i| i * 101).collect::<Vec<_>>());
    }

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 64, 200] {
            let out = map_indexed(threads, &items, |_, &x| x * x);
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_indexed::<u32, u32, _>(4, &empty, |_, &x| x).is_empty());
        assert_eq!(map_indexed(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Make early items slow so later items finish first.
        let items: Vec<u64> = (0..12).collect();
        let out = map_indexed(4, &items, |i, &x| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x * 2
        });
        assert_eq!(out, (0..12).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_propagates_panics() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            map_indexed(2, &items, |_, &x| {
                if x == 5 {
                    panic!("item 5 exploded");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn cancel_token_round_trip() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn chunk_ranges_partition_the_input() {
        assert!(chunk_ranges(0, 4).is_empty());
        assert_eq!(chunk_ranges(10, 0), vec![0..10]);
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(3, 4), vec![0..3]);
        // Ranges tile 0..len exactly, in order.
        let ranges = chunk_ranges(97, 13);
        let flat: Vec<usize> = ranges.into_iter().flatten().collect();
        assert_eq!(flat, (0..97).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
