#![warn(missing_docs)]

//! A from-scratch CDCL SAT solver.
//!
//! The Denali paper uses the CHAFF solver and stresses that "the
//! architecture of Denali separates this solver so effectively from the
//! rest of the code generator that we can easily substitute the current
//! champion satisfiability solver". This crate plays CHAFF's role: a
//! conflict-driven clause-learning solver with two-watched-literal
//! propagation, VSIDS branching, first-UIP clause learning with
//! minimization, phase saving, Luby restarts, and LBD-based learned-clause
//! reduction.
//!
//! A deliberately naive DPLL solver ([`dpll`]) is included both for
//! differential testing and to reproduce the paper's point that the SAT
//! engine is swappable (see the solver-substitution benchmark).
//!
//! # Example
//!
//! ```
//! use denali_sat::{Solver, Lit, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause([Lit::neg(a)]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert!(solver.model().unwrap()[b.index()]);
//! ```

pub mod backend;
pub mod dimacs;
pub mod dpll;
mod heap;
mod lit;
mod solver;

pub use backend::{DpllSolver, SolverBackend};
pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverConfig, SolverStats};
