//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered densely from zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    pub fn from_index(index: usize) -> Var {
        Var(u32::try_from(index).expect("variable index overflow"))
    }

    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2*var + sign` so literals can index dense arrays (watch
/// lists in particular).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Lit {
        Lit((var.0 << 1) | 1)
    }

    /// Creates a literal with an explicit sign (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if this is the positive literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index usable for watch lists (`2*var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::index`].
    pub fn from_index(index: usize) -> Lit {
        Lit(u32::try_from(index).expect("literal index overflow"))
    }

    /// DIMACS integer encoding: 1-based, negative for negated literals.
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.0 >> 1) + 1;
        if self.is_pos() {
            v
        } else {
            -v
        }
    }

    /// Parses a DIMACS integer (non-zero) into a literal.
    pub fn from_dimacs(value: i64) -> Option<Lit> {
        if value == 0 {
            return None;
        }
        let var = Var(u32::try_from(value.unsigned_abs() - 1).ok()?);
        Some(Lit::new(var, value > 0))
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        let v = Var::from_index(3);
        let l = Lit::pos(v);
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), v);
        assert!(l.is_pos());
        assert!(!(!l).is_pos());
    }

    #[test]
    fn index_round_trips() {
        for i in 0..10 {
            let v = Var::from_index(i);
            assert_eq!(v.index(), i);
            assert_eq!(Lit::from_index(Lit::pos(v).index()), Lit::pos(v));
            assert_eq!(Lit::from_index(Lit::neg(v).index()), Lit::neg(v));
        }
    }

    #[test]
    fn dimacs_round_trips() {
        let v = Var::from_index(41);
        assert_eq!(Lit::pos(v).to_dimacs(), 42);
        assert_eq!(Lit::neg(v).to_dimacs(), -42);
        assert_eq!(Lit::from_dimacs(42), Some(Lit::pos(v)));
        assert_eq!(Lit::from_dimacs(-42), Some(Lit::neg(v)));
        assert_eq!(Lit::from_dimacs(0), None);
    }

    #[test]
    fn new_with_sign() {
        let v = Var::from_index(0);
        assert_eq!(Lit::new(v, true), Lit::pos(v));
        assert_eq!(Lit::new(v, false), Lit::neg(v));
    }
}
