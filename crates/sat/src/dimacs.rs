//! DIMACS CNF reading and writing.
//!
//! Denali's constraint generator can dump its SAT problems in the
//! standard DIMACS format so they can be compared with, or shipped to,
//! external solvers (the paper reports the DIMACS-style sizes of the
//! byteswap4 problems: 1639 variables / 4613 clauses for the 4-cycle
//! refutation up to 9203 / 26415 for the 8-cycle budget).

use std::fmt::Write as _;

use crate::lit::Lit;
use crate::solver::{Solver, SolverConfig};

/// A CNF formula in clausal form.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Cnf {
    /// Number of variables (variables are `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Loads this formula into a fresh [`Solver`].
    pub fn to_solver(&self) -> Solver {
        self.to_solver_with(SolverConfig::default())
    }

    /// Loads this formula into a fresh [`Solver`] using the given
    /// strategy configuration (one lane of a portfolio race).
    pub fn to_solver_with(&self, config: SolverConfig) -> Solver {
        let mut solver = Solver::with_config(config);
        solver.reserve_vars(self.num_vars);
        for c in &self.clauses {
            solver.add_clause(c.iter().copied());
        }
        solver
    }

    /// Renders the formula in DIMACS CNF format.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        out
    }
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns a message for a missing/malformed problem line, literals out
/// of range, or clauses not terminated by `0`.
pub fn parse(text: &str) -> Result<Cnf, String> {
    let mut num_vars = None;
    let mut declared_clauses = 0usize;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(format!("malformed problem line: {line}"));
            }
            num_vars = Some(
                parts[1]
                    .parse::<usize>()
                    .map_err(|e| format!("bad variable count: {e}"))?,
            );
            declared_clauses = parts[2]
                .parse::<usize>()
                .map_err(|e| format!("bad clause count: {e}"))?;
            continue;
        }
        let nv = num_vars.ok_or("clause before problem line")?;
        for tok in line.split_whitespace() {
            let value: i64 = tok.parse().map_err(|e| format!("bad literal {tok}: {e}"))?;
            if value == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let lit = Lit::from_dimacs(value).expect("nonzero");
                if lit.var().index() >= nv {
                    return Err(format!("literal {value} out of range (p cnf {nv} ..)"));
                }
                current.push(lit);
            }
        }
    }
    if !current.is_empty() {
        return Err("last clause not terminated by 0".to_owned());
    }
    let num_vars = num_vars.ok_or("missing problem line")?;
    if clauses.len() != declared_clauses {
        return Err(format!(
            "problem line declares {declared_clauses} clauses, found {}",
            clauses.len()
        ));
    }
    Ok(Cnf { num_vars, clauses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;
    use crate::SolveResult;

    #[test]
    fn round_trips() {
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        let cnf = Cnf {
            num_vars: 2,
            clauses: vec![vec![Lit::pos(v0), Lit::neg(v1)], vec![Lit::pos(v1)]],
        };
        let text = cnf.to_dimacs();
        assert!(text.starts_with("p cnf 2 2"));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, cnf);
    }

    #[test]
    fn parses_comments_and_multi_clause_lines() {
        let cnf = parse("c header\np cnf 3 2\n1 -2 0 2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("1 2 0").is_err());
        assert!(parse("p cnf x 1\n1 0").is_err());
        assert!(parse("p cnf 1 1\n2 0").is_err());
        assert!(parse("p cnf 1 2\n1 0").is_err());
        assert!(parse("p cnf 1 1\n1").is_err());
    }

    #[test]
    fn to_solver_solves() {
        let cnf = parse("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        let mut s = cnf.to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().unwrap()[1]);
    }
}
