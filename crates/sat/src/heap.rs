//! Indexed max-heap ordering variables by VSIDS activity.

use crate::lit::Var;

/// A binary max-heap of variables keyed by an external activity array,
/// supporting O(log n) insert/remove-max and O(log n) priority increase.
#[derive(Clone, Default, Debug)]
pub(crate) struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    positions: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    #[cfg(test)]
    pub(crate) fn new() -> VarHeap {
        VarHeap::default()
    }

    pub(crate) fn grow(&mut self, num_vars: usize) {
        self.positions.resize(num_vars, ABSENT);
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn contains(&self, var: Var) -> bool {
        self.positions[var.index()] != ABSENT
    }

    pub(crate) fn insert(&mut self, var: Var, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        self.positions[var.index()] = self.heap.len();
        self.heap.push(var);
        self.sift_up(self.heap.len() - 1, activity);
    }

    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.positions[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after `var`'s activity increased.
    pub(crate) fn increased(&mut self, var: Var, activity: &[f64]) {
        let pos = self.positions[var.index()];
        if pos != ABSENT {
            self.sift_up(pos, activity);
        }
    }

    /// Rebuilds the heap after all activities were rescaled (order is
    /// preserved by uniform rescaling, so nothing to do — kept for
    /// documentation value and future-proofing).
    pub(crate) fn rescaled(&mut self) {}

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if activity[self.heap[pos].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut best = left;
            if right < self.heap.len()
                && activity[self.heap[right].index()] > activity[self.heap[left].index()]
            {
                best = right;
            }
            if activity[self.heap[best].index()] <= activity[self.heap[pos].index()] {
                break;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.positions[self.heap[a].index()] = a;
        self.positions[self.heap[b].index()] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn pops_in_activity_order() {
        let activity = [3.0, 1.0, 4.0, 1.5, 9.0];
        let mut heap = VarHeap::new();
        heap.grow(5);
        for i in 0..5 {
            heap.insert(var(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop_max(&activity))
            .map(Var::index)
            .collect();
        assert_eq!(order, vec![4, 2, 0, 3, 1]);
        assert!(heap.is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = [1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.grow(2);
        heap.insert(var(0), &activity);
        heap.insert(var(0), &activity);
        assert_eq!(heap.pop_max(&activity), Some(var(0)));
        assert!(heap.is_empty());
    }

    #[test]
    fn increased_restores_order() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        heap.grow(3);
        for i in 0..3 {
            heap.insert(var(i), &activity);
        }
        activity[0] = 10.0;
        heap.increased(var(0), &activity);
        assert_eq!(heap.pop_max(&activity), Some(var(0)));
        assert_eq!(heap.pop_max(&activity), Some(var(2)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = [1.0];
        let mut heap = VarHeap::new();
        heap.grow(1);
        assert!(!heap.contains(var(0)));
        heap.insert(var(0), &activity);
        assert!(heap.contains(var(0)));
        heap.pop_max(&activity);
        assert!(!heap.contains(var(0)));
    }
}
