//! The CDCL solver.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::heap::VarHeap;
use crate::lit::{Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::model`].
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
    /// The solve was abandoned because the interrupt flag installed with
    /// [`Solver::set_interrupt`] was raised. The answer is unknown; the
    /// solver remains usable (state is reset to decision level zero) and
    /// a later [`Solver::solve`] may be attempted.
    Interrupted,
}

/// Counters describing the work a solve performed.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SolverStats {
    /// Number of decision variables assigned by branching.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses currently retained.
    pub learned: u64,
    /// Number of problem variables.
    pub vars: u64,
    /// Number of problem (non-learned) clauses added.
    pub clauses: u64,
    /// Number of [`Solver::solve`] / [`Solver::solve_under`] calls made
    /// on this solver so far.
    pub solves: u64,
    /// Learned clauses retained from *previous* solve calls when the
    /// most recent call started — the incremental-reuse payoff.
    pub carried_learned: u64,
    /// Variables whose VSIDS activity was non-zero when the most recent
    /// solve call started (branching heat carried across calls).
    pub carried_activity: u64,
}

impl SolverStats {
    /// The work performed since `before` was captured: monotone work
    /// counters are subtracted, while gauges describing current solver
    /// state (`learned`, `vars`, `clauses`, `solves`, `carried_*`) are
    /// reported as-is.
    #[must_use]
    pub fn since(&self, before: SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions - before.decisions,
            propagations: self.propagations - before.propagations,
            conflicts: self.conflicts - before.conflicts,
            restarts: self.restarts - before.restarts,
            ..*self
        }
    }
}

/// Search-strategy knobs for the CDCL engine.
///
/// The default configuration reproduces the solver's historical
/// behaviour exactly; the portfolio prober races several
/// [`SolverConfig::diversified`] variants of the same formula and
/// consumes whichever verdict lands first.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SolverConfig {
    /// Multiplier applied to the Luby sequence to produce the restart
    /// limit (in conflicts). The classic MiniSat-style base is 100.
    pub restart_mult: u64,
    /// Initial saved polarity for fresh variables: branch `true` first
    /// instead of the default `false`.
    pub init_polarity: bool,
    /// Whether backtracking saves the erased assignment as the next
    /// branching polarity (phase saving). Off means variables always
    /// branch on their initial polarity.
    pub phase_saving: bool,
    /// VSIDS decay factor: each conflict divides the activity increment
    /// by this, so smaller values focus harder on recent conflicts.
    pub var_decay: f64,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            restart_mult: 100,
            init_polarity: false,
            phase_saving: true,
            var_decay: 0.95,
        }
    }
}

impl SolverConfig {
    /// The `i`-th portfolio configuration. Deterministic in `i`, and
    /// `diversified(0)` is exactly the default configuration, so config
    /// 0 of a portfolio race behaves byte-for-byte like a non-portfolio
    /// solve. Indices past the base palette keep diverging via the
    /// restart multiplier, so any portfolio width yields distinct
    /// strategies.
    #[must_use]
    pub fn diversified(i: usize) -> SolverConfig {
        let base = SolverConfig::default();
        let cfg = match i % 4 {
            // Aggressive decay with inverted initial phase.
            1 => SolverConfig {
                init_polarity: true,
                var_decay: 0.90,
                ..base
            },
            // Rapid restarts without phase memory: closest to a
            // randomized-restart strategy while staying deterministic.
            2 => SolverConfig {
                restart_mult: 40,
                phase_saving: false,
                ..base
            },
            // Slow restarts, heavy recency focus, inverted phase.
            3 => SolverConfig {
                restart_mult: 300,
                init_polarity: true,
                var_decay: 0.85,
                ..base
            },
            _ => base,
        };
        SolverConfig {
            restart_mult: cfg.restart_mult + (i as u64 / 4) * 50,
            ..cfg
        }
    }
}

impl std::fmt::Display for SolverConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "restart={} phase={}{} decay={}",
            self.restart_mult,
            if self.init_polarity { "+" } else { "-" },
            if self.phase_saving {
                "/saved"
            } else {
                "/fixed"
            },
            self.var_decay,
        )
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Assign {
    True,
    False,
    Undef,
}

impl Assign {
    fn of(positive: bool) -> Assign {
        if positive {
            Assign::True
        } else {
            Assign::False
        }
    }
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
    deleted: bool,
    lbd: u32,
}

type ClauseRef = u32;
const NO_REASON: ClauseRef = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: ClauseRef,
    /// A literal of the clause other than the watched one; if it is
    /// already true the clause is satisfied and the watcher untouched.
    blocker: Lit,
}

/// A conflict-driven clause-learning SAT solver.
///
/// See the [crate docs](crate) for an example.
#[derive(Clone, Default, Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<Assign>,
    polarity: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    seen: Vec<bool>,
    /// False once an empty clause has been derived; the instance is
    /// permanently unsatisfiable.
    ok: bool,
    model: Option<Vec<bool>>,
    /// Populated by [`Solver::solve_under`] when the instance is
    /// unsatisfiable only under the given assumptions: the subset of
    /// assumptions the final conflict depends on.
    failed_assumptions: Vec<Lit>,
    stats: SolverStats,
    reduce_threshold: usize,
    /// Raised by another thread to abandon an in-flight solve (used by
    /// the speculative probe scheduler to cancel losing probes).
    interrupt: Option<Arc<AtomicBool>>,
    config: SolverConfig,
}

impl Solver {
    /// Creates an empty solver with the default [`SolverConfig`].
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with the given strategy configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            var_inc: 1.0,
            ok: true,
            reduce_threshold: 4000,
            config,
            ..Solver::default()
        }
    }

    /// The strategy configuration this solver was created with.
    pub fn config(&self) -> SolverConfig {
        self.config
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem clauses added (excluding learned clauses and
    /// clauses simplified away at add time).
    pub fn num_clauses(&self) -> usize {
        self.stats.clauses as usize
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var::from_index(self.assigns.len());
        self.assigns.push(Assign::Undef);
        self.polarity.push(self.config.init_polarity);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow(self.assigns.len());
        self.order.insert(var, &self.activity);
        self.stats.vars = self.assigns.len() as u64;
        var
    }

    /// Ensures at least `n` variables exist, creating the missing ones.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Installs a cancellation flag checked periodically during
    /// [`Solver::solve`]; once the flag is raised, the solve returns
    /// [`SolveResult::Interrupted`] at its next checkpoint.
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    fn interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    fn value(&self, lit: Lit) -> Assign {
        match self.assigns[lit.var().index()] {
            Assign::Undef => Assign::Undef,
            Assign::True => Assign::of(lit.is_pos()),
            Assign::False => Assign::of(!lit.is_pos()),
        }
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Duplicate literals are removed and tautologies ignored. Adding the
    /// empty clause (or a clause falsified at level zero) makes the
    /// instance permanently unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal mentions a variable that was never created,
    /// or if called mid-search (clauses may only be added at decision
    /// level zero).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        assert_eq!(
            self.trail_lim.len(),
            0,
            "clauses may only be added at decision level zero"
        );
        if !self.ok {
            return;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for &l in &lits {
            assert!(
                l.var().index() < self.num_vars(),
                "unknown variable in clause"
            );
        }
        lits.sort();
        lits.dedup();
        // Tautology / level-zero simplification.
        let mut simplified = Vec::with_capacity(lits.len());
        for &l in &lits {
            if lits.binary_search(&!l).is_ok() && l.is_pos() {
                return; // contains l and !l: tautology
            }
            match self.value(l) {
                Assign::True => return, // already satisfied at level 0
                Assign::False => {}     // drop falsified literal
                Assign::Undef => simplified.push(l),
            }
        }
        self.stats.clauses += 1;
        match simplified.len() {
            0 => {
                self.ok = false;
            }
            1 => {
                self.enqueue(simplified[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                self.attach_clause(simplified, false, 0);
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learned: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = u32::try_from(self.clauses.len()).expect("clause arena overflow");
        self.watches[lits[0].index()].push(Watcher {
            clause: cref,
            blocker: lits[1],
        });
        self.watches[lits[1].index()].push(Watcher {
            clause: cref,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            learned,
            deleted: false,
            lbd,
        });
        cref
    }

    fn enqueue(&mut self, lit: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.value(lit), Assign::Undef);
        let v = lit.var().index();
        self.assigns[v] = Assign::of(lit.is_pos());
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut watchers = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut kept = 0;
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < watchers.len() {
                let w = watchers[i];
                i += 1;
                if self.value(w.blocker) == Assign::True {
                    watchers[kept] = w;
                    kept += 1;
                    continue;
                }
                let clause = &mut self.clauses[w.clause as usize];
                debug_assert!(!clause.deleted);
                if clause.lits[0] == false_lit {
                    clause.lits.swap(0, 1);
                }
                debug_assert_eq!(clause.lits[1], false_lit);
                let first = clause.lits[0];
                if first != w.blocker && self.value(first) == Assign::True {
                    watchers[kept] = Watcher {
                        clause: w.clause,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let clause = &mut self.clauses[w.clause as usize];
                for k in 2..clause.lits.len() {
                    let candidate = clause.lits[k];
                    let value = match self.assigns[candidate.var().index()] {
                        Assign::Undef => Assign::Undef,
                        Assign::True => Assign::of(candidate.is_pos()),
                        Assign::False => Assign::of(!candidate.is_pos()),
                    };
                    if value != Assign::False {
                        clause.lits.swap(1, k);
                        self.watches[candidate.index()].push(Watcher {
                            clause: w.clause,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting; keep watching false_lit.
                watchers[kept] = Watcher {
                    clause: w.clause,
                    blocker: first,
                };
                kept += 1;
                if self.value(first) == Assign::False {
                    // Conflict: keep the remaining watchers and stop.
                    while i < watchers.len() {
                        watchers[kept] = watchers[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.clause);
                } else {
                    self.enqueue(first, w.clause);
                }
            }
            watchers.truncate(kept);
            self.watches[false_lit.index()] = watchers;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            self.order.rescaled();
        }
        self.order.increased(var, &self.activity);
    }

    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var::from_index(0))]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = conflict;
        let mut index = self.trail.len();

        loop {
            let clause = &self.clauses[confl as usize];
            let start = usize::from(p.is_some());
            let clause_lits: Vec<Lit> = clause.lits[start..].to_vec();
            for q in clause_lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.reason[pl.var().index()];
            debug_assert_ne!(confl, NO_REASON);
        }

        // Conflict-clause minimization: drop a literal whose reason's
        // antecedents are all already in the clause (non-recursive check).
        let retained: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.literal_redundant(l))
            .collect();
        let mut minimized = vec![learnt[0]];
        minimized.extend(retained);

        // Compute backtrack level (second-highest decision level) and
        // move a literal of that level to position 1.
        let backtrack_level = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };

        // Clear seen flags for the literals we kept.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (minimized, backtrack_level)
    }

    fn literal_redundant(&self, lit: Lit) -> bool {
        let reason = self.reason[lit.var().index()];
        if reason == NO_REASON {
            return false;
        }
        self.clauses[reason as usize].lits.iter().all(|&q| {
            q.var() == lit.var() || self.seen[q.var().index()] || self.level[q.var().index()] == 0
        })
    }

    fn lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let new_len = self.trail_lim[level as usize];
        for &lit in &self.trail[new_len..] {
            let v = lit.var();
            self.assigns[v.index()] = Assign::Undef;
            if self.config.phase_saving {
                self.polarity[v.index()] = lit.is_pos();
            }
            self.reason[v.index()] = NO_REASON;
            if !self.order.contains(v) {
                self.order.insert(v, &self.activity);
            }
        }
        self.trail.truncate(new_len);
        self.trail_lim.truncate(level as usize);
        self.qhead = new_len;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v.index()] == Assign::Undef {
                return Some(v);
            }
        }
        None
    }

    fn reduce_learned(&mut self) {
        // Retain learned clauses with good (small) LBD; delete the worst
        // half of the rest, except clauses locked as reasons.
        let mut candidates: Vec<(u32, ClauseRef)> = Vec::new();
        for (i, c) in self.clauses.iter().enumerate() {
            if c.learned && !c.deleted && c.lbd > 2 {
                candidates.push((c.lbd, i as ClauseRef));
            }
        }
        candidates.sort_unstable_by_key(|&(lbd, _)| std::cmp::Reverse(lbd));
        // One pass over the trail marks every clause currently used as a
        // propagation reason (the old per-clause trail scan was
        // O(clauses × trail) at every reduction).
        let mut locked = vec![false; self.clauses.len()];
        for &l in &self.trail {
            let r = self.reason[l.var().index()];
            if r != NO_REASON {
                locked[r as usize] = true;
            }
        }
        debug_assert_eq!(
            locked,
            self.clauses
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    self.trail
                        .iter()
                        .any(|&l| self.reason[l.var().index()] == i as ClauseRef)
                })
                .collect::<Vec<bool>>(),
            "one-pass locked set must match the brute-force scan"
        );
        for &(_, cref) in candidates.iter().take(candidates.len() / 2) {
            if !locked[cref as usize] {
                self.clauses[cref as usize].deleted = true;
            }
        }
        // Rebuild watch lists without deleted clauses.
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if !c.deleted {
                debug_assert!(c.lits.len() >= 2);
                self.watches[c.lits[0].index()].push(Watcher {
                    clause: i as ClauseRef,
                    blocker: c.lits[1],
                });
                self.watches[c.lits[1].index()].push(Watcher {
                    clause: i as ClauseRef,
                    blocker: c.lits[0],
                });
            }
        }
        self.stats.learned = self
            .clauses
            .iter()
            .filter(|c| c.learned && !c.deleted)
            .count() as u64;
        self.reduce_threshold += 1000;
    }

    /// Solves the current clause set.
    ///
    /// Returns [`SolveResult::Sat`] and records a model, or
    /// [`SolveResult::Unsat`]. The solver can be reused afterwards (state
    /// is reset to decision level zero), including adding more clauses.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_under(&[])
    }

    /// Solves the current clause set under `assumptions`.
    ///
    /// Each assumption literal is enqueued as a pseudo-decision before
    /// ordinary branching, so [`SolveResult::Unsat`] here means
    /// "unsatisfiable *under the assumptions*" — unlike a plain
    /// [`Solver::solve`] refutation it does **not** poison the solver,
    /// and [`Solver::failed_assumptions`] reports the subset of
    /// assumptions the final conflict depended on. Learned clauses,
    /// variable activity, and saved polarities persist across calls,
    /// which is the point: a sequence of closely related queries (the
    /// cycle-budget probes) shares one solver instead of starting cold.
    ///
    /// # Panics
    ///
    /// Panics if an assumption mentions a variable that was never
    /// created.
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        for &a in assumptions {
            assert!(
                a.var().index() < self.num_vars(),
                "unknown variable in assumption"
            );
        }
        self.stats.solves += 1;
        self.stats.carried_learned = self.stats.learned;
        self.stats.carried_activity = self.activity.iter().filter(|&&a| a > 0.0).count() as u64;
        self.failed_assumptions.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.model = None;
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }

        // The restart schedule is indexed per *call*, not by the
        // lifetime `stats.restarts` counter: a persistent incremental
        // solver would otherwise begin its 30th probe deep in the Luby
        // sequence with an enormous first restart limit, never
        // restarting on the queries where restarts matter most.
        let mut conflicts_since_restart = 0u64;
        let mut restarts_this_call = 0u64;
        let mut restart_limit = luby(restarts_this_call + 1) * self.config.restart_mult;
        let mut since_interrupt_check = 0u32;

        loop {
            // Cancellation checkpoint: cheap enough to amortize (one
            // relaxed atomic load every 1024 steps), frequent enough that
            // a cancelled speculative probe stops promptly.
            since_interrupt_check += 1;
            if since_interrupt_check >= 1024 {
                since_interrupt_check = 0;
                if self.interrupted() {
                    self.backtrack_to(0);
                    return SolveResult::Interrupted;
                }
            }
            match self.propagate() {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    conflicts_since_restart += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                    let (learnt, backtrack_level) = self.analyze(conflict);
                    self.backtrack_to(backtrack_level);
                    let asserting = learnt[0];
                    if learnt.len() == 1 {
                        self.enqueue(asserting, NO_REASON);
                    } else {
                        let lbd = self.lbd(&learnt);
                        let cref = self.attach_clause(learnt, true, lbd);
                        self.stats.learned += 1;
                        self.enqueue(asserting, cref);
                    }
                    self.decay_activities();
                }
                None => {
                    if conflicts_since_restart >= restart_limit {
                        self.stats.restarts += 1;
                        restarts_this_call += 1;
                        conflicts_since_restart = 0;
                        restart_limit = luby(restarts_this_call + 1) * self.config.restart_mult;
                        self.backtrack_to(0);
                        continue;
                    }
                    if self.stats.learned as usize > self.reduce_threshold {
                        self.backtrack_to(0);
                        self.reduce_learned();
                        continue;
                    }
                    // Re-establish pending assumptions (a restart or a
                    // deep backjump may have unassigned them) before any
                    // ordinary branching.
                    let mut next_assumption = None;
                    while (self.decision_level() as usize) < assumptions.len() {
                        let p = assumptions[self.decision_level() as usize];
                        match self.value(p) {
                            // Already implied: open a dummy level so the
                            // level index keeps tracking the assumption
                            // index.
                            Assign::True => self.trail_lim.push(self.trail.len()),
                            Assign::False => {
                                // The clause set refutes this assumption
                                // given the earlier ones: UNSAT under
                                // assumptions, but the solver stays ok.
                                self.analyze_final(p);
                                self.backtrack_to(0);
                                return SolveResult::Unsat;
                            }
                            Assign::Undef => {
                                next_assumption = Some(p);
                                break;
                            }
                        }
                    }
                    match next_assumption {
                        Some(p) => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, NO_REASON);
                        }
                        None => match self.pick_branch_var() {
                            None => {
                                // All variables assigned: a model.
                                let model =
                                    self.assigns.iter().map(|&a| a == Assign::True).collect();
                                self.model = Some(model);
                                self.backtrack_to(0);
                                return SolveResult::Sat;
                            }
                            Some(v) => {
                                self.stats.decisions += 1;
                                self.trail_lim.push(self.trail.len());
                                let lit = Lit::new(v, self.polarity[v.index()]);
                                self.enqueue(lit, NO_REASON);
                            }
                        },
                    }
                }
            }
        }
    }

    /// Final-conflict analysis: the assumption `p` is falsified by
    /// propagation from earlier assumptions (and the clause set).
    /// Collects into `failed_assumptions` the subset of assumptions the
    /// falsification depends on, by walking the trail from the reason of
    /// `¬p` back to the pseudo-decisions.
    fn analyze_final(&mut self, p: Lit) {
        self.failed_assumptions.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            if !self.seen[v.index()] {
                continue;
            }
            let reason = self.reason[v.index()];
            if reason == NO_REASON {
                // A pseudo-decision, i.e. one of the assumptions.
                debug_assert!(self.level[v.index()] > 0);
                self.failed_assumptions.push(lit);
            } else {
                for &q in &self.clauses[reason as usize].lits[1..] {
                    if self.level[q.var().index()] > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    /// After [`Solver::solve_under`] returns [`SolveResult::Unsat`]
    /// without the clause set itself being unsatisfiable: the subset of
    /// the assumptions that the refutation depended on. Empty after a
    /// plain refutation, a SAT result, or an interrupt.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed_assumptions
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
    }

    /// The satisfying assignment found by the last successful
    /// [`Solver::solve`], indexed by [`Var::index`].
    pub fn model(&self) -> Option<&[bool]> {
        self.model.as_deref()
    }

    /// The model value of one variable, or `None` when no model is
    /// available (last solve was UNSAT/interrupted, or `var` was created
    /// after it).
    pub fn model_value(&self, var: Var) -> Option<bool> {
        self.model
            .as_ref()
            .and_then(|m| m.get(var.index()).copied())
    }

    /// Work counters for the lifetime of this solver.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed.
fn luby(mut i: u64) -> u64 {
    loop {
        // Smallest k with 2^k - 1 >= i.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1 << (k - 1);
        }
        // i falls in the repeated prefix of the next block.
        i -= (1 << (k - 1)) - 1;
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_problem_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model().unwrap().len(), 0);
    }

    #[test]
    fn unit_clauses_force_assignment() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([Lit::pos(v[0])]);
        s.add_clause([Lit::neg(v[1])]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let m = s.model().unwrap();
        assert!(m[0]);
        assert!(!m[1]);
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v)]);
        s.add_clause([Lit::neg(v)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Solver stays unsat.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause([]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v), Lit::neg(v)]);
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn simple_implication_chain() {
        // a, a->b, b->c, c->d : all true.
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause([Lit::pos(v[0])]);
        for i in 0..3 {
            s.add_clause([Lit::neg(v[i]), Lit::pos(v[i + 1])]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().unwrap().iter().all(|&b| b));
    }

    fn pigeonhole(holes: usize) -> (Solver, Vec<Vec<Var>>) {
        // holes+1 pigeons into `holes` holes: unsat.
        let pigeons = holes + 1;
        let mut s = Solver::new();
        let vars: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in 0..pigeons {
            s.add_clause(vars[p].iter().map(|&v| Lit::pos(v)));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([Lit::neg(vars[p1][h]), Lit::neg(vars[p2][h])]);
                }
            }
        }
        (s, vars)
    }

    #[test]
    fn pigeonhole_principle_is_unsat() {
        for holes in 2..=5 {
            let (mut s, _) = pigeonhole(holes);
            assert_eq!(s.solve(), SolveResult::Unsat, "PHP({holes})");
        }
    }

    #[test]
    fn exactly_fitting_pigeons_is_sat() {
        // 4 pigeons, 4 holes (drop the last pigeon from PHP(4)).
        let holes = 4;
        let mut s = Solver::new();
        let vars: Vec<Vec<Var>> = (0..holes)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in 0..holes {
            s.add_clause(vars[p].iter().map(|&v| Lit::pos(v)));
        }
        for h in 0..holes {
            for p1 in 0..holes {
                for p2 in (p1 + 1)..holes {
                    s.add_clause([Lit::neg(vars[p1][h]), Lit::neg(vars[p2][h])]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Verify the model is a valid assignment of pigeons to holes.
        let m = s.model().unwrap().to_vec();
        for p in 0..holes {
            assert!(vars[p].iter().any(|v| m[v.index()]));
        }
    }

    #[test]
    fn model_satisfies_all_clauses_on_random_instance() {
        // Deterministic xorshift-based random 3-SAT near the threshold.
        let mut state = 0x12345678u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..20 {
            let n = 30;
            let m = 100;
            let mut s = Solver::new();
            let vars = lits(&mut s, n);
            let mut clause_set = Vec::new();
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = vars[(rand() % n as u64) as usize];
                    c.push(Lit::new(v, rand() % 2 == 0));
                }
                clause_set.push(c.clone());
                s.add_clause(c);
            }
            if s.solve() == SolveResult::Sat {
                let model = s.model().unwrap();
                for c in &clause_set {
                    assert!(
                        c.iter().any(|l| model[l.var().index()] == l.is_pos()),
                        "model violates clause {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn solver_is_reusable_and_monotone() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([Lit::pos(v[0]), Lit::pos(v[1])]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([Lit::neg(v[0])]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().unwrap()[v[1].index()]);
        s.add_clause([Lit::neg(v[1])]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn stats_are_populated() {
        let (mut s, _) = pigeonhole(4);
        s.solve();
        let stats = s.stats();
        assert!(stats.conflicts > 0);
        assert!(stats.decisions > 0);
        assert!(stats.propagations > 0);
        assert_eq!(stats.vars, 20);
    }

    #[test]
    fn raised_interrupt_abandons_solve() {
        let (mut s, _) = pigeonhole(6);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Arc::clone(&flag));
        assert_eq!(s.solve(), SolveResult::Interrupted);
        // The solver stays usable: lower the flag and finish the solve.
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unraised_interrupt_changes_nothing() {
        let (mut s, _) = pigeonhole(4);
        s.set_interrupt(Arc::new(AtomicBool::new(false)));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unsat_under_assumptions_leaves_solver_usable() {
        // (a | b), assume !a & !b: UNSAT under assumptions, but the
        // instance itself stays satisfiable and the solver stays ok.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([Lit::pos(v[0]), Lit::pos(v[1])]);
        assert_eq!(
            s.solve_under(&[Lit::neg(v[0]), Lit::neg(v[1])]),
            SolveResult::Unsat
        );
        assert!(!s.failed_assumptions().is_empty());
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.failed_assumptions().is_empty());
        // And a satisfiable assumption set works after the failed one.
        assert_eq!(s.solve_under(&[Lit::neg(v[0])]), SolveResult::Sat);
        assert!(s.model().unwrap()[v[1].index()]);
    }

    #[test]
    fn failed_assumptions_are_a_relevant_subset() {
        // x0, assume [x5 (irrelevant), !x0]: only !x0 conflicts.
        let mut s = Solver::new();
        let v = lits(&mut s, 6);
        s.add_clause([Lit::pos(v[0])]);
        let assumptions = [Lit::pos(v[5]), Lit::neg(v[0])];
        assert_eq!(s.solve_under(&assumptions), SolveResult::Unsat);
        for &f in s.failed_assumptions() {
            assert!(assumptions.contains(&f), "{f:?} was never assumed");
        }
        assert!(s.failed_assumptions().contains(&Lit::neg(v[0])));
        assert!(!s.failed_assumptions().contains(&Lit::pos(v[5])));
    }

    #[test]
    fn contradictory_assumptions_are_unsat_but_recoverable() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert_eq!(
            s.solve_under(&[Lit::pos(v), Lit::neg(v)]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn sat_under_assumptions_honors_them() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        assert_eq!(
            s.solve_under(&[Lit::neg(v[0]), Lit::neg(v[2])]),
            SolveResult::Sat
        );
        let m = s.model().unwrap();
        assert!(!m[v[0].index()] && m[v[1].index()] && !m[v[2].index()]);
    }

    #[test]
    fn real_unsat_still_poisons_under_assumptions() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v)]);
        s.add_clause([Lit::neg(v)]);
        assert_eq!(s.solve_under(&[Lit::pos(v)]), SolveResult::Unsat);
        assert!(s.failed_assumptions().is_empty(), "not assumption-caused");
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn reuse_stats_track_carried_work() {
        // 4 pigeons in 4 holes is SAT but needs real search: the second
        // solve starts with learned clauses and warm activity.
        let holes = 4;
        let mut s = Solver::new();
        let vars: Vec<Vec<Var>> = (0..holes)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in 0..holes {
            s.add_clause(vars[p].iter().map(|&v| Lit::pos(v)));
        }
        for h in 0..holes {
            for p1 in 0..holes {
                for p2 in (p1 + 1)..holes {
                    s.add_clause([Lit::neg(vars[p1][h]), Lit::neg(vars[p2][h])]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.stats().solves, 1);
        assert_eq!(s.stats().carried_learned, 0);
        assert_eq!(s.stats().carried_activity, 0);
        // Block models until the solver has had to learn something.
        let mut rounds = 0;
        while s.stats().conflicts == 0 {
            assert_eq!(s.solve(), SolveResult::Sat);
            let m = s.model().unwrap().to_vec();
            let blocking: Vec<Lit> = (0..s.num_vars())
                .map(|i| Lit::new(Var::from_index(i), !m[i]))
                .collect();
            s.add_clause(blocking);
            rounds += 1;
            assert!(rounds < 64, "PHP-sat(4) ran out of models conflict-free");
        }
        let first = s.stats();
        s.solve();
        let second = s.stats();
        assert_eq!(second.solves, first.solves + 1);
        assert_eq!(second.carried_learned, first.learned);
        assert!(second.carried_activity > 0, "activity should carry over");
        let delta = second.since(first);
        assert_eq!(delta.solves, second.solves, "gauges pass through");
        assert!(delta.conflicts <= second.conflicts);
    }

    #[test]
    fn fresh_solve_under_restarts_at_the_base_limit() {
        // Regression test for the Luby drift bug: the restart limit was
        // seeded from the solver-lifetime `stats.restarts`, so a
        // long-lived incremental solver started each new call deep in
        // the Luby sequence. Simulate that history, then check the next
        // call still restarts eagerly.
        let (mut s, _) = pigeonhole(6);
        s.stats.restarts = (1 << 20) - 2;
        let before = s.stats();
        assert_eq!(s.solve(), SolveResult::Unsat);
        let delta = s.stats().since(before);
        assert!(
            delta.conflicts > 100,
            "test instance too easy to exercise restarts ({} conflicts)",
            delta.conflicts
        );
        // Under the bug the first limit would be luby(2^20 - 1) * 100 =
        // 2^19 * 100 conflicts — unreachable here, so no restart fires.
        assert!(
            delta.restarts >= 1,
            "first restart of a fresh call must fire at the base limit"
        );
    }

    #[test]
    fn diversified_zero_is_the_default_config() {
        assert_eq!(SolverConfig::diversified(0), SolverConfig::default());
        assert_eq!(Solver::new().config(), SolverConfig::default());
    }

    #[test]
    fn diversified_configs_are_distinct() {
        let configs: Vec<SolverConfig> = (0..8).map(SolverConfig::diversified).collect();
        for i in 0..configs.len() {
            for j in (i + 1)..configs.len() {
                assert_ne!(configs[i], configs[j], "configs {i} and {j} collide");
            }
        }
    }

    #[test]
    fn diversified_configs_agree_on_verdicts() {
        for i in 0..6 {
            let cfg = SolverConfig::diversified(i);
            // PHP(4) is UNSAT under every strategy...
            let holes = 4;
            let mut s = Solver::with_config(cfg);
            let vars: Vec<Vec<Var>> = (0..holes + 1)
                .map(|_| (0..holes).map(|_| s.new_var()).collect())
                .collect();
            for row in &vars {
                s.add_clause(row.iter().map(|&v| Lit::pos(v)));
            }
            for h in 0..holes {
                for p1 in 0..holes + 1 {
                    for p2 in (p1 + 1)..holes + 1 {
                        s.add_clause([Lit::neg(vars[p1][h]), Lit::neg(vars[p2][h])]);
                    }
                }
            }
            assert_eq!(s.solve(), SolveResult::Unsat, "config {i} ({cfg})");
            // ...and a satisfiable chain is SAT with a valid model.
            let mut s = Solver::with_config(cfg);
            let v = lits(&mut s, 4);
            s.add_clause([Lit::pos(v[0])]);
            for k in 0..3 {
                s.add_clause([Lit::neg(v[k]), Lit::pos(v[k + 1])]);
            }
            assert_eq!(s.solve(), SolveResult::Sat, "config {i} ({cfg})");
            assert!(s.model().unwrap().iter().all(|&b| b));
        }
    }

    #[test]
    fn forced_reductions_are_deterministic_and_sound() {
        // Drive `reduce_learned` hard (threshold 8 instead of 4000) and
        // check the verdict is still right and two identical runs do
        // identical work — the one-pass locked-clause computation must
        // not change which clauses survive a reduction.
        let run = || {
            let (mut s, _) = pigeonhole(5);
            s.reduce_threshold = 8;
            let result = s.solve();
            (result, s.stats())
        };
        let (r1, stats1) = run();
        let (r2, stats2) = run();
        assert_eq!(r1, SolveResult::Unsat);
        assert_eq!(r1, r2);
        assert_eq!(stats1, stats2, "reductions must behave identically");
        assert!(stats1.conflicts > 8, "instance must actually reduce");
    }

    #[test]
    fn model_value_reads_the_model() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([Lit::pos(v[0])]);
        s.add_clause([Lit::neg(v[1])]);
        assert_eq!(s.model_value(v[0]), None, "no model before solving");
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(true));
        assert_eq!(s.model_value(v[1]), Some(false));
        let late = s.new_var();
        assert_eq!(s.model_value(late), None, "created after the model");
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, expected);
    }
}
