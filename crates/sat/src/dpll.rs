//! A deliberately simple DPLL solver.
//!
//! This is the "previous solver" in the paper's solver-substitution
//! story and the oracle for differential testing of the CDCL engine. It
//! does unit propagation and chronological backtracking, nothing else, so
//! it is easy to audit but exponential in practice.

use crate::lit::{Lit, Var};

/// Result of a [`solve`] call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DpllResult {
    /// Satisfiable, with a witness assignment indexed by variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl DpllResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, DpllResult::Sat(_))
    }
}

/// Solves a CNF formula over `num_vars` variables by DPLL.
///
/// Clauses use the same [`Lit`] representation as the CDCL solver.
///
/// # Panics
///
/// Panics if a literal mentions a variable `>= num_vars`.
pub fn solve(num_vars: usize, clauses: &[Vec<Lit>]) -> DpllResult {
    for c in clauses {
        for l in c {
            assert!(l.var().index() < num_vars, "literal out of range");
        }
    }
    let mut assignment: Vec<Option<bool>> = vec![None; num_vars];
    if search(clauses, &mut assignment) {
        DpllResult::Sat(assignment.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        DpllResult::Unsat
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ClauseState {
    Satisfied,
    Conflict,
    Unit(Lit),
    Open,
}

fn clause_state(clause: &[Lit], assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned = None;
    let mut unassigned_count = 0;
    for &l in clause {
        match assignment[l.var().index()] {
            Some(v) if v == l.is_pos() => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(l);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("one unassigned literal")),
        _ => ClauseState::Open,
    }
}

fn search(clauses: &[Vec<Lit>], assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint.
    let mut propagated: Vec<Var> = Vec::new();
    loop {
        let mut changed = false;
        for clause in clauses {
            match clause_state(clause, assignment) {
                ClauseState::Conflict => {
                    for &v in &propagated {
                        assignment[v.index()] = None;
                    }
                    return false;
                }
                ClauseState::Unit(l) => {
                    assignment[l.var().index()] = Some(l.is_pos());
                    propagated.push(l.var());
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Pick an unassigned variable; if none, the formula is satisfied
    // (every clause is Satisfied or vacuously Open with no unassigned —
    // impossible — so check explicitly).
    let branch = assignment.iter().position(|a| a.is_none());
    match branch {
        None => true,
        Some(v) => {
            for value in [true, false] {
                assignment[v] = Some(value);
                if search(clauses, assignment) {
                    return true;
                }
                assignment[v] = None;
            }
            for &v in &propagated {
                assignment[v.index()] = None;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn trivial_cases() {
        assert!(solve(0, &[]).is_sat());
        assert_eq!(solve(1, &[vec![]]), DpllResult::Unsat);
        assert!(solve(1, &[vec![Lit::pos(v(0))]]).is_sat());
        assert_eq!(
            solve(1, &[vec![Lit::pos(v(0))], vec![Lit::neg(v(0))]]),
            DpllResult::Unsat
        );
    }

    #[test]
    fn model_is_returned() {
        let r = solve(
            2,
            &[vec![Lit::pos(v(0)), Lit::pos(v(1))], vec![Lit::neg(v(0))]],
        );
        match r {
            DpllResult::Sat(m) => {
                assert!(!m[0]);
                assert!(m[1]);
            }
            DpllResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn small_pigeonhole_unsat() {
        // 3 pigeons, 2 holes.
        let mut clauses = Vec::new();
        let var = |p: usize, h: usize| v(p * 2 + h);
        for p in 0..3 {
            clauses.push(vec![Lit::pos(var(p, 0)), Lit::pos(var(p, 1))]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    clauses.push(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        assert_eq!(solve(6, &clauses), DpllResult::Unsat);
    }
}
