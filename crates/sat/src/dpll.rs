//! A deliberately simple DPLL solver.
//!
//! This is the "previous solver" in the paper's solver-substitution
//! story and the oracle for differential testing of the CDCL engine. It
//! does unit propagation and chronological backtracking, nothing else, so
//! it is easy to audit but exponential in practice.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::lit::{Lit, Var};

/// Result of a [`solve`] call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DpllResult {
    /// Satisfiable, with a witness assignment indexed by variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// The solve was abandoned because the interrupt flag passed to
    /// [`solve_interruptible`] was raised. The answer is unknown.
    Interrupted,
}

impl DpllResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, DpllResult::Sat(_))
    }
}

/// Solves a CNF formula over `num_vars` variables by DPLL.
///
/// Clauses use the same [`Lit`] representation as the CDCL solver.
///
/// # Panics
///
/// Panics if a literal mentions a variable `>= num_vars`.
pub fn solve(num_vars: usize, clauses: &[Vec<Lit>]) -> DpllResult {
    solve_interruptible(num_vars, clauses, None)
}

/// As [`solve`], but checks `interrupt` every 1024 clause evaluations
/// (the same checkpoint cadence as the CDCL solver) and returns
/// [`DpllResult::Interrupted`] once the flag is raised — so a losing
/// speculative probe stops promptly instead of running to completion.
///
/// # Panics
///
/// Panics if a literal mentions a variable `>= num_vars`.
pub fn solve_interruptible(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    interrupt: Option<&AtomicBool>,
) -> DpllResult {
    for c in clauses {
        for l in c {
            assert!(l.var().index() < num_vars, "literal out of range");
        }
    }
    let mut assignment: Vec<Option<bool>> = vec![None; num_vars];
    let mut steps = 0u32;
    match search(clauses, &mut assignment, interrupt, &mut steps) {
        Some(true) => DpllResult::Sat(assignment.into_iter().map(|a| a.unwrap_or(false)).collect()),
        Some(false) => DpllResult::Unsat,
        None => DpllResult::Interrupted,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ClauseState {
    Satisfied,
    Conflict,
    Unit(Lit),
    Open,
}

fn clause_state(clause: &[Lit], assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned = None;
    let mut unassigned_count = 0;
    for &l in clause {
        match assignment[l.var().index()] {
            Some(v) if v == l.is_pos() => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(l);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("one unassigned literal")),
        _ => ClauseState::Open,
    }
}

/// One DPLL node. `Some(sat?)` is an answer; `None` means the interrupt
/// flag was observed raised at a checkpoint and the search is abandoned
/// (partial assignments are not unwound — the caller discards them).
fn search(
    clauses: &[Vec<Lit>],
    assignment: &mut Vec<Option<bool>>,
    interrupt: Option<&AtomicBool>,
    steps: &mut u32,
) -> Option<bool> {
    // Unit propagation to fixpoint.
    let mut propagated: Vec<Var> = Vec::new();
    loop {
        let mut changed = false;
        for clause in clauses {
            // Cancellation checkpoint, amortized exactly like the CDCL
            // solver's: one relaxed load every 1024 clause evaluations.
            *steps += 1;
            if *steps >= 1024 {
                *steps = 0;
                if interrupt.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
                    return None;
                }
            }
            match clause_state(clause, assignment) {
                ClauseState::Conflict => {
                    for &v in &propagated {
                        assignment[v.index()] = None;
                    }
                    return Some(false);
                }
                ClauseState::Unit(l) => {
                    assignment[l.var().index()] = Some(l.is_pos());
                    propagated.push(l.var());
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Pick an unassigned variable; if none, the formula is satisfied
    // (every clause is Satisfied or vacuously Open with no unassigned —
    // impossible — so check explicitly).
    let branch = assignment.iter().position(|a| a.is_none());
    match branch {
        None => Some(true),
        Some(v) => {
            for value in [true, false] {
                assignment[v] = Some(value);
                match search(clauses, assignment, interrupt, steps) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
                assignment[v] = None;
            }
            for &v in &propagated {
                assignment[v.index()] = None;
            }
            Some(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn trivial_cases() {
        assert!(solve(0, &[]).is_sat());
        assert_eq!(solve(1, &[vec![]]), DpllResult::Unsat);
        assert!(solve(1, &[vec![Lit::pos(v(0))]]).is_sat());
        assert_eq!(
            solve(1, &[vec![Lit::pos(v(0))], vec![Lit::neg(v(0))]]),
            DpllResult::Unsat
        );
    }

    #[test]
    fn model_is_returned() {
        let r = solve(
            2,
            &[vec![Lit::pos(v(0)), Lit::pos(v(1))], vec![Lit::neg(v(0))]],
        );
        match r {
            DpllResult::Sat(m) => {
                assert!(!m[0]);
                assert!(m[1]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    fn pigeonhole(holes: usize) -> (usize, Vec<Vec<Lit>>) {
        let pigeons = holes + 1;
        let mut clauses = Vec::new();
        let var = |p: usize, h: usize| v(p * holes + h);
        for p in 0..pigeons {
            clauses.push((0..holes).map(|h| Lit::pos(var(p, h))).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    clauses.push(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        (pigeons * holes, clauses)
    }

    #[test]
    fn small_pigeonhole_unsat() {
        let (nv, clauses) = pigeonhole(2);
        assert_eq!(solve(nv, &clauses), DpllResult::Unsat);
    }

    #[test]
    fn raised_interrupt_abandons_solve() {
        let (nv, clauses) = pigeonhole(6);
        let flag = AtomicBool::new(true);
        assert_eq!(
            solve_interruptible(nv, &clauses, Some(&flag)),
            DpllResult::Interrupted
        );
        // Lowering the flag lets the same instance finish.
        flag.store(false, Ordering::Relaxed);
        assert_eq!(
            solve_interruptible(nv, &clauses, Some(&flag)),
            DpllResult::Unsat
        );
    }

    #[test]
    fn unraised_interrupt_changes_nothing() {
        let (nv, clauses) = pigeonhole(3);
        let flag = AtomicBool::new(false);
        assert_eq!(
            solve_interruptible(nv, &clauses, Some(&flag)),
            DpllResult::Unsat
        );
    }
}
