//! Pluggable solver backends.
//!
//! The paper stresses that Denali's architecture "separates this solver
//! so effectively from the rest of the code generator that we can easily
//! substitute the current champion satisfiability solver". This module
//! is that seam made explicit: [`SolverBackend`] captures the interface
//! the search layer needs (incremental variable/clause creation,
//! assumption solving, interrupts, model/failed-assumption extraction,
//! work counters), and both engines in this crate implement it — the
//! CDCL [`Solver`] natively, and the naive DPLL engine through the
//! [`DpllSolver`] adapter. A conformance suite in
//! `tests/backend_conformance.rs` runs the same scenarios against both.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use crate::dpll::{self, DpllResult};
use crate::lit::{Lit, Var};
use crate::solver::{SolveResult, Solver, SolverStats};

/// The solving interface the probe layer is written against.
///
/// Contract notes, pinned by the conformance suite:
/// - [`SolverBackend::solve_under`] with an empty slice is
///   [`SolverBackend::solve`].
/// - After an UNSAT-under-assumptions verdict,
///   [`SolverBackend::failed_assumptions`] is a subset of the assumption
///   slice (backends may over-approximate up to the full slice, never
///   invent literals).
/// - After a SAT verdict, [`SolverBackend::model_value`] is `Some` for
///   every variable created before the solve and the assignment
///   satisfies every added clause and assumption.
/// - A raised interrupt flag turns an in-flight solve into
///   [`SolveResult::Interrupted`] and leaves the backend reusable.
pub trait SolverBackend {
    /// Creates a fresh variable.
    fn new_var(&mut self) -> Var;
    /// Ensures at least `n` variables exist.
    fn reserve_vars(&mut self, n: usize);
    /// Adds a clause over existing variables.
    fn add_clause(&mut self, lits: &[Lit]);
    /// Solves the current clause set.
    fn solve(&mut self) -> SolveResult;
    /// Solves the current clause set under temporary assumptions.
    fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult;
    /// Installs a cancellation flag checked during solves.
    fn set_interrupt(&mut self, flag: Arc<AtomicBool>);
    /// The last model's value for `var`, or `None` without a model.
    fn model_value(&self, var: Var) -> Option<bool>;
    /// After UNSAT under assumptions: the assumptions the refutation
    /// depended on.
    fn failed_assumptions(&self) -> &[Lit];
    /// Work counters for the lifetime of this backend.
    fn stats(&self) -> SolverStats;
}

impl SolverBackend for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn reserve_vars(&mut self, n: usize) {
        Solver::reserve_vars(self, n);
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        Solver::add_clause(self, lits.iter().copied());
    }

    fn solve(&mut self) -> SolveResult {
        Solver::solve(self)
    }

    fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        Solver::solve_under(self, assumptions)
    }

    fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        Solver::set_interrupt(self, flag);
    }

    fn model_value(&self, var: Var) -> Option<bool> {
        Solver::model_value(self, var)
    }

    fn failed_assumptions(&self) -> &[Lit] {
        Solver::failed_assumptions(self)
    }

    fn stats(&self) -> SolverStats {
        Solver::stats(self)
    }
}

/// [`SolverBackend`] adapter over the naive [`dpll`] engine.
///
/// The DPLL solver is a pure function over a clause list, so this
/// wrapper owns the incremental state: it stores clauses as they are
/// added and re-solves from scratch on every call, with assumptions
/// appended as temporary unit clauses. `failed_assumptions` reports the
/// whole assumption slice (a valid over-approximation — DPLL performs no
/// conflict analysis to narrow it). Search counters in
/// [`SolverStats`] stay zero; only the instance gauges (`vars`,
/// `clauses`, `solves`) are tracked.
#[derive(Clone, Default, Debug)]
pub struct DpllSolver {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    model: Option<Vec<bool>>,
    failed: Vec<Lit>,
    interrupt: Option<Arc<AtomicBool>>,
    stats: SolverStats,
}

impl DpllSolver {
    /// Creates an empty solver.
    pub fn new() -> DpllSolver {
        DpllSolver::default()
    }
}

impl SolverBackend for DpllSolver {
    fn new_var(&mut self) -> Var {
        let var = Var::from_index(self.num_vars);
        self.num_vars += 1;
        self.stats.vars = self.num_vars as u64;
        var
    }

    fn reserve_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
        self.stats.vars = self.num_vars as u64;
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        for l in lits {
            assert!(
                l.var().index() < self.num_vars,
                "unknown variable in clause"
            );
        }
        self.clauses.push(lits.to_vec());
        self.stats.clauses += 1;
    }

    fn solve(&mut self) -> SolveResult {
        self.solve_under(&[])
    }

    fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        for a in assumptions {
            assert!(
                a.var().index() < self.num_vars,
                "unknown variable in assumption"
            );
        }
        self.stats.solves += 1;
        self.model = None;
        self.failed.clear();
        let mut clauses = self.clauses.clone();
        clauses.extend(assumptions.iter().map(|&a| vec![a]));
        match dpll::solve_interruptible(self.num_vars, &clauses, self.interrupt.as_deref()) {
            DpllResult::Sat(model) => {
                self.model = Some(model);
                SolveResult::Sat
            }
            DpllResult::Unsat => {
                self.failed = assumptions.to_vec();
                SolveResult::Unsat
            }
            DpllResult::Interrupted => SolveResult::Interrupted,
        }
    }

    fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    fn model_value(&self, var: Var) -> Option<bool> {
        self.model
            .as_ref()
            .and_then(|m| m.get(var.index()).copied())
    }

    fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }
}
