//! Differential testing: the CDCL solver against the naive DPLL oracle
//! on random instances, plus model validity and DIMACS round-trip
//! checks.

use denali_prng::{forall, Rng};
use denali_sat::{dpll, Lit, SolveResult, Solver, Var};

/// A random CNF: `(num_vars, clauses)` with clauses of 1..=4 literals.
fn random_cnf(rng: &mut Rng, max_vars: usize, max_clauses: usize) -> (usize, Vec<Vec<Lit>>) {
    let nv = rng.range(2, max_vars as u64 + 1) as usize;
    let num_clauses = rng.below_usize(max_clauses + 1);
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = rng.range(1, 5) as usize;
            (0..len)
                .map(|_| Lit::new(Var::from_index(rng.below_usize(nv)), rng.next_bool()))
                .collect()
        })
        .collect();
    (nv, clauses)
}

fn model_satisfies(model: &[bool], clauses: &[Vec<Lit>]) -> bool {
    clauses
        .iter()
        .all(|c| c.iter().any(|l| model[l.var().index()] == l.is_pos()))
}

#[test]
fn cdcl_agrees_with_dpll() {
    forall("cdcl_agrees_with_dpll", 200, |rng| {
        let (nv, clauses) = random_cnf(rng, 12, 60);
        let mut solver = Solver::new();
        solver.reserve_vars(nv);
        for c in &clauses {
            solver.add_clause(c.iter().copied());
        }
        let cdcl = solver.solve();
        let oracle = dpll::solve(nv, &clauses);
        match (cdcl, &oracle) {
            (SolveResult::Sat, dpll::DpllResult::Sat(_)) => {
                let model = solver.model().expect("sat has model");
                assert!(model_satisfies(model, &clauses), "CDCL model invalid");
            }
            (SolveResult::Unsat, dpll::DpllResult::Unsat) => {}
            _ => panic!("CDCL={cdcl:?} disagrees with DPLL={oracle:?}"),
        }
    });
}

#[test]
fn solve_under_agrees_with_unit_clauses_and_recovers() {
    // solve_under(assumptions) must answer exactly like a fresh solver
    // with the assumptions added as unit clauses — and must leave the
    // incremental solver's plain-solve answer unchanged afterwards.
    forall("solve_under_agrees_with_unit_clauses", 200, |rng| {
        let (nv, clauses) = random_cnf(rng, 10, 40);
        let num_assumptions = rng.below_usize(4);
        let assumptions: Vec<Lit> = (0..num_assumptions)
            .map(|_| Lit::new(Var::from_index(rng.below_usize(nv)), rng.next_bool()))
            .collect();

        let mut incremental = Solver::new();
        incremental.reserve_vars(nv);
        for c in &clauses {
            incremental.add_clause(c.iter().copied());
        }
        let base = dpll::solve(nv, &clauses).is_sat();

        let mut fresh = Solver::new();
        fresh.reserve_vars(nv);
        for c in &clauses {
            fresh.add_clause(c.iter().copied());
        }
        for &a in &assumptions {
            fresh.add_clause([a]);
        }
        let expected = fresh.solve();

        let got = incremental.solve_under(&assumptions);
        assert_eq!(got, expected, "assumptions {assumptions:?}");
        if got == SolveResult::Sat {
            let model = incremental.model().expect("sat has model");
            assert!(model_satisfies(model, &clauses), "model invalid");
            for &a in &assumptions {
                assert_eq!(
                    model[a.var().index()],
                    a.is_pos(),
                    "model violates assumption {a:?}"
                );
            }
        } else if base {
            // UNSAT was caused by the assumptions alone: the failed set
            // must be a subset of them and the solver must stay usable.
            assert!(
                !incremental.failed_assumptions().is_empty(),
                "assumption-caused UNSAT must report a failed set"
            );
            for f in incremental.failed_assumptions() {
                assert!(assumptions.contains(f), "{f:?} was never assumed");
            }
        }
        // The assumptions must not have poisoned the solver.
        assert_eq!(
            incremental.solve() == SolveResult::Sat,
            base,
            "plain solve changed after solve_under"
        );
    });
}

#[test]
fn dimacs_round_trip_preserves_formula_and_satisfiability() {
    forall("dimacs_round_trip", 200, |rng| {
        let (nv, clauses) = random_cnf(rng, 10, 40);
        let cnf = denali_sat::dimacs::Cnf {
            num_vars: nv,
            clauses: clauses.clone(),
        };
        let parsed = denali_sat::dimacs::parse(&cnf.to_dimacs()).unwrap();
        assert_eq!(&parsed, &cnf, "to_dimacs -> parse must be the identity");
        let a = cnf.to_solver().solve();
        let b = parsed.to_solver().solve();
        assert_eq!(a, b);
    });
}

#[test]
fn adding_model_negation_eventually_exhausts() {
    forall("adding_model_negation_eventually_exhausts", 50, |rng| {
        // Enumerate models of a tiny formula by blocking clauses; the
        // count must equal brute force.
        let nv = 4 + rng.below_usize(3);
        let num_clauses = 3 + rng.below(5);
        let mut clauses = Vec::new();
        for _ in 0..num_clauses {
            let mut c = Vec::new();
            for _ in 0..3 {
                let v = rng.below_usize(nv);
                c.push(Lit::new(Var::from_index(v), rng.next_bool()));
            }
            clauses.push(c);
        }

        // Brute-force count.
        let mut expected = 0u64;
        for bits in 0..(1u64 << nv) {
            let model: Vec<bool> = (0..nv).map(|i| bits >> i & 1 == 1).collect();
            if model_satisfies(&model, &clauses) {
                expected += 1;
            }
        }

        // Solver enumeration.
        let mut solver = Solver::new();
        solver.reserve_vars(nv);
        for c in &clauses {
            solver.add_clause(c.iter().copied());
        }
        let mut found = 0u64;
        while solver.solve() == SolveResult::Sat {
            found += 1;
            assert!(found <= expected, "solver produced too many models");
            let model = solver.model().unwrap().to_vec();
            let blocking: Vec<Lit> = (0..nv)
                .map(|i| Lit::new(Var::from_index(i), !model[i]))
                .collect();
            solver.add_clause(blocking);
        }
        assert_eq!(found, expected);
    });
}
