//! Differential testing: the CDCL solver against the naive DPLL oracle
//! on random instances, plus model validity checks.

use denali_sat::{dpll, Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// Strategy producing a random CNF: (num_vars, clauses).
fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = (usize, Vec<Vec<Lit>>)> {
    (2..=max_vars).prop_flat_map(move |nv| {
        let clause = proptest::collection::vec((0..nv, any::<bool>()), 1..=4).prop_map(
            move |lits| {
                lits.into_iter()
                    .map(|(v, sign)| Lit::new(Var::from_index(v), sign))
                    .collect::<Vec<_>>()
            },
        );
        (
            Just(nv),
            proptest::collection::vec(clause, 0..=max_clauses),
        )
    })
}

fn model_satisfies(model: &[bool], clauses: &[Vec<Lit>]) -> bool {
    clauses
        .iter()
        .all(|c| c.iter().any(|l| model[l.var().index()] == l.is_pos()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn cdcl_agrees_with_dpll((nv, clauses) in cnf_strategy(12, 60)) {
        let mut solver = Solver::new();
        solver.reserve_vars(nv);
        for c in &clauses {
            solver.add_clause(c.iter().copied());
        }
        let cdcl = solver.solve();
        let oracle = dpll::solve(nv, &clauses);
        match (cdcl, &oracle) {
            (SolveResult::Sat, dpll::DpllResult::Sat(_)) => {
                let model = solver.model().expect("sat has model");
                prop_assert!(model_satisfies(model, &clauses), "CDCL model invalid");
            }
            (SolveResult::Unsat, dpll::DpllResult::Unsat) => {}
            _ => prop_assert!(false, "CDCL={cdcl:?} disagrees with DPLL={oracle:?}"),
        }
    }

    #[test]
    fn dimacs_round_trip_preserves_satisfiability((nv, clauses) in cnf_strategy(10, 40)) {
        let cnf = denali_sat::dimacs::Cnf { num_vars: nv, clauses: clauses.clone() };
        let parsed = denali_sat::dimacs::parse(&cnf.to_dimacs()).unwrap();
        prop_assert_eq!(&parsed, &cnf);
        let a = cnf.to_solver().solve();
        let b = parsed.to_solver().solve();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn adding_model_negation_eventually_exhausts(seed in 0u64..50) {
        // Enumerate models of a tiny formula by blocking clauses; the
        // count must equal brute force.
        let nv = 4 + (seed % 3) as usize;
        let mut clauses = Vec::new();
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut rand = move || { state ^= state << 13; state ^= state >> 7; state ^= state << 17; state };
        for _ in 0..(3 + seed % 5) {
            let mut c = Vec::new();
            for _ in 0..3 {
                let v = (rand() % nv as u64) as usize;
                c.push(Lit::new(Var::from_index(v), rand() % 2 == 0));
            }
            clauses.push(c);
        }

        // Brute-force count.
        let mut expected = 0u64;
        for bits in 0..(1u64 << nv) {
            let model: Vec<bool> = (0..nv).map(|i| bits >> i & 1 == 1).collect();
            if model_satisfies(&model, &clauses) {
                expected += 1;
            }
        }

        // Solver enumeration.
        let mut solver = Solver::new();
        solver.reserve_vars(nv);
        for c in &clauses {
            solver.add_clause(c.iter().copied());
        }
        let mut found = 0u64;
        while solver.solve() == SolveResult::Sat {
            found += 1;
            prop_assert!(found <= expected, "solver produced too many models");
            let model = solver.model().unwrap().to_vec();
            let blocking: Vec<Lit> = (0..nv)
                .map(|i| Lit::new(Var::from_index(i), !model[i]))
                .collect();
            solver.add_clause(blocking);
        }
        prop_assert_eq!(found, expected);
    }
}
