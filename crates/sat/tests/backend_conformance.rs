//! `SolverBackend` conformance suite.
//!
//! Every scenario runs against both engines — the CDCL [`Solver`] and
//! the DPLL adapter — through the trait object interface, so the search
//! layer can treat backends as interchangeable. Portfolio lanes are
//! covered too: each diversified CDCL configuration must satisfy the
//! same contract.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use denali_sat::{DpllSolver, Lit, SolveResult, Solver, SolverBackend, SolverConfig, Var};

/// Runs `scenario` against every backend implementation.
fn for_each_backend(mut scenario: impl FnMut(&mut dyn SolverBackend, &str)) {
    scenario(&mut Solver::new(), "cdcl");
    scenario(&mut DpllSolver::new(), "dpll");
    for i in 1..4 {
        let cfg = SolverConfig::diversified(i);
        scenario(&mut Solver::with_config(cfg), &format!("cdcl[{cfg}]"));
    }
}

fn vars(s: &mut dyn SolverBackend, n: usize) -> Vec<Var> {
    (0..n).map(|_| s.new_var()).collect()
}

/// holes+1 pigeons into `holes` holes: UNSAT, with real search.
fn add_pigeonhole(s: &mut dyn SolverBackend, holes: usize) {
    let pigeons = holes + 1;
    let v: Vec<Vec<Var>> = (0..pigeons).map(|_| vars(s, holes)).collect();
    for p in 0..pigeons {
        let row: Vec<Lit> = v[p].iter().map(|&x| Lit::pos(x)).collect();
        s.add_clause(&row);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause(&[Lit::neg(v[p1][h]), Lit::neg(v[p2][h])]);
            }
        }
    }
}

#[test]
fn empty_problem_is_sat() {
    for_each_backend(|s, name| {
        assert_eq!(s.solve(), SolveResult::Sat, "{name}");
    });
}

#[test]
fn units_force_the_model() {
    for_each_backend(|s, name| {
        let v = vars(s, 2);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[1])]);
        assert_eq!(s.solve(), SolveResult::Sat, "{name}");
        assert_eq!(s.model_value(v[0]), Some(true), "{name}");
        assert_eq!(s.model_value(v[1]), Some(false), "{name}");
    });
}

#[test]
fn model_satisfies_every_clause() {
    for_each_backend(|s, name| {
        let v = vars(s, 4);
        let clauses: Vec<Vec<Lit>> = vec![
            vec![Lit::pos(v[0]), Lit::pos(v[1])],
            vec![Lit::neg(v[0]), Lit::pos(v[2])],
            vec![Lit::neg(v[1]), Lit::neg(v[2]), Lit::pos(v[3])],
            vec![Lit::neg(v[3]), Lit::neg(v[0])],
        ];
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveResult::Sat, "{name}");
        for c in &clauses {
            assert!(
                c.iter().any(|l| s.model_value(l.var()) == Some(l.is_pos())),
                "{name}: model violates {c:?}"
            );
        }
    });
}

#[test]
fn pigeonhole_is_unsat() {
    for_each_backend(|s, name| {
        add_pigeonhole(s, 3);
        assert_eq!(s.solve(), SolveResult::Unsat, "{name}");
    });
}

#[test]
fn reserve_vars_creates_addressable_variables() {
    for_each_backend(|s, name| {
        s.reserve_vars(5);
        assert_eq!(s.stats().vars, 5, "{name}");
        // All five are usable in clauses; reserving fewer is a no-op.
        s.reserve_vars(2);
        assert_eq!(s.stats().vars, 5, "{name}");
        s.add_clause(&[Lit::pos(Var::from_index(4))]);
        assert_eq!(s.solve(), SolveResult::Sat, "{name}");
        assert_eq!(s.model_value(Var::from_index(4)), Some(true), "{name}");
    });
}

#[test]
fn solve_under_honors_assumptions_and_is_temporary() {
    for_each_backend(|s, name| {
        let v = vars(s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        assert_eq!(
            s.solve_under(&[Lit::neg(v[0]), Lit::neg(v[2])]),
            SolveResult::Sat,
            "{name}"
        );
        assert_eq!(s.model_value(v[0]), Some(false), "{name}");
        assert_eq!(s.model_value(v[1]), Some(true), "{name}");
        assert_eq!(s.model_value(v[2]), Some(false), "{name}");
        // The assumptions do not persist: the opposite set works next.
        assert_eq!(s.solve_under(&[Lit::neg(v[1])]), SolveResult::Sat, "{name}");
    });
}

#[test]
fn failed_assumptions_are_a_subset_and_solver_stays_usable() {
    for_each_backend(|s, name| {
        let v = vars(s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        let assumptions = [Lit::neg(v[0]), Lit::neg(v[1])];
        assert_eq!(s.solve_under(&assumptions), SolveResult::Unsat, "{name}");
        for f in s.failed_assumptions() {
            assert!(assumptions.contains(f), "{name}: {f:?} never assumed");
        }
        // UNSAT under assumptions must not poison the instance.
        assert_eq!(s.solve(), SolveResult::Sat, "{name}");
        assert_eq!(s.solve_under(&[Lit::neg(v[0])]), SolveResult::Sat, "{name}");
        assert_eq!(s.model_value(v[1]), Some(true), "{name}");
    });
}

#[test]
fn raised_interrupt_abandons_and_backend_recovers() {
    for_each_backend(|s, name| {
        add_pigeonhole(s, 6);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Arc::clone(&flag));
        assert_eq!(s.solve(), SolveResult::Interrupted, "{name}");
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(), SolveResult::Unsat, "{name}");
    });
}

#[test]
fn stats_track_instance_gauges() {
    for_each_backend(|s, name| {
        let v = vars(s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        s.solve();
        s.solve();
        let stats = s.stats();
        assert_eq!(stats.vars, 3, "{name}");
        assert_eq!(stats.clauses, 2, "{name}");
        assert_eq!(stats.solves, 2, "{name}");
    });
}

#[test]
fn backends_agree_on_random_instances() {
    // Differential check through the trait: both engines must return the
    // same verdict on deterministic random 3-SAT instances.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..16 {
        let n = 12;
        let m = 48;
        let clauses: Vec<Vec<Lit>> = (0..m)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        let v = Var::from_index((rand() % n as u64) as usize);
                        Lit::new(v, rand() % 2 == 0)
                    })
                    .collect()
            })
            .collect();
        let mut verdicts = Vec::new();
        for_each_backend(|s, name| {
            s.reserve_vars(n);
            for c in &clauses {
                s.add_clause(c);
            }
            verdicts.push((name.to_owned(), s.solve()));
        });
        let (_, first) = &verdicts[0];
        for (name, verdict) in &verdicts {
            assert_eq!(verdict, first, "round {round}: {name} disagrees");
        }
    }
}
