#![warn(missing_docs)]

//! The target-architecture description, assembly representation,
//! instruction simulator, and independent schedule validator.
//!
//! The paper's prototype targeted "the Alpha EV6, a quad-issue processor
//! with multiple register banks and extra delays for moving values
//! between banks, almost all of whose complexity is modeled by our code
//! generator" (§8). We cannot run on EV6 hardware, so this crate models
//! the same structure — four functional units (`U0`, `U1`, `L0`, `L1`),
//! two clusters with a one-cycle cross-cluster bypass penalty, per-opcode
//! unit sets and latencies — and substitutes an instruction-level
//! *simulator* for the hardware, which lets every generated program be
//! executed and compared against the reference semantics.
//!
//! * [`Machine`] — the architectural description consumed by the
//!   constraint generator (Figure 1's "architectural description" input),
//! * [`Program`] / [`Instr`] — scheduled assembly with cycle and unit
//!   annotations (printed in the style of the paper's Figure 4),
//! * [`Simulator`] — executes programs on a register file and sparse
//!   memory using the `denali-term` operation semantics,
//! * [`validate`] — re-checks a claimed schedule against every structural
//!   rule, independently of the SAT encoding that produced it.

mod asm;
mod machine;
mod regalloc;
mod sim;
mod validate;

pub use asm::{Instr, Operand, Program, Reg};
pub use machine::{InstrInfo, Machine, Unit};
pub use regalloc::{allocate, alpha_temp_pool, AllocError};
pub use sim::{SimError, Simulator};
pub use validate::{validate, ValidationError};
