//! Register allocation.
//!
//! The paper's prototype "ignores register allocation" and so does this
//! reproduction's extractor — generated code uses one virtual register
//! per value. This module adds what the paper left out: a linear-scan
//! allocator that renames virtual registers onto the Alpha's physical
//! register file (inputs in the argument registers `$16...`, temporaries
//! in a caller-saved pool), producing listings with the flavor of the
//! paper's Figure 4 register map.
//!
//! Allocation is conservative: a physical register is reused only after
//! the last read of its previous value has *issued strictly earlier*
//! than the new definition, inputs and program outputs are live for the
//! whole program, and the result is re-checked by [`crate::validate`]
//! (which understands reused registers via [`Program::reg_reuse`]).

use std::collections::HashMap;
use std::fmt;

use crate::asm::{Operand, Program, Reg};
use crate::machine::Machine;

/// Allocation failure: more simultaneously-live values than physical
/// registers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AllocError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for AllocError {}

/// The default temporary pool: Alpha integer registers conventionally
/// free in a leaf routine (`$0`–`$8`, `$22`–`$25`, `$27`–`$28`), with
/// `$0` first so single-result routines return in `$0` as Figure 4 does.
pub fn alpha_temp_pool() -> Vec<Reg> {
    let mut pool: Vec<Reg> = (0..=8).map(Reg).collect();
    pool.extend((22..=25).map(Reg));
    pool.extend((27..=28).map(Reg));
    pool
}

/// Renames `program`'s virtual registers onto physical ones: inputs to
/// `$16, $17, ...` (the Alpha argument registers) and temporaries to
/// `pool` via linear scan. Returns a program with
/// [`Program::reg_reuse`] set.
///
/// # Errors
///
/// Fails if the program needs more live temporaries than `pool` offers
/// (this allocator does not spill).
pub fn allocate(program: &Program, machine: &Machine, pool: &[Reg]) -> Result<Program, AllocError> {
    // Input mapping: argument registers, in input order.
    let mut mapping: HashMap<Reg, Reg> = HashMap::new();
    let mut inputs = Vec::new();
    for (idx, &(name, vreg)) in program.inputs.iter().enumerate() {
        let phys = Reg(16 + idx as u32);
        if pool.contains(&phys) {
            return Err(AllocError {
                message: format!("temporary pool overlaps input register {phys}"),
            });
        }
        mapping.insert(vreg, phys);
        inputs.push((name, phys));
    }

    // Live intervals of virtual temporaries: def cycle -> last read cycle.
    let mut def_cycle: HashMap<Reg, u32> = HashMap::new();
    let mut last_use: HashMap<Reg, u32> = HashMap::new();
    let mut instrs = program.instrs.clone();
    instrs.sort_by_key(|i| (i.cycle, i.unit));
    for instr in &instrs {
        if let Some(dest) = instr.dest {
            def_cycle.insert(dest, instr.cycle);
            last_use.entry(dest).or_insert(instr.cycle);
        }
        for operand in &instr.operands {
            if let Operand::Reg(r) = operand {
                let entry = last_use.entry(*r).or_insert(instr.cycle);
                *entry = (*entry).max(instr.cycle);
            }
        }
    }
    // Program outputs stay live to the end.
    let horizon = program.cycles();
    for &(_, vreg) in &program.outputs {
        if def_cycle.contains_key(&vreg) {
            last_use.insert(vreg, horizon);
        }
    }

    // Linear scan over definitions in issue order.
    // busy: physical reg -> cycle after which it is free again.
    let mut busy: HashMap<Reg, u32> = HashMap::new();
    for instr in &instrs {
        let Some(dest) = instr.dest else { continue };
        if mapping.contains_key(&dest) {
            continue; // already mapped (should not happen for SSA input)
        }
        let def = def_cycle[&dest];
        let phys = pool
            .iter()
            .copied()
            .find(|p| busy.get(p).is_none_or(|&free_after| free_after < def))
            .ok_or_else(|| AllocError {
                message: format!(
                    "out of registers at cycle {def}: {} values live, pool has {}",
                    busy.values().filter(|&&f| f >= def).count() + 1,
                    pool.len()
                ),
            })?;
        // The physical register is occupied until the last read of this
        // value has issued (reads at the same cycle as a later def would
        // race, hence strict inequality at reuse time above).
        busy.insert(phys, last_use[&dest]);
        mapping.insert(dest, phys);
    }

    // Rewrite.
    let map = |r: Reg| -> Reg { mapping.get(&r).copied().unwrap_or(r) };
    let mut out = program.clone();
    out.inputs = inputs;
    out.outputs = program
        .outputs
        .iter()
        .map(|&(name, r)| (name, map(r)))
        .collect();
    for instr in &mut out.instrs {
        if let Some(d) = instr.dest {
            instr.dest = Some(map(d));
        }
        for operand in &mut instr.operands {
            if let Operand::Reg(r) = operand {
                *r = map(*r);
            }
        }
    }
    out.reg_reuse = true;
    crate::validate(&out, machine).map_err(|e| AllocError {
        message: format!("allocation produced an invalid program:\n{e}"),
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Instr;
    use crate::machine::Unit;
    use denali_term::Symbol;
    use std::collections::HashMap as Map;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn instr(op: &str, operands: Vec<Operand>, dest: Option<Reg>, cycle: u32, unit: Unit) -> Instr {
        Instr {
            op: sym(op),
            operands,
            dest,
            cycle,
            unit,
            comment: String::new(),
        }
    }

    /// A chain: t1 = a+1 (c0); t2 = t1+1 (c1); t3 = t2+1 (c2); res = t3.
    fn chain_program() -> Program {
        let a = Reg(100);
        Program {
            instrs: vec![
                instr(
                    "addq",
                    vec![Operand::Reg(a), Operand::Imm(1)],
                    Some(Reg(101)),
                    0,
                    Unit::U0,
                ),
                instr(
                    "addq",
                    vec![Operand::Reg(Reg(101)), Operand::Imm(1)],
                    Some(Reg(102)),
                    1,
                    Unit::U0,
                ),
                instr(
                    "addq",
                    vec![Operand::Reg(Reg(102)), Operand::Imm(1)],
                    Some(Reg(103)),
                    2,
                    Unit::U0,
                ),
            ],
            inputs: vec![(sym("a"), a)],
            outputs: vec![(sym("res"), Reg(103))],
            name: "chain".to_owned(),
            reg_reuse: false,
        }
    }

    #[test]
    fn inputs_go_to_argument_registers() {
        let machine = Machine::ev6();
        let allocated = allocate(&chain_program(), &machine, &alpha_temp_pool()).unwrap();
        assert_eq!(allocated.input_reg(sym("a")), Some(Reg(16)));
        assert!(allocated.reg_reuse);
    }

    #[test]
    fn chain_reuses_registers() {
        // In the chain t1 (def 0, read 1), t2 (def 1, read 2), t3 (def 2),
        // t1's register frees strictly after cycle 1, so t3 can reuse it:
        // two registers suffice.
        let machine = Machine::ev6();
        let allocated = allocate(&chain_program(), &machine, &[Reg(0), Reg(1)]).unwrap();
        let used: std::collections::HashSet<Reg> =
            allocated.instrs.iter().filter_map(|i| i.dest).collect();
        assert!(used.len() <= 2, "{used:?}");
    }

    #[test]
    fn output_register_is_remapped() {
        let machine = Machine::ev6();
        let allocated = allocate(&chain_program(), &machine, &alpha_temp_pool()).unwrap();
        let res = allocated.output_reg(sym("res")).unwrap();
        assert!(res.0 <= 28, "physical register expected, got {res}");
        // And $0 is preferred first, per the Figure 4 convention.
        assert_eq!(allocated.instrs[0].dest, Some(Reg(0)));
    }

    #[test]
    fn allocation_preserves_semantics() {
        let machine = Machine::ev6();
        let program = chain_program();
        let allocated = allocate(&program, &machine, &[Reg(0), Reg(1)]).unwrap();
        let sim = crate::Simulator::new(&machine);
        let before = sim.run_named(&program, &[("a", 39)], Map::new()).unwrap();
        let after = sim.run_named(&allocated, &[("a", 39)], Map::new()).unwrap();
        let r_before = program.output_reg(sym("res")).unwrap();
        let r_after = allocated.output_reg(sym("res")).unwrap();
        assert_eq!(before.regs[&r_before], 42);
        assert_eq!(after.regs[&r_after], 42);
    }

    #[test]
    fn pool_exhaustion_is_reported() {
        // Three values live simultaneously (all read at the end) cannot
        // fit two registers.
        let a = Reg(100);
        let program = Program {
            instrs: vec![
                instr(
                    "addq",
                    vec![Operand::Reg(a), Operand::Imm(1)],
                    Some(Reg(101)),
                    0,
                    Unit::U0,
                ),
                instr(
                    "addq",
                    vec![Operand::Reg(a), Operand::Imm(2)],
                    Some(Reg(102)),
                    0,
                    Unit::U1,
                ),
                instr(
                    "addq",
                    vec![Operand::Reg(a), Operand::Imm(3)],
                    Some(Reg(103)),
                    0,
                    Unit::L0,
                ),
                instr(
                    "addq",
                    vec![Operand::Reg(Reg(101)), Operand::Reg(Reg(102))],
                    Some(Reg(104)),
                    1,
                    Unit::U0,
                ),
                instr(
                    "addq",
                    vec![Operand::Reg(Reg(104)), Operand::Reg(Reg(103))],
                    Some(Reg(105)),
                    2,
                    Unit::U0,
                ),
            ],
            inputs: vec![(sym("a"), a)],
            outputs: vec![(sym("res"), Reg(105))],
            name: "wide".to_owned(),
            reg_reuse: false,
        };
        // The wide fixture mixes clusters; use the unclustered model so
        // only register pressure is under test.
        let machine = Machine::ev6_unclustered();
        let err = allocate(&program, &machine, &[Reg(0), Reg(1)]).unwrap_err();
        assert!(err.to_string().contains("out of registers"), "{err}");
        // Three registers still do not suffice under the conservative
        // reuse rule (a register frees only strictly after its last
        // read), since t1/t2 are read in the same cycle t4 is defined;
        // four do.
        assert!(allocate(&program, &machine, &[Reg(0), Reg(1), Reg(2)]).is_err());
        assert!(allocate(&program, &machine, &[Reg(0), Reg(1), Reg(2), Reg(3)]).is_ok());
    }

    #[test]
    fn pool_conflicting_with_inputs_is_rejected() {
        let machine = Machine::ev6();
        let err = allocate(&chain_program(), &machine, &[Reg(16)]).unwrap_err();
        assert!(err.to_string().contains("overlaps input"));
    }
}
