//! The architectural description: functional units, clusters, issue
//! width, and the per-opcode unit/latency table.

use std::collections::HashMap;

use denali_term::Symbol;

/// A functional unit of the EV6-like target.
///
/// `U0`/`U1` are the upper (integer + byte-manipulation + shift) pipes;
/// `L0`/`L1` are the lower (load/store + simple integer) pipes. Units
/// `U0`/`L0` form cluster 0 and `U1`/`L1` cluster 1; results produced on
/// one cluster reach the other a cycle later (the paper's "extra delays
/// for moving values between banks").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Unit {
    /// Upper pipe, cluster 0.
    U0,
    /// Upper pipe, cluster 1.
    U1,
    /// Lower pipe, cluster 0.
    L0,
    /// Lower pipe, cluster 1.
    L1,
}

impl Unit {
    /// All units, in display order.
    pub const ALL: [Unit; 4] = [Unit::U0, Unit::U1, Unit::L0, Unit::L1];

    /// The cluster (register bank) this unit belongs to.
    pub fn cluster(self) -> usize {
        match self {
            Unit::U0 | Unit::L0 => 0,
            Unit::U1 | Unit::L1 => 1,
        }
    }

    /// Display name (`U0`, `L1`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Unit::U0 => "U0",
            Unit::U1 => "U1",
            Unit::L0 => "L0",
            Unit::L1 => "L1",
        }
    }
}

impl std::fmt::Display for Unit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scheduling facts for one opcode.
#[derive(Clone, Debug)]
pub struct InstrInfo {
    /// Units that can execute the opcode.
    pub units: Vec<Unit>,
    /// Result latency in cycles (≥ 1).
    pub latency: u32,
}

/// The machine description consumed by the constraint generator.
///
/// # Example
///
/// ```
/// use denali_arch::Machine;
/// use denali_term::Symbol;
///
/// let ev6 = Machine::ev6();
/// let mul = ev6.info(Symbol::intern("mulq")).unwrap();
/// assert_eq!(mul.latency, 7);
/// assert_eq!(ev6.issue_width(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    name: String,
    issue_width: usize,
    units: Vec<Unit>,
    cluster_delay: u32,
    table: HashMap<Symbol, InstrInfo>,
    /// Overrides of load latency for annotated (cache-missing) loads are
    /// handled by the encoder; this is the default load latency.
    load_latency: u32,
}

const ALL_UNITS: [Unit; 4] = Unit::ALL;
const UPPER: [Unit; 2] = [Unit::U0, Unit::U1];
const LOWER: [Unit; 2] = [Unit::L0, Unit::L1];

impl Machine {
    /// The EV6-like quad-issue, two-cluster description used by all the
    /// paper-reproduction experiments.
    pub fn ev6() -> Machine {
        let mut table = HashMap::new();
        let mut add = |names: &[&str], units: &[Unit], latency: u32| {
            for name in names {
                table.insert(
                    Symbol::intern(name),
                    InstrInfo {
                        units: units.to_vec(),
                        latency,
                    },
                );
            }
        };
        // Simple integer ops run anywhere, single-cycle.
        add(
            &[
                "addq", "subq", "addl", "subl", "s4addq", "s8addq", "s4subq", "s8subq", "and",
                "bis", "xor", "bic", "ornot", "eqv", "cmpeq", "cmplt", "cmple", "cmpult", "cmpule",
                "cmoveq", "cmovne", "ldiq", "mov",
            ],
            &ALL_UNITS,
            1,
        );
        // Shifts and the byte-manipulation unit live on the upper pipes.
        add(
            &[
                "sll", "srl", "sra", "extbl", "extwl", "extll", "extql", "insbl", "inswl", "insll",
                "insql", "mskbl", "mskwl", "mskll", "mskql", "zapnot", "zap", "sextb", "sextw",
            ],
            &UPPER,
            1,
        );
        // Multiply: one pipe, long latency.
        add(&["mulq", "umulh"], &[Unit::U1], 7);
        // Memory: lower pipes; loads have a 3-cycle dcache-hit latency.
        add(&["ldq"], &LOWER, 3);
        add(&["stq"], &LOWER, 1);
        Machine {
            name: "ev6".to_owned(),
            issue_width: 4,
            units: ALL_UNITS.to_vec(),
            cluster_delay: 1,
            table,
            load_latency: 3,
        }
    }

    /// An Itanium-flavored description (the paper's in-progress port:
    /// "It appears that this shift will not require any radical changes
    /// (and the changes will mostly be to the axioms)"). Simplified to
    /// this crate's four-unit frame: two integer units (`U0`/`U1`, which
    /// also run the extract/deposit/shift ops), two memory units
    /// (`L0`/`L1`, which also run simple ALU ops), no clusters, 2-cycle
    /// loads, and the IA-64 idiom instructions `shladd`, `extr_u`,
    /// `dep_z`, `andcm` in place of the Alpha byte ops.
    pub fn ia64like() -> Machine {
        let mut table = HashMap::new();
        let mut add = |names: &[&str], units: &[Unit], latency: u32| {
            for name in names {
                table.insert(
                    Symbol::intern(name),
                    InstrInfo {
                        units: units.to_vec(),
                        latency,
                    },
                );
            }
        };
        add(
            &[
                "addq", "subq", "and", "bis", "xor", "andcm", "ornot", "cmpeq", "cmplt", "cmple",
                "cmpult", "cmpule", "cmoveq", "cmovne", "ldiq", "mov", "shladd",
            ],
            &ALL_UNITS,
            1,
        );
        add(
            &["sll", "srl", "sra", "extr_u", "dep_z", "sextb", "sextw"],
            &UPPER,
            1,
        );
        // Integer multiply goes through the FP unit on Itanium: slow and
        // single-ported.
        add(&["mulq", "umulh"], &[Unit::U1], 9);
        add(&["ldq"], &LOWER, 2);
        add(&["stq"], &LOWER, 1);
        Machine {
            name: "ia64like".to_owned(),
            issue_width: 4,
            units: ALL_UNITS.to_vec(),
            cluster_delay: 0,
            table,
            load_latency: 2,
        }
    }

    /// EV6 without the cross-cluster penalty (ablation target).
    pub fn ev6_unclustered() -> Machine {
        let mut m = Machine::ev6();
        m.name = "ev6-unclustered".to_owned();
        m.cluster_delay = 0;
        m
    }

    /// A single-issue variant of the same ISA (the simplification used
    /// to present the constraints in §6, and an ablation target).
    pub fn single_issue() -> Machine {
        let mut m = Machine::ev6();
        m.name = "single-issue".to_owned();
        m.issue_width = 1;
        m.cluster_delay = 0;
        m.units = vec![Unit::U0];
        // Every opcode runs on the one unit.
        for info in m.table.values_mut() {
            info.units = vec![Unit::U0];
        }
        m
    }

    /// Machine name for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instructions issued per cycle at most.
    pub fn issue_width(&self) -> usize {
        self.issue_width
    }

    /// The functional units.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Extra cycles before a result produced on one cluster is usable on
    /// the other (0 = unclustered).
    pub fn cluster_delay(&self) -> u32 {
        self.cluster_delay
    }

    /// Number of clusters (derived from the unit set).
    pub fn num_clusters(&self) -> usize {
        if self.cluster_delay == 0 {
            1
        } else {
            self.units.iter().map(|u| u.cluster()).max().unwrap_or(0) + 1
        }
    }

    /// Scheduling facts for an opcode, if it is an instruction of this
    /// machine.
    pub fn info(&self, op: Symbol) -> Option<&InstrInfo> {
        self.table.get(&op)
    }

    /// True if the opcode is an instruction of this machine.
    pub fn is_instruction(&self, op: Symbol) -> bool {
        self.table.contains_key(&op)
    }

    /// Default load latency (for annotated loads the encoder substitutes
    /// the programmer-provided value; see §6's discussion of memory
    /// latency annotations).
    pub fn load_latency(&self) -> u32 {
        self.load_latency
    }

    /// True if `value` can be used as a literal second operand of an
    /// ordinary ALU instruction (Alpha's 8-bit zero-extended literal
    /// field).
    pub fn fits_alu_literal(&self, value: u64) -> bool {
        value <= 255
    }

    /// True if `value` fits the 16-bit signed displacement field of a
    /// load/store (or an `lda`-style immediate).
    pub fn fits_displacement(&self, value: u64) -> bool {
        let v = value as i64;
        (-32768..=32767).contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn ev6_shape() {
        let m = Machine::ev6();
        assert_eq!(m.issue_width(), 4);
        assert_eq!(m.units().len(), 4);
        assert_eq!(m.cluster_delay(), 1);
        assert_eq!(m.num_clusters(), 2);
    }

    #[test]
    fn byte_ops_are_upper_only() {
        let m = Machine::ev6();
        for op in ["extbl", "insbl", "mskbl", "sll", "zapnot"] {
            let info = m.info(sym(op)).unwrap();
            assert_eq!(info.units, vec![Unit::U0, Unit::U1], "{op}");
            assert_eq!(info.latency, 1);
        }
    }

    #[test]
    fn loads_are_lower_with_latency() {
        let m = Machine::ev6();
        let ld = m.info(sym("ldq")).unwrap();
        assert_eq!(ld.units, vec![Unit::L0, Unit::L1]);
        assert_eq!(ld.latency, 3);
        assert_eq!(m.load_latency(), 3);
    }

    #[test]
    fn multiply_is_slow_and_unit_restricted() {
        let m = Machine::ev6();
        let mul = m.info(sym("mulq")).unwrap();
        assert_eq!(mul.units, vec![Unit::U1]);
        assert_eq!(mul.latency, 7);
    }

    #[test]
    fn math_ops_are_not_instructions() {
        let m = Machine::ev6();
        assert!(!m.is_instruction(sym("add64")));
        assert!(!m.is_instruction(sym("pow")));
        assert!(!m.is_instruction(sym("selectb")));
        assert!(m.is_instruction(sym("addq")));
    }

    #[test]
    fn clusters_partition_units() {
        assert_eq!(Unit::U0.cluster(), 0);
        assert_eq!(Unit::L0.cluster(), 0);
        assert_eq!(Unit::U1.cluster(), 1);
        assert_eq!(Unit::L1.cluster(), 1);
    }

    #[test]
    fn variants() {
        let u = Machine::ev6_unclustered();
        assert_eq!(u.cluster_delay(), 0);
        assert_eq!(u.num_clusters(), 1);
        let s = Machine::single_issue();
        assert_eq!(s.issue_width(), 1);
        assert_eq!(s.units().len(), 1);
        assert!(s.info(sym("ldq")).unwrap().units.contains(&Unit::U0));
    }

    #[test]
    fn literal_ranges() {
        let m = Machine::ev6();
        assert!(m.fits_alu_literal(0));
        assert!(m.fits_alu_literal(255));
        assert!(!m.fits_alu_literal(256));
        assert!(m.fits_displacement(32767));
        assert!(m.fits_displacement((-32768i64) as u64));
        assert!(!m.fits_displacement(32768));
    }
}
