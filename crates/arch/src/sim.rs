//! Instruction-level simulation of generated programs.
//!
//! The simulator stands in for the paper's Alpha hardware: it executes a
//! scheduled [`Program`] against a register file and a sparse memory,
//! using the same operation semantics (`denali_term::ops`) that define
//! the axioms. It also enforces *value readiness*: reading a register
//! before its producer's latency has elapsed is an error, so schedule
//! bugs surface as simulation failures even before validation.

use std::collections::HashMap;
use std::fmt;

use denali_term::{ops, Symbol};

use crate::asm::{Instr, Operand, Program, Reg};
use crate::machine::Machine;

/// Simulation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimError {
    message: String,
}

impl SimError {
    fn new(message: impl Into<String>) -> SimError {
        SimError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SimError {}

/// Final machine state after a successful run.
#[derive(Clone, Default, Debug)]
pub struct SimOutcome {
    /// Register file (inputs plus every written register).
    pub regs: HashMap<Reg, u64>,
    /// Memory after all stores.
    pub memory: HashMap<u64, u64>,
}

/// Executes [`Program`]s on a given machine description.
#[derive(Clone, Debug)]
pub struct Simulator<'m> {
    machine: &'m Machine,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator for `machine`.
    pub fn new(machine: &'m Machine) -> Simulator<'m> {
        Simulator { machine }
    }

    /// Runs `program` with the given initial register values and memory.
    ///
    /// # Errors
    ///
    /// Fails on unknown opcodes, reads of never-written registers, reads
    /// of registers whose producer has not completed (latency
    /// violations), and double writes.
    pub fn run(
        &self,
        program: &Program,
        inputs: &HashMap<Reg, u64>,
        memory: HashMap<u64, u64>,
    ) -> Result<SimOutcome, SimError> {
        let mut values: HashMap<Reg, u64> = inputs.clone();
        let mut ready: HashMap<Reg, u32> = inputs.keys().map(|&r| (r, 0)).collect();
        let mut memory = memory;

        let mut instrs: Vec<&Instr> = program.instrs.iter().collect();
        instrs.sort_by_key(|i| (i.cycle, i.unit));

        // Stores commit at the end of their cycle; batch them per cycle.
        let mut pending_stores: Vec<(u32, u64, u64)> = Vec::new();

        for instr in instrs {
            // Commit stores from earlier cycles.
            let cycle = instr.cycle;
            for &(store_cycle, addr, value) in &pending_stores {
                if store_cycle < cycle {
                    memory.insert(addr, value);
                }
            }
            pending_stores.retain(|&(c, _, _)| c >= cycle);

            let read = |operand: &Operand| -> Result<u64, SimError> {
                match operand {
                    Operand::Imm(v) => Ok(*v),
                    Operand::Reg(r) => {
                        let value = values.get(r).ok_or_else(|| {
                            SimError::new(format!("{instr}: read of never-written {r}"))
                        })?;
                        let ready_at = ready.get(r).copied().unwrap_or(u32::MAX);
                        if ready_at > cycle {
                            return Err(SimError::new(format!(
                                "{instr}: {r} read at cycle {cycle} but ready at {ready_at}"
                            )));
                        }
                        Ok(*value)
                    }
                }
            };

            let name = instr.op.as_str();
            let latency = self
                .machine
                .info(instr.op)
                .ok_or_else(|| SimError::new(format!("unknown opcode {name}")))?
                .latency;

            let result: Option<u64> = match name {
                "ldq" => {
                    let base = read(&instr.operands[0])?;
                    let disp = read(&instr.operands[1])?;
                    let addr = base.wrapping_add(disp);
                    Some(memory.get(&addr).copied().unwrap_or(0))
                }
                "stq" => {
                    let value = read(&instr.operands[0])?;
                    let base = read(&instr.operands[1])?;
                    let disp = read(&instr.operands[2])?;
                    pending_stores.push((cycle, base.wrapping_add(disp), value));
                    None
                }
                "ldiq" => Some(read(&instr.operands[0])?),
                "mov" => Some(read(&instr.operands[0])?),
                _ => {
                    let args: Vec<u64> =
                        instr.operands.iter().map(read).collect::<Result<_, _>>()?;
                    Some(ops::eval(instr.op, &args).ok_or_else(|| {
                        SimError::new(format!("no semantics for opcode {name}/{}", args.len()))
                    })?)
                }
            };

            if let Some(value) = result {
                let dest = instr
                    .dest
                    .ok_or_else(|| SimError::new(format!("{instr}: missing destination")))?;
                if !program.reg_reuse && values.contains_key(&dest) && !inputs.contains_key(&dest) {
                    return Err(SimError::new(format!("{instr}: double write of {dest}")));
                }
                values.insert(dest, value);
                ready.insert(dest, cycle + latency);
            }
        }

        for (_, addr, value) in pending_stores {
            memory.insert(addr, value);
        }
        Ok(SimOutcome {
            regs: values,
            memory,
        })
    }

    /// Convenience: run with inputs given by name (resolved through the
    /// program's input map).
    ///
    /// # Errors
    ///
    /// Fails if a name is not an input of the program, plus all
    /// [`Simulator::run`] errors.
    pub fn run_named(
        &self,
        program: &Program,
        inputs: &[(&str, u64)],
        memory: HashMap<u64, u64>,
    ) -> Result<SimOutcome, SimError> {
        let mut regs = HashMap::new();
        for (name, value) in inputs {
            let reg = program
                .input_reg(Symbol::intern(name))
                .ok_or_else(|| SimError::new(format!("program has no input {name}")))?;
            regs.insert(reg, *value);
        }
        self.run(program, &regs, memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Unit;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn instr(op: &str, operands: Vec<Operand>, dest: Option<Reg>, cycle: u32, unit: Unit) -> Instr {
        Instr {
            op: sym(op),
            operands,
            dest,
            cycle,
            unit,
            comment: String::new(),
        }
    }

    #[test]
    fn straight_line_alu() {
        // $2 = $1 * 4 + 1 via s4addq.
        let m = Machine::ev6();
        let p = Program {
            instrs: vec![instr(
                "s4addq",
                vec![Operand::Reg(Reg(1)), Operand::Imm(1)],
                Some(Reg(2)),
                0,
                Unit::U0,
            )],
            inputs: vec![(sym("x"), Reg(1))],
            outputs: vec![(sym("r"), Reg(2))],
            name: "t".to_owned(),
            reg_reuse: false,
        };
        let out = Simulator::new(&m)
            .run_named(&p, &[("x", 10)], HashMap::new())
            .unwrap();
        assert_eq!(out.regs[&Reg(2)], 41);
    }

    #[test]
    fn latency_violation_is_detected() {
        let m = Machine::ev6();
        // mulq at cycle 0 (latency 7), consumer at cycle 1: too early.
        let p = Program {
            instrs: vec![
                instr(
                    "mulq",
                    vec![Operand::Reg(Reg(1)), Operand::Reg(Reg(1))],
                    Some(Reg(2)),
                    0,
                    Unit::U1,
                ),
                instr(
                    "addq",
                    vec![Operand::Reg(Reg(2)), Operand::Imm(1)],
                    Some(Reg(3)),
                    1,
                    Unit::U0,
                ),
            ],
            inputs: vec![(sym("x"), Reg(1))],
            outputs: vec![],
            name: "t".to_owned(),
            reg_reuse: false,
        };
        let err = Simulator::new(&m)
            .run_named(&p, &[("x", 3)], HashMap::new())
            .unwrap_err();
        assert!(err.to_string().contains("ready at 7"), "{err}");
    }

    #[test]
    fn load_and_store() {
        let m = Machine::ev6();
        // $2 = M[$1 + 8]; M[$1] = $2 + 1 (after the load completes).
        let p = Program {
            instrs: vec![
                instr(
                    "ldq",
                    vec![Operand::Reg(Reg(1)), Operand::Imm(8)],
                    Some(Reg(2)),
                    0,
                    Unit::L0,
                ),
                instr(
                    "addq",
                    vec![Operand::Reg(Reg(2)), Operand::Imm(1)],
                    Some(Reg(3)),
                    3,
                    Unit::U0,
                ),
                instr(
                    "stq",
                    vec![Operand::Reg(Reg(3)), Operand::Reg(Reg(1)), Operand::Imm(0)],
                    None,
                    4,
                    Unit::L0,
                ),
            ],
            inputs: vec![(sym("p"), Reg(1))],
            outputs: vec![],
            name: "t".to_owned(),
            reg_reuse: false,
        };
        let memory = HashMap::from([(108, 41)]);
        let out = Simulator::new(&m)
            .run_named(&p, &[("p", 100)], memory)
            .unwrap();
        assert_eq!(out.regs[&Reg(2)], 41);
        assert_eq!(out.memory[&100], 42);
        assert_eq!(out.memory[&108], 41);
    }

    #[test]
    fn load_same_cycle_as_store_reads_old_value() {
        let m = Machine::ev6();
        // Store and load at the same address in the same cycle: the load
        // sees the pre-state (stores commit at end of cycle).
        let p = Program {
            instrs: vec![
                instr(
                    "stq",
                    vec![Operand::Imm(7), Operand::Reg(Reg(1)), Operand::Imm(0)],
                    None,
                    0,
                    Unit::L0,
                ),
                instr(
                    "ldq",
                    vec![Operand::Reg(Reg(1)), Operand::Imm(0)],
                    Some(Reg(2)),
                    0,
                    Unit::L1,
                ),
            ],
            inputs: vec![(sym("p"), Reg(1))],
            outputs: vec![],
            name: "t".to_owned(),
            reg_reuse: false,
        };
        let out = Simulator::new(&m)
            .run_named(&p, &[("p", 64)], HashMap::from([(64, 5)]))
            .unwrap();
        assert_eq!(out.regs[&Reg(2)], 5, "load reads pre-store value");
        assert_eq!(out.memory[&64], 7);
    }

    #[test]
    fn unknown_register_and_double_write_are_errors() {
        let m = Machine::ev6();
        let p = Program {
            instrs: vec![instr(
                "addq",
                vec![Operand::Reg(Reg(9)), Operand::Imm(1)],
                Some(Reg(2)),
                0,
                Unit::U0,
            )],
            inputs: vec![],
            outputs: vec![],
            name: "t".to_owned(),
            reg_reuse: false,
        };
        assert!(Simulator::new(&m)
            .run(&p, &HashMap::new(), HashMap::new())
            .is_err());

        let p2 = Program {
            instrs: vec![
                instr("ldiq", vec![Operand::Imm(1)], Some(Reg(2)), 0, Unit::U0),
                instr("ldiq", vec![Operand::Imm(2)], Some(Reg(2)), 1, Unit::U0),
            ],
            inputs: vec![],
            outputs: vec![],
            name: "t".to_owned(),
            reg_reuse: false,
        };
        let err = Simulator::new(&m)
            .run(&p2, &HashMap::new(), HashMap::new())
            .unwrap_err();
        assert!(err.to_string().contains("double write"));
    }

    #[test]
    fn run_named_rejects_unknown_input() {
        let m = Machine::ev6();
        let p = Program::default();
        assert!(Simulator::new(&m)
            .run_named(&p, &[("nope", 1)], HashMap::new())
            .is_err());
    }
}
