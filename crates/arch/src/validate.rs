//! Independent schedule validation.
//!
//! [`validate`] re-checks every structural rule a legal schedule must
//! satisfy — opcode/unit compatibility, issue-width, latencies, cluster
//! bypass delays, literal ranges, single assignment, and memory ordering
//! — without consulting the SAT encoding that produced the schedule.
//! Every program Denali emits must pass this check; it is the project's
//! defense against encoder bugs.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::asm::{Instr, Operand, Program, Reg};
use crate::machine::{Machine, Unit};

/// One or more rule violations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidationError {
    /// Human-readable violations.
    pub violations: Vec<String>,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} schedule violations:", self.violations.len())?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidationError {}

/// Checks `program` against `machine`'s structural rules.
///
/// # Errors
///
/// Returns every violation found (not just the first).
pub fn validate(program: &Program, machine: &Machine) -> Result<(), ValidationError> {
    let mut violations = Vec::new();
    let inputs: HashSet<Reg> = program.inputs.iter().map(|&(_, r)| r).collect();

    // Producer map: register -> write events sorted by cycle. Programs
    // in single-assignment form (the extractor's output) get exactly one
    // event per register; allocated programs (reg_reuse) may have many.
    let mut producers: HashMap<Reg, Vec<(u32, Unit, u32)>> = HashMap::new();
    for instr in &program.instrs {
        let Some(info) = machine.info(instr.op) else {
            violations.push(format!("{instr}: unknown opcode for {}", machine.name()));
            continue;
        };
        if let Some(dest) = instr.dest {
            if inputs.contains(&dest) {
                violations.push(format!("{instr}: overwrites input register {dest}"));
            }
            let events = producers.entry(dest).or_default();
            if !events.is_empty() && !program.reg_reuse {
                violations.push(format!("{instr}: register {dest} written twice"));
            }
            events.push((instr.cycle, instr.unit, info.latency));
        }
    }
    for events in producers.values_mut() {
        events.sort_by_key(|&(c, _, _)| c);
        // Write-after-write: a new definition may not start before the
        // previous one has completed.
        for pair in events.windows(2) {
            let (c1, _, l1) = pair[0];
            let (c2, _, _) = pair[1];
            if c2 < c1 + l1 {
                violations.push(format!(
                    "register redefined at cycle {c2} while the cycle-{c1} write is in flight"
                ));
            }
        }
    }

    // Per-slot and per-cycle occupancy.
    let mut slots: HashSet<(u32, Unit)> = HashSet::new();
    let mut per_cycle: HashMap<u32, usize> = HashMap::new();
    for instr in &program.instrs {
        if !slots.insert((instr.cycle, instr.unit)) {
            violations.push(format!(
                "{instr}: issue slot ({}, {}) used twice",
                instr.cycle, instr.unit
            ));
        }
        *per_cycle.entry(instr.cycle).or_default() += 1;
    }
    for (&cycle, &count) in &per_cycle {
        if count > machine.issue_width() {
            violations.push(format!(
                "cycle {cycle} issues {count} instructions (width {})",
                machine.issue_width()
            ));
        }
    }

    for instr in &program.instrs {
        let Some(info) = machine.info(instr.op) else {
            continue; // already reported
        };
        if !info.units.contains(&instr.unit) {
            violations.push(format!(
                "{instr}: {} cannot execute on {}",
                instr.op, instr.unit
            ));
        }
        // Operand rules and readiness.
        let name = instr.op.as_str();
        for (pos, operand) in instr.operands.iter().enumerate() {
            match operand {
                Operand::Imm(v) => {
                    let ok = match name {
                        // Displacement fields.
                        "ldq" => pos == 1 && machine.fits_displacement(*v),
                        "stq" => pos == 2 && machine.fits_displacement(*v),
                        // Pseudo constant-materialization takes any word.
                        "ldiq" => pos == 0,
                        "mov" => pos == 0 && machine.fits_alu_literal(*v),
                        // IA-64 field operations take two immediates.
                        "shladd" => pos == 1 && machine.fits_alu_literal(*v),
                        "extr_u" | "dep_z" => {
                            (pos == 1 || pos == 2) && machine.fits_alu_literal(*v)
                        }
                        // Alpha's 8-bit literal goes in the second source.
                        _ => pos == 1 && machine.fits_alu_literal(*v),
                    };
                    if !ok {
                        violations.push(format!(
                            "{instr}: immediate {v} not allowed at operand {pos}"
                        ));
                    }
                }
                Operand::Reg(r) => {
                    if inputs.contains(r) {
                        continue;
                    }
                    // The read resolves to the latest write issued
                    // strictly before this instruction's cycle.
                    let event = producers.get(r).and_then(|events| {
                        events.iter().copied().rfind(|&(c, _, _)| c < instr.cycle)
                    });
                    match event {
                        None => {
                            violations.push(format!("{instr}: reads never-written {r}"));
                        }
                        Some((pcycle, punit, platency)) => {
                            let mut available = pcycle + platency;
                            if punit.cluster() != instr.unit.cluster() {
                                available += machine.cluster_delay();
                            }
                            if available > instr.cycle {
                                violations.push(format!(
                                    "{instr}: {r} (from {punit} cycle {pcycle}, latency {platency}) \
                                     not available until {available}, read at {}",
                                    instr.cycle
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // Memory ordering: loads read the GMA's pre-state, so a load whose
    // address syntactically equals a store's address must not issue
    // after the store's cycle; two stores to one address are ambiguous.
    let mem_addr = |instr: &Instr| -> Option<(Operand, u64)> {
        match instr.op.as_str() {
            "ldq" => Some((
                instr.operands[0],
                match instr.operands[1] {
                    Operand::Imm(d) => d,
                    Operand::Reg(_) => 0,
                },
            )),
            "stq" => Some((
                instr.operands[1],
                match instr.operands[2] {
                    Operand::Imm(d) => d,
                    Operand::Reg(_) => 0,
                },
            )),
            _ => None,
        }
    };
    let loads: Vec<&Instr> = program
        .instrs
        .iter()
        .filter(|i| i.op.as_str() == "ldq")
        .collect();
    let stores: Vec<&Instr> = program
        .instrs
        .iter()
        .filter(|i| i.op.as_str() == "stq")
        .collect();
    for store in &stores {
        let store_addr = mem_addr(store);
        for load in &loads {
            if mem_addr(load) == store_addr && load.cycle > store.cycle {
                violations.push(format!(
                    "{load}: load of an address stored at cycle {} issues later (cycle {})",
                    store.cycle, load.cycle
                ));
            }
        }
    }
    for (i, a) in stores.iter().enumerate() {
        for b in &stores[i + 1..] {
            if mem_addr(a) == mem_addr(b) {
                violations.push(format!("{a}: two stores to one address"));
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        violations.sort();
        violations.dedup();
        Err(ValidationError { violations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use denali_term::Symbol;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn instr(op: &str, operands: Vec<Operand>, dest: Option<Reg>, cycle: u32, unit: Unit) -> Instr {
        Instr {
            op: sym(op),
            operands,
            dest,
            cycle,
            unit,
            comment: String::new(),
        }
    }

    fn base_program(instrs: Vec<Instr>) -> Program {
        Program {
            instrs,
            inputs: vec![(sym("a"), Reg(100))],
            outputs: vec![],
            name: "t".to_owned(),
            reg_reuse: false,
        }
    }

    fn errors(p: &Program) -> Vec<String> {
        match validate(p, &Machine::ev6()) {
            Ok(()) => Vec::new(),
            Err(e) => e.violations,
        }
    }

    #[test]
    fn valid_program_passes() {
        let p = base_program(vec![
            instr(
                "extbl",
                vec![Operand::Reg(Reg(100)), Operand::Imm(1)],
                Some(Reg(1)),
                0,
                Unit::U0,
            ),
            instr(
                "addq",
                vec![Operand::Reg(Reg(1)), Operand::Imm(1)],
                Some(Reg(2)),
                1,
                Unit::U0,
            ),
        ]);
        assert_eq!(errors(&p), Vec::<String>::new());
    }

    #[test]
    fn unit_compatibility_is_enforced() {
        // extbl on a lower pipe is illegal.
        let p = base_program(vec![instr(
            "extbl",
            vec![Operand::Reg(Reg(100)), Operand::Imm(1)],
            Some(Reg(1)),
            0,
            Unit::L0,
        )]);
        assert!(errors(&p).iter().any(|e| e.contains("cannot execute")));
    }

    #[test]
    fn latency_is_enforced() {
        let p = base_program(vec![
            instr(
                "mulq",
                vec![Operand::Reg(Reg(100)), Operand::Reg(Reg(100))],
                Some(Reg(1)),
                0,
                Unit::U1,
            ),
            instr(
                "addq",
                vec![Operand::Reg(Reg(1)), Operand::Imm(1)],
                Some(Reg(2)),
                3,
                Unit::U0,
            ),
        ]);
        assert!(errors(&p).iter().any(|e| e.contains("not available")));
    }

    #[test]
    fn cluster_delay_is_enforced() {
        // Producer on cluster 1 (U1), consumer on cluster 0 (U0) one
        // cycle later: needs 1 (latency) + 1 (cluster) = cycle 2.
        let p = base_program(vec![
            instr(
                "addq",
                vec![Operand::Reg(Reg(100)), Operand::Imm(1)],
                Some(Reg(1)),
                0,
                Unit::U1,
            ),
            instr(
                "addq",
                vec![Operand::Reg(Reg(1)), Operand::Imm(1)],
                Some(Reg(2)),
                1,
                Unit::U0,
            ),
        ]);
        assert!(errors(&p).iter().any(|e| e.contains("not available")));
        // Same cluster is fine at cycle 1.
        let p_ok = base_program(vec![
            instr(
                "addq",
                vec![Operand::Reg(Reg(100)), Operand::Imm(1)],
                Some(Reg(1)),
                0,
                Unit::U1,
            ),
            instr(
                "addq",
                vec![Operand::Reg(Reg(1)), Operand::Imm(1)],
                Some(Reg(2)),
                1,
                Unit::U1,
            ),
        ]);
        assert_eq!(errors(&p_ok), Vec::<String>::new());
    }

    #[test]
    fn issue_slots_are_exclusive() {
        let p = base_program(vec![
            instr(
                "addq",
                vec![Operand::Reg(Reg(100)), Operand::Imm(1)],
                Some(Reg(1)),
                0,
                Unit::U0,
            ),
            instr(
                "addq",
                vec![Operand::Reg(Reg(100)), Operand::Imm(2)],
                Some(Reg(2)),
                0,
                Unit::U0,
            ),
        ]);
        assert!(errors(&p).iter().any(|e| e.contains("used twice")));
    }

    #[test]
    fn issue_width_is_enforced_on_narrow_machine() {
        let m = Machine::single_issue();
        let p = Program {
            instrs: vec![
                instr(
                    "addq",
                    vec![Operand::Reg(Reg(100)), Operand::Imm(1)],
                    Some(Reg(1)),
                    0,
                    Unit::U0,
                ),
                instr(
                    "subq",
                    vec![Operand::Reg(Reg(100)), Operand::Imm(1)],
                    Some(Reg(2)),
                    0,
                    Unit::U0,
                ),
            ],
            inputs: vec![(sym("a"), Reg(100))],
            outputs: vec![],
            name: "t".to_owned(),
            reg_reuse: false,
        };
        let err = validate(&p, &m).unwrap_err();
        assert!(err.to_string().contains("slot") || err.to_string().contains("width"));
    }

    #[test]
    fn literal_rules() {
        // 256 does not fit the ALU literal field.
        let p = base_program(vec![instr(
            "addq",
            vec![Operand::Reg(Reg(100)), Operand::Imm(256)],
            Some(Reg(1)),
            0,
            Unit::U0,
        )]);
        assert!(errors(&p).iter().any(|e| e.contains("immediate")));
        // Literal in the first operand position is illegal.
        let p2 = base_program(vec![instr(
            "addq",
            vec![Operand::Imm(1), Operand::Reg(Reg(100))],
            Some(Reg(1)),
            0,
            Unit::U0,
        )]);
        assert!(errors(&p2).iter().any(|e| e.contains("immediate")));
        // ldiq takes any constant.
        let p3 = base_program(vec![instr(
            "ldiq",
            vec![Operand::Imm(u64::MAX)],
            Some(Reg(1)),
            0,
            Unit::U0,
        )]);
        assert_eq!(errors(&p3), Vec::<String>::new());
    }

    #[test]
    fn single_assignment_and_input_protection() {
        let p = base_program(vec![
            instr("ldiq", vec![Operand::Imm(1)], Some(Reg(1)), 0, Unit::U0),
            instr("ldiq", vec![Operand::Imm(2)], Some(Reg(1)), 1, Unit::U0),
        ]);
        assert!(errors(&p).iter().any(|e| e.contains("written twice")));
        let p2 = base_program(vec![instr(
            "ldiq",
            vec![Operand::Imm(1)],
            Some(Reg(100)),
            0,
            Unit::U0,
        )]);
        assert!(errors(&p2).iter().any(|e| e.contains("overwrites input")));
    }

    #[test]
    fn never_written_source_is_caught() {
        let p = base_program(vec![instr(
            "addq",
            vec![Operand::Reg(Reg(55)), Operand::Imm(1)],
            Some(Reg(1)),
            0,
            Unit::U0,
        )]);
        assert!(errors(&p).iter().any(|e| e.contains("never-written")));
    }

    #[test]
    fn load_after_aliasing_store_is_caught() {
        let p = base_program(vec![
            instr(
                "stq",
                vec![
                    Operand::Reg(Reg(100)),
                    Operand::Reg(Reg(100)),
                    Operand::Imm(0),
                ],
                None,
                0,
                Unit::L0,
            ),
            instr(
                "ldq",
                vec![Operand::Reg(Reg(100)), Operand::Imm(0)],
                Some(Reg(1)),
                1,
                Unit::L0,
            ),
        ]);
        assert!(errors(&p).iter().any(|e| e.contains("issues later")));
        // A load at a different displacement is fine.
        let p2 = base_program(vec![
            instr(
                "stq",
                vec![
                    Operand::Reg(Reg(100)),
                    Operand::Reg(Reg(100)),
                    Operand::Imm(0),
                ],
                None,
                0,
                Unit::L0,
            ),
            instr(
                "ldq",
                vec![Operand::Reg(Reg(100)), Operand::Imm(8)],
                Some(Reg(1)),
                1,
                Unit::L1,
            ),
        ]);
        assert_eq!(errors(&p2), Vec::<String>::new());
    }
}
