//! Scheduled assembly programs.

use std::collections::BTreeMap;
use std::fmt;

use denali_term::Symbol;

use crate::machine::Unit;

/// A register. Generated code uses a dense virtual numbering (`$0`,
/// `$1`, ...); the paper's prototype likewise "ignores register
/// allocation".
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// An instruction operand: a register or an immediate literal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// Register source.
    Reg(Reg),
    /// Immediate literal (ALU literal or load/store displacement).
    Imm(u64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => {
                if *v > 0xffff {
                    write!(f, "0x{v:x}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// One scheduled instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Instr {
    /// Opcode (an instruction symbol of the [`crate::Machine`]).
    pub op: Symbol,
    /// Source operands. For `ldq`/`stq` the convention is
    /// `[base_register, displacement]` (plus the stored value first for
    /// `stq`: `[value, base, displacement]`).
    pub operands: Vec<Operand>,
    /// Destination register (`None` for stores).
    pub dest: Option<Reg>,
    /// Issue cycle (0-based).
    pub cycle: u32,
    /// Functional unit.
    pub unit: Unit,
    /// Free-form annotation shown in listings.
    pub comment: String,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self.op.as_str();
        match name {
            "ldq" => {
                // ldq $d, disp($base)
                let (base, disp) = (&self.operands[0], &self.operands[1]);
                write!(
                    f,
                    "ldq {}, {disp}({base})",
                    self.dest.expect("load has dest")
                )?;
            }
            "stq" => {
                let (value, base, disp) = (&self.operands[0], &self.operands[1], &self.operands[2]);
                write!(f, "stq {value}, {disp}({base})")?;
            }
            "ldiq" => {
                write!(
                    f,
                    "ldiq {}, {}",
                    self.dest.expect("ldiq has dest"),
                    self.operands[0]
                )?;
            }
            "mov" => {
                write!(
                    f,
                    "mov {}, {}",
                    self.operands[0],
                    self.dest.expect("mov has dest")
                )?;
            }
            _ => {
                write!(f, "{name} ")?;
                for operand in &self.operands {
                    write!(f, "{operand}, ")?;
                }
                match self.dest {
                    Some(d) => write!(f, "{d}")?,
                    None => write!(f, "-")?,
                }
            }
        }
        Ok(())
    }
}

/// A scheduled straight-line program: the output of the code generator.
///
/// `inputs` names the registers holding the GMA's free variables on
/// entry; `outputs` names the registers holding each (non-memory) target
/// on exit.
#[derive(Clone, Default, Debug)]
pub struct Program {
    /// Instructions in issue order (sorted by cycle, then unit).
    pub instrs: Vec<Instr>,
    /// Input name → register holding it on entry.
    pub inputs: Vec<(Symbol, Reg)>,
    /// Target name → register holding it on exit (memory targets are
    /// realized by `stq` instructions instead).
    pub outputs: Vec<(Symbol, Reg)>,
    /// Label for listings.
    pub name: String,
    /// True if physical-register reuse is permitted (set by the register
    /// allocator). When false the program is in single-assignment form
    /// and the simulator/validator treat a second write to a register as
    /// an error.
    pub reg_reuse: bool,
}

impl Program {
    /// Number of cycles the schedule occupies (last issue cycle + that
    /// instruction's latency is the true makespan; this reports the
    /// *cycle budget* K used by the paper: the number of issue cycles).
    pub fn cycles(&self) -> u32 {
        self.instrs.iter().map(|i| i.cycle + 1).max().unwrap_or(0)
    }

    /// Number of real instructions (nops in listings are not stored).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The register assigned to a named input.
    pub fn input_reg(&self, name: Symbol) -> Option<Reg> {
        self.inputs
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, r)| r)
    }

    /// The register holding a named output.
    pub fn output_reg(&self, name: Symbol) -> Option<Reg> {
        self.outputs
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, r)| r)
    }

    /// Renders a Figure-4-style listing: one line per instruction,
    /// annotated with `# cycle, unit`, with `nop`s filling unused issue
    /// slots of occupied cycles.
    pub fn listing(&self, issue_width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "// Inputs: {}", pairs(&self.inputs));
        let _ = writeln!(out, "// Outputs: {}", pairs(&self.outputs));
        let _ = writeln!(out, "{}:", self.name);
        let mut by_cycle: BTreeMap<u32, Vec<&Instr>> = BTreeMap::new();
        for i in &self.instrs {
            by_cycle.entry(i.cycle).or_default().push(i);
        }
        for (cycle, instrs) in &by_cycle {
            let mut instrs = instrs.clone();
            instrs.sort_by_key(|i| i.unit);
            for i in &instrs {
                let text = i.to_string();
                let comment = if i.comment.is_empty() {
                    String::new()
                } else {
                    format!(" ; {}", i.comment)
                };
                let _ = writeln!(out, "    {text:<28} # {cycle}, {}{comment}", i.unit);
            }
            for _ in instrs.len()..issue_width {
                let _ = writeln!(out, "    {:<28} # {cycle}", "nop");
            }
        }
        out
    }
}

fn pairs(list: &[(Symbol, Reg)]) -> String {
    list.iter()
        .map(|(n, r)| format!("{n}={r}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn sample() -> Program {
        Program {
            instrs: vec![
                Instr {
                    op: sym("extbl"),
                    operands: vec![Operand::Reg(Reg(16)), Operand::Imm(1)],
                    dest: Some(Reg(2)),
                    cycle: 0,
                    unit: Unit::U1,
                    comment: "$2 = byte 1".to_owned(),
                },
                Instr {
                    op: sym("insbl"),
                    operands: vec![Operand::Reg(Reg(16)), Operand::Imm(3)],
                    dest: Some(Reg(3)),
                    cycle: 0,
                    unit: Unit::U0,
                    comment: String::new(),
                },
                Instr {
                    op: sym("bis"),
                    operands: vec![Operand::Reg(Reg(2)), Operand::Reg(Reg(3))],
                    dest: Some(Reg(0)),
                    cycle: 1,
                    unit: Unit::L0,
                    comment: String::new(),
                },
            ],
            inputs: vec![(sym("a"), Reg(16))],
            outputs: vec![(sym("res"), Reg(0))],
            name: "sample".to_owned(),
            reg_reuse: false,
        }
    }

    #[test]
    fn cycle_count_is_last_issue_cycle_plus_one() {
        assert_eq!(sample().cycles(), 2);
        assert_eq!(Program::default().cycles(), 0);
        assert!(Program::default().is_empty());
    }

    #[test]
    fn input_output_lookup() {
        let p = sample();
        assert_eq!(p.input_reg(sym("a")), Some(Reg(16)));
        assert_eq!(p.output_reg(sym("res")), Some(Reg(0)));
        assert_eq!(p.input_reg(sym("zz")), None);
    }

    #[test]
    fn listing_shows_cycles_units_and_nops() {
        let text = sample().listing(4);
        assert!(text.contains("# 0, U0"));
        assert!(text.contains("# 0, U1"));
        assert!(text.contains("# 1, L0"));
        // Two instructions at cycle 0 on a 4-wide machine: two nops.
        assert_eq!(text.matches("nop").count(), 2 + 3);
        assert!(text.contains("$2 = byte 1"));
    }

    #[test]
    fn memory_instruction_display() {
        let ld = Instr {
            op: sym("ldq"),
            operands: vec![Operand::Reg(Reg(1)), Operand::Imm(8)],
            dest: Some(Reg(2)),
            cycle: 0,
            unit: Unit::L0,
            comment: String::new(),
        };
        assert_eq!(ld.to_string(), "ldq $2, 8($1)");
        let st = Instr {
            op: sym("stq"),
            operands: vec![Operand::Reg(Reg(3)), Operand::Reg(Reg(1)), Operand::Imm(0)],
            dest: None,
            cycle: 0,
            unit: Unit::L0,
            comment: String::new(),
        };
        assert_eq!(st.to_string(), "stq $3, 0($1)");
        let alu = Instr {
            op: sym("addq"),
            operands: vec![Operand::Reg(Reg(1)), Operand::Imm(255)],
            dest: Some(Reg(4)),
            cycle: 0,
            unit: Unit::U0,
            comment: String::new(),
        };
        assert_eq!(alu.to_string(), "addq $1, 255, $4");
    }

    #[test]
    fn large_immediates_print_in_hex() {
        assert_eq!(Operand::Imm(0xffff_ff00).to_string(), "0xffffff00");
        assert_eq!(Operand::Imm(255).to_string(), "255");
    }
}
