//! Additional coverage: simulator semantics for conditional moves and
//! byte ops, validator rules for the IA-64 field instructions, listings,
//! and machine-table sanity for the second target.

use std::collections::HashMap;

use denali_arch::{validate, Instr, Machine, Operand, Program, Reg, Simulator, Unit};
use denali_term::Symbol;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn instr(op: &str, operands: Vec<Operand>, dest: Option<Reg>, cycle: u32, unit: Unit) -> Instr {
    Instr {
        op: sym(op),
        operands,
        dest,
        cycle,
        unit,
        comment: String::new(),
    }
}

fn one_input_program(instrs: Vec<Instr>) -> Program {
    Program {
        instrs,
        inputs: vec![(sym("a"), Reg(100))],
        outputs: vec![],
        name: "t".to_owned(),
        reg_reuse: false,
    }
}

#[test]
fn simulator_executes_cmov() {
    let m = Machine::ev6();
    let p = one_input_program(vec![
        instr(
            "cmpult",
            vec![Operand::Reg(Reg(100)), Operand::Imm(10)],
            Some(Reg(1)),
            0,
            Unit::U0,
        ),
        instr(
            "cmovne",
            vec![
                Operand::Reg(Reg(1)),
                Operand::Imm(7),
                Operand::Reg(Reg(100)),
            ],
            Some(Reg(2)),
            1,
            Unit::U0,
        ),
    ]);
    let sim = Simulator::new(&m);
    let below = sim.run_named(&p, &[("a", 3)], HashMap::new()).unwrap();
    assert_eq!(below.regs[&Reg(2)], 7);
    let above = sim.run_named(&p, &[("a", 30)], HashMap::new()).unwrap();
    assert_eq!(above.regs[&Reg(2)], 30);
}

#[test]
fn simulator_executes_ia64_field_ops() {
    let m = Machine::ia64like();
    let p = one_input_program(vec![
        instr(
            "extr_u",
            vec![Operand::Reg(Reg(100)), Operand::Imm(8), Operand::Imm(8)],
            Some(Reg(1)),
            0,
            Unit::U0,
        ),
        instr(
            "dep_z",
            vec![Operand::Reg(Reg(1)), Operand::Imm(24), Operand::Imm(8)],
            Some(Reg(2)),
            1,
            Unit::U0,
        ),
        instr(
            "shladd",
            vec![
                Operand::Reg(Reg(2)),
                Operand::Imm(2),
                Operand::Reg(Reg(100)),
            ],
            Some(Reg(3)),
            2,
            Unit::L0,
        ),
    ]);
    validate(&p, &m).unwrap();
    let sim = Simulator::new(&m);
    let a = 0x0000_0000_00ab_cd12u64;
    let out = sim.run_named(&p, &[("a", a)], HashMap::new()).unwrap();
    assert_eq!(out.regs[&Reg(1)], 0xcd);
    assert_eq!(out.regs[&Reg(2)], 0xcd_00_00_00);
    assert_eq!(out.regs[&Reg(3)], (0xcd_00_00_00u64 << 2).wrapping_add(a));
}

#[test]
fn validator_enforces_ia64_immediate_rules() {
    let m = Machine::ia64like();
    // extr_u with a register length operand is not encodable.
    let p = one_input_program(vec![instr(
        "extr_u",
        vec![
            Operand::Reg(Reg(100)),
            Operand::Imm(8),
            Operand::Reg(Reg(100)),
        ],
        Some(Reg(1)),
        0,
        Unit::U0,
    )]);
    // Reading an input register as the length is structurally fine for
    // the dataflow rules, but operand legality must complain... the
    // validator treats the third operand as a register read, which is
    // allowed syntactically; the *immediate in the wrong slot* case is
    // the encodable-form violation:
    let q = one_input_program(vec![instr(
        "extr_u",
        vec![Operand::Imm(8), Operand::Imm(8), Operand::Imm(8)],
        Some(Reg(1)),
        0,
        Unit::U0,
    )]);
    let err = validate(&q, &m).unwrap_err();
    assert!(err.to_string().contains("immediate"), "{err}");
    // And field ops are upper-pipe only.
    let r = one_input_program(vec![instr(
        "dep_z",
        vec![Operand::Reg(Reg(100)), Operand::Imm(0), Operand::Imm(8)],
        Some(Reg(1)),
        0,
        Unit::L0,
    )]);
    let err = validate(&r, &m).unwrap_err();
    assert!(err.to_string().contains("cannot execute"), "{err}");
    // The register-length form passes the validator (it is the
    // enumerator that refuses to create such candidates).
    validate(&p, &m).unwrap();
}

#[test]
fn ia64_table_has_no_alpha_byte_ops() {
    let m = Machine::ia64like();
    for op in ["extbl", "insbl", "mskbl", "zapnot", "s4addq"] {
        assert!(m.info(sym(op)).is_none(), "{op} must not exist on ia64like");
    }
    for op in ["shladd", "extr_u", "dep_z", "andcm", "ldq", "stq"] {
        assert!(m.info(sym(op)).is_some(), "{op} missing on ia64like");
    }
    assert_eq!(m.cluster_delay(), 0);
    assert_eq!(m.load_latency(), 2);
}

#[test]
fn listing_of_reused_registers_shows_every_write() {
    let m = Machine::ev6();
    let p = Program {
        instrs: vec![
            instr(
                "addq",
                vec![Operand::Reg(Reg(100)), Operand::Imm(1)],
                Some(Reg(0)),
                0,
                Unit::U0,
            ),
            instr(
                "addq",
                vec![Operand::Reg(Reg(0)), Operand::Imm(1)],
                Some(Reg(0)),
                1,
                Unit::U0,
            ),
        ],
        inputs: vec![(sym("a"), Reg(100))],
        outputs: vec![(sym("res"), Reg(0))],
        name: "reuse".to_owned(),
        reg_reuse: true,
    };
    validate(&p, &m).unwrap();
    let sim = Simulator::new(&m);
    let out = sim.run_named(&p, &[("a", 40)], HashMap::new()).unwrap();
    assert_eq!(out.regs[&Reg(0)], 42);
    let listing = p.listing(4);
    assert_eq!(listing.matches("addq").count(), 2);
}

#[test]
fn reused_register_waw_violation_is_caught() {
    // Redefining a register while the previous write is in flight.
    let m = Machine::ev6();
    let p = Program {
        instrs: vec![
            instr(
                "mulq",
                vec![Operand::Reg(Reg(100)), Operand::Imm(3)],
                Some(Reg(0)),
                0,
                Unit::U1,
            ),
            instr(
                "addq",
                vec![Operand::Reg(Reg(100)), Operand::Imm(1)],
                Some(Reg(0)),
                2,
                Unit::U0,
            ),
        ],
        inputs: vec![(sym("a"), Reg(100))],
        outputs: vec![],
        name: "waw".to_owned(),
        reg_reuse: true,
    };
    let err = validate(&p, &m).unwrap_err();
    assert!(err.to_string().contains("in flight"), "{err}");
}
