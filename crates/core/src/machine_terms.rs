//! Machine-term enumeration: the schedulable candidates of a saturated
//! E-graph.
//!
//! "We define a term (that is, a node of the E-graph) to be a machine
//! term if it is an application of a machine operation. [...] The
//! arguments to a machine term need not themselves be machine terms."
//! (§6). This module walks the cone of the goal classes, turning machine
//! e-nodes into [`Candidate`]s the SAT encoding can schedule, handling
//! the operand-legality details the paper leaves implicit:
//!
//! * the Alpha's 8-bit literal field (a small constant used as a second
//!   source needs no register),
//! * constant materialization (`ldiq` pseudo-instructions for constants
//!   that do need a register),
//! * folding address arithmetic into the 16-bit displacement field of
//!   loads and stores.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use denali_arch::{Machine, Unit};
use denali_egraph::{ClassId, EGraph};
use denali_term::{ops, Op, OpKind, Symbol, Term};

use crate::matcher::Matched;

/// A register-or-literal argument of a candidate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArgSpec {
    /// The value of this equivalence class, in a register.
    Class(ClassId),
    /// An immediate literal (fits the instruction's literal field).
    Literal(u64),
}

/// What kind of instruction a candidate is.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CandidateKind {
    /// Register-to-register operation.
    Alu,
    /// Constant materialization (`ldiq value, $d`).
    LoadImm(u64),
    /// Memory load: `ldq $d, disp($base)`.
    Load {
        /// Class of the base address register.
        base: ClassId,
        /// Displacement folded into the instruction.
        disp: u64,
        /// Class of the full address (for alias reasoning).
        addr: ClassId,
    },
    /// Memory store: `stq $value, disp($base)`, realizing one level of
    /// the GMA's store chain.
    Store {
        /// Index in the store chain (0 = innermost / first store).
        level: usize,
        /// Class of the stored value.
        value: ClassId,
        /// Class of the base address register.
        base: ClassId,
        /// Displacement.
        disp: u64,
        /// Class of the full address.
        addr: ClassId,
    },
}

/// One schedulable instruction candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Opcode.
    pub op: Symbol,
    /// Canonical class of the computed value (for stores, the class of
    /// the memory term after this store level).
    pub class: ClassId,
    /// Argument specs (registers and literals), excluding memory.
    pub args: Vec<ArgSpec>,
    /// Candidate kind.
    pub kind: CandidateKind,
    /// Units the opcode may issue on.
    pub units: Vec<Unit>,
    /// Result latency.
    pub latency: u32,
}

impl Candidate {
    /// The class dependencies that must be in registers before launch.
    pub fn register_deps(&self) -> Vec<ClassId> {
        self.args
            .iter()
            .filter_map(|a| match a {
                ArgSpec::Class(c) => Some(*c),
                ArgSpec::Literal(_) => None,
            })
            .collect()
    }
}

/// The complete candidate set for one GMA.
#[derive(Clone, Default, Debug)]
pub struct Candidates {
    /// All candidates.
    pub list: Vec<Candidate>,
    /// Classes available in registers at cycle 0 (the GMA's inputs).
    pub inputs: HashMap<ClassId, Symbol>,
    /// Value-producing candidate indices per canonical class.
    pub by_class: HashMap<ClassId, Vec<usize>>,
    /// Store candidate indices grouped by chain level.
    pub store_levels: Vec<Vec<usize>>,
    /// Classes that need availability (`B`) variables.
    pub needed_classes: Vec<ClassId>,
    /// Value goal classes (guard + register targets), canonical.
    pub goal_classes: Vec<ClassId>,
    /// Class of the guard, if any (canonical).
    pub guard_class: Option<ClassId>,
}

impl Candidates {
    /// True if `class` is available at cycle 0 without any instruction.
    pub fn is_available(&self, class: ClassId) -> bool {
        self.inputs.contains_key(&class)
    }

    /// Load candidate indices.
    pub fn loads(&self) -> Vec<usize> {
        self.list
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c.kind, CandidateKind::Load { .. }))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Candidate-enumeration failure: some goal cannot be computed by any
/// machine instruction sequence (e.g. an uninterpreted operation with no
/// defining axiom).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EnumerateError {
    /// Explanation, including the offending class's operators.
    pub message: String,
}

impl fmt::Display for EnumerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EnumerateError {}

/// Positions where an instruction accepts a small literal.
fn literal_positions(op: &str, arity: usize) -> &'static [usize] {
    match (op, arity) {
        // Unary ops take a register.
        (_, 1) => &[],
        // cmov: test register, literal-capable value, old value.
        ("cmoveq" | "cmovne", 3) => &[1],
        // IA-64 shladd: the shift count is an immediate.
        ("shladd", 3) => &[1],
        // IA-64 field ops: position and length are immediates.
        ("extr_u" | "dep_z", 3) => &[1, 2],
        // Ordinary two-source ALU ops: literal in the second source.
        (_, 2) => &[1],
        _ => &[],
    }
}

/// Positions that *must* be literals (immediate-only encodings).
fn required_literal_positions(op: &str) -> &'static [usize] {
    match op {
        "shladd" => &[1],
        "extr_u" | "dep_z" => &[1, 2],
        _ => &[],
    }
}

/// Enumerates the candidates for a matched GMA.
///
/// `input_names` are the GMA's free inputs (each is a leaf term whose
/// class is available at cycle 0).
///
/// # Errors
///
/// Fails if a goal class (or any class every candidate path depends on)
/// has no computable realization.
pub fn enumerate(
    matched: &Matched,
    machine: &Machine,
    input_names: &[Symbol],
    load_latency: Option<u32>,
) -> Result<Candidates, EnumerateError> {
    enumerate_with_misses(matched, machine, input_names, load_latency, &[], 0)
}

/// [`enumerate`] with cache-miss annotations (§6): loads whose address
/// class matches one of `miss_addrs` get `miss_latency` instead of the
/// hit latency.
pub fn enumerate_with_misses(
    matched: &Matched,
    machine: &Machine,
    input_names: &[Symbol],
    load_latency: Option<u32>,
    miss_addrs: &[denali_term::Term],
    miss_latency: u32,
) -> Result<Candidates, EnumerateError> {
    let eg = &matched.egraph;
    let mut out = Candidates::default();
    let miss_classes: Vec<ClassId> = miss_addrs
        .iter()
        .filter_map(|a| eg.lookup_term(a))
        .map(|c| eg.find(c))
        .collect();

    // Input classes.
    let mem_sym = Symbol::intern("M");
    for &name in input_names {
        if name == mem_sym {
            continue;
        }
        if let Some(class) = eg.lookup_term(&Term::leaf(name)) {
            out.inputs.insert(eg.find(class), name);
        }
    }
    let mem_class = eg.lookup_term(&Term::leaf(mem_sym)).map(|c| eg.find(c));

    // Goal classes.
    out.guard_class = matched.guard.map(|c| eg.find(c));
    out.goal_classes = matched.value_goal_classes();

    // BFS over the cone of the goals, generating candidates.
    let mut queue: VecDeque<ClassId> = out.goal_classes.iter().copied().collect();
    let mut visited: HashSet<ClassId> = HashSet::new();
    let enqueue = |q: ClassId, queue: &mut VecDeque<ClassId>, visited: &HashSet<ClassId>| {
        if !visited.contains(&q) {
            queue.push_back(q);
        }
    };

    // Seed the queue with the store chain's value/address classes too.
    let store_chain = mem_chain(matched, eg, mem_class);
    for level in &store_chain {
        enqueue(level.value, &mut queue, &visited);
        enqueue(level.addr, &mut queue, &visited);
    }

    while let Some(class) = queue.pop_front() {
        let class = eg.find(class);
        if !visited.insert(class) {
            continue;
        }
        // Goal classes need a register even when they are constants, so
        // only non-goal inputs terminate the walk.
        let is_goal = out.goal_classes.contains(&class);
        if out.inputs.contains_key(&class) && !is_goal {
            continue;
        }
        // Constant: materialization candidate.
        if let Some(value) = eg.constant(class) {
            out.add_candidate(Candidate {
                op: Symbol::intern("ldiq"),
                class,
                args: vec![ArgSpec::Literal(value)],
                kind: CandidateKind::LoadImm(value),
                units: machine
                    .info(Symbol::intern("ldiq"))
                    .expect("ldiq is an instruction")
                    .units
                    .clone(),
                latency: 1,
            });
            continue;
        }
        for &nid in eg.class_node_ids(class) {
            let Some(op) = eg.node_op(nid).as_sym() else {
                continue;
            };
            let children = eg.node_children(nid);
            let name = op.as_str();
            if name == "stq" {
                continue; // handled through the store chain
            }
            if name == "ldq" {
                // Load from the *initial* memory only; loads from a
                // stored memory are resolved by the select/store axioms
                // or are unschedulable (ambiguous aliasing).
                let node_mem = eg.find(children[0]);
                if Some(node_mem) != mem_class {
                    continue;
                }
                let addr = eg.find(children[1]);
                let info = machine.info(op).expect("ldq is an instruction");
                let latency = if miss_classes.contains(&addr) {
                    miss_latency
                } else {
                    load_latency.unwrap_or(info.latency)
                };
                for (base, disp) in address_choices(eg, addr, machine) {
                    out.add_candidate(Candidate {
                        op,
                        class,
                        args: vec![ArgSpec::Class(base)],
                        kind: CandidateKind::Load { base, disp, addr },
                        units: info.units.clone(),
                        latency,
                    });
                    enqueue(base, &mut queue, &visited);
                }
                continue;
            }
            let Some(info) = machine.info(op) else {
                continue;
            };
            // Ordinary register-to-register machine operation.
            if ops::info(op).map(|i| i.kind) == Some(OpKind::MachineMemory) {
                continue;
            }
            let literal_pos = literal_positions(name, children.len());
            let required = required_literal_positions(name);
            let mut args = Vec::with_capacity(children.len());
            let mut legal = true;
            for (pos, &child) in children.iter().enumerate() {
                let child = eg.find(child);
                let literal = eg
                    .constant(child)
                    .filter(|&v| literal_pos.contains(&pos) && machine.fits_alu_literal(v));
                match literal {
                    Some(v) => args.push(ArgSpec::Literal(v)),
                    None if required.contains(&pos) => {
                        // Immediate-only encoding with no usable constant.
                        legal = false;
                        break;
                    }
                    None => {
                        args.push(ArgSpec::Class(child));
                        enqueue(child, &mut queue, &visited);
                    }
                }
            }
            if !legal {
                continue;
            }
            out.add_candidate(Candidate {
                op,
                class,
                args,
                kind: CandidateKind::Alu,
                units: info.units.clone(),
                latency: info.latency,
            });
        }
    }

    // Store candidates per chain level.
    for (level_idx, level) in store_chain.iter().enumerate() {
        let info = machine
            .info(Symbol::intern("stq"))
            .expect("stq is an instruction");
        let mut level_cands = Vec::new();
        for (base, disp) in address_choices(eg, level.addr, machine) {
            let idx = out.list.len();
            out.list.push(Candidate {
                op: Symbol::intern("stq"),
                class: level.class,
                args: vec![ArgSpec::Class(level.value), ArgSpec::Class(base)],
                kind: CandidateKind::Store {
                    level: level_idx,
                    value: level.value,
                    base,
                    disp,
                    addr: level.addr,
                },
                units: info.units.clone(),
                latency: info.latency,
            });
            level_cands.push(idx);
        }
        out.store_levels.push(level_cands);
    }

    // Needed classes: every register dependency plus the value goals.
    let mut needed: Vec<ClassId> = Vec::new();
    let push_needed = |c: ClassId, needed: &mut Vec<ClassId>| {
        if !needed.contains(&c) {
            needed.push(c);
        }
    };
    for goal in &out.goal_classes {
        push_needed(*goal, &mut needed);
    }
    for cand in &out.list {
        for dep in cand.register_deps() {
            push_needed(dep, &mut needed);
        }
    }
    out.needed_classes = needed;

    // Computability fixpoint; prune dead candidates and detect
    // unschedulable goals.
    out.prune(eg)?;
    Ok(out)
}

struct StoreLevel {
    /// Class of the memory term after this store.
    class: ClassId,
    value: ClassId,
    addr: ClassId,
}

/// Walks the GMA's memory chain term from the innermost store outward,
/// resolving each level's value/address classes. Levels that collapse to
/// the previous memory (a store the axioms proved redundant) are
/// dropped.
fn mem_chain(matched: &Matched, eg: &EGraph, mem_class: Option<ClassId>) -> Vec<StoreLevel> {
    let Some(term) = &matched.mem_term else {
        return Vec::new();
    };
    // Collect store(...) terms from outermost to innermost, then reverse.
    let mut levels_outer_first = Vec::new();
    let mut cursor = term;
    loop {
        match cursor.op() {
            Op::Sym(s) if s.as_str() == "store" => {
                levels_outer_first.push(cursor.clone());
                cursor = &cursor.args()[0];
            }
            _ => break,
        }
    }
    let mut prev_class = mem_class;
    let mut out = Vec::new();
    for term in levels_outer_first.iter().rev() {
        let Some(class) = eg.lookup_term(term) else {
            continue;
        };
        let class = eg.find(class);
        if Some(class) == prev_class {
            // This store is a no-op (e.g. store(a, i, select(a, i))).
            continue;
        }
        let addr = eg.lookup_term(&term.args()[1]).map(|c| eg.find(c));
        let value = eg.lookup_term(&term.args()[2]).map(|c| eg.find(c));
        if let (Some(addr), Some(value)) = (addr, value) {
            out.push(StoreLevel { class, value, addr });
        }
        prev_class = Some(class);
    }
    out
}

/// The usable `(base, displacement)` decompositions of an address class.
fn address_choices(eg: &EGraph, addr: ClassId, machine: &Machine) -> Vec<(ClassId, u64)> {
    let mut choices: Vec<(ClassId, u64)> = Vec::new();
    for (base, disp) in eg.address_decompositions(addr) {
        if machine.fits_displacement(disp) && !choices.contains(&(base, disp)) {
            // A base that is itself a small literal would still need a
            // register; keep it (the ldiq candidate covers it).
            choices.push((base, disp));
        }
    }
    choices
}

impl Candidates {
    fn add_candidate(&mut self, cand: Candidate) {
        let class = cand.class;
        let idx = self.list.len();
        let is_store = matches!(cand.kind, CandidateKind::Store { .. });
        self.list.push(cand);
        if !is_store {
            self.by_class.entry(class).or_default().push(idx);
        }
    }

    /// Fixpoint computability check; removes candidates that can never
    /// launch and errors if a goal (or store input) is uncomputable.
    fn prune(&mut self, eg: &EGraph) -> Result<(), EnumerateError> {
        let mut computable: HashSet<ClassId> = self.inputs.keys().copied().collect();
        loop {
            let mut changed = false;
            for cand in &self.list {
                if matches!(cand.kind, CandidateKind::Store { .. }) {
                    continue;
                }
                if computable.contains(&cand.class) {
                    continue;
                }
                if cand.register_deps().iter().all(|d| computable.contains(d)) {
                    computable.insert(cand.class);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let describe = |c: ClassId| -> String {
            let ops: Vec<String> = eg
                .class_node_ids(c)
                .iter()
                .map(|&nid| format!("{}", eg.node_op(nid)))
                .collect();
            format!("{c} [{}]", ops.join(", "))
        };
        for goal in &self.goal_classes {
            if !computable.contains(goal) {
                return Err(EnumerateError {
                    message: format!(
                        "goal class {} has no machine realization; \
                         add defining axioms for its operations",
                        describe(*goal)
                    ),
                });
            }
        }
        for level in &self.store_levels {
            let ok = level.iter().any(|&i| {
                self.list[i]
                    .register_deps()
                    .iter()
                    .all(|d| computable.contains(d))
            });
            if !ok {
                return Err(EnumerateError {
                    message: "a store level has no computable address/value".to_owned(),
                });
            }
        }
        // Prune candidates with uncomputable dependencies.
        let keep: Vec<bool> = self
            .list
            .iter()
            .map(|c| c.register_deps().iter().all(|d| computable.contains(d)))
            .collect();
        let mut remap: HashMap<usize, usize> = HashMap::new();
        let mut new_list = Vec::new();
        for (i, cand) in self.list.drain(..).enumerate() {
            if keep[i] {
                remap.insert(i, new_list.len());
                new_list.push(cand);
            }
        }
        self.list = new_list;
        for indices in self.by_class.values_mut() {
            *indices = indices
                .iter()
                .filter_map(|i| remap.get(i).copied())
                .collect();
        }
        self.by_class.retain(|_, v| !v.is_empty());
        for level in &mut self.store_levels {
            *level = level.iter().filter_map(|i| remap.get(i).copied()).collect();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_gma;
    use denali_axioms::SaturationLimits;
    use denali_lang::{lower_proc, parse_program};

    fn candidates_for(text: &str) -> (Matched, Candidates) {
        let p = parse_program(text).unwrap();
        let gma = lower_proc(&p.procs[0]).unwrap().remove(0);
        let matched = match_gma(
            &gma,
            &denali_axioms::standard_axioms(),
            &SaturationLimits::default(),
        )
        .unwrap();
        let inputs = gma.inputs();
        let cands = enumerate(&matched, &Machine::ev6(), &inputs, None).unwrap();
        (matched, cands)
    }

    #[test]
    fn figure2_candidates_include_s4addq() {
        let (matched, cands) =
            candidates_for("(procdecl f ((reg6 long)) long (:= (res (+ (* reg6 4) 1))))");
        let goal = matched.egraph.find(matched.assigns[0]);
        let ops: Vec<&str> = cands.by_class[&goal]
            .iter()
            .map(|&i| cands.list[i].op.as_str())
            .collect();
        assert!(ops.contains(&"s4addq"), "{ops:?}");
        assert!(ops.contains(&"addq"), "{ops:?}");
        // s4addq's second argument is the literal 1.
        let s4 = cands.by_class[&goal]
            .iter()
            .map(|&i| &cands.list[i])
            .find(|c| c.op.as_str() == "s4addq")
            .unwrap();
        assert_eq!(s4.args.len(), 2);
        assert!(matches!(s4.args[1], ArgSpec::Literal(1)));
        assert!(matches!(s4.args[0], ArgSpec::Class(_)));
    }

    #[test]
    fn large_constants_get_ldiq_candidates() {
        let (matched, cands) =
            candidates_for("(procdecl f ((a long)) long (:= (res (& a 65535))))");
        // 65535 exceeds the literal field; zapnot/extwl avoid it, but the
        // plain `and` path needs a materialized constant.
        let has_ldiq = cands
            .list
            .iter()
            .any(|c| matches!(c.kind, CandidateKind::LoadImm(65535)));
        assert!(has_ldiq, "{:?}", cands.list);
        let goal = matched.egraph.find(matched.assigns[0]);
        let ops: Vec<&str> = cands.by_class[&goal]
            .iter()
            .map(|&i| cands.list[i].op.as_str())
            .collect();
        assert!(ops.contains(&"zapnot"), "{ops:?}");
        assert!(ops.contains(&"extwl"), "{ops:?}");
    }

    #[test]
    fn loads_fold_displacements() {
        let (_, cands) = candidates_for("(procdecl f ((p long*)) long (:= (res (deref (+ p 8)))))");
        let loads: Vec<&Candidate> = cands
            .list
            .iter()
            .filter(|c| matches!(c.kind, CandidateKind::Load { .. }))
            .collect();
        assert!(!loads.is_empty());
        assert!(
            loads
                .iter()
                .any(|c| matches!(c.kind, CandidateKind::Load { disp: 8, .. })),
            "{loads:?}"
        );
    }

    #[test]
    fn store_chain_levels_are_found() {
        let (_, cands) = candidates_for(
            "(procdecl f ((p long*) (x long) (y long)) long
               (semi
                 (:= ((deref p) x))
                 (:= ((deref (+ p 8)) y))
                 (:= (res x))))",
        );
        assert_eq!(cands.store_levels.len(), 2);
        assert!(cands.store_levels.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn uninterpreted_goal_is_rejected() {
        let p = parse_program("(procdecl f ((a long)) long (:= (res (mystery a))))").unwrap();
        let gma = lower_proc(&p.procs[0]).unwrap().remove(0);
        let matched = match_gma(
            &gma,
            &denali_axioms::standard_axioms(),
            &SaturationLimits::default(),
        )
        .unwrap();
        let inputs = gma.inputs();
        let err = enumerate(&matched, &Machine::ev6(), &inputs, None).unwrap_err();
        assert!(err.to_string().contains("no machine realization"));
    }

    #[test]
    fn goal_constant_still_needs_a_register() {
        let (matched, cands) = candidates_for("(procdecl f ((a long)) long (:= (res 7)))");
        let goal = matched.egraph.find(matched.assigns[0]);
        assert!(!cands.is_available(goal));
        let ops: Vec<&str> = cands.by_class[&goal]
            .iter()
            .map(|&i| cands.list[i].op.as_str())
            .collect();
        assert!(ops.contains(&"ldiq"), "{ops:?}");
    }

    #[test]
    fn load_latency_override_applies() {
        let p = parse_program("(procdecl f ((p long*)) long (:= (res (deref p))))").unwrap();
        let gma = lower_proc(&p.procs[0]).unwrap().remove(0);
        let matched = match_gma(
            &gma,
            &denali_axioms::standard_axioms(),
            &SaturationLimits::default(),
        )
        .unwrap();
        let inputs = gma.inputs();
        let cands = enumerate(&matched, &Machine::ev6(), &inputs, Some(12)).unwrap();
        let load = cands
            .list
            .iter()
            .find(|c| matches!(c.kind, CandidateKind::Load { .. }))
            .unwrap();
        assert_eq!(load.latency, 12);
    }
}
