//! Engine selection and the stochastic (MCMC) second optimizer.
//!
//! The SAT search is provably optimal but its CNF blows up on large
//! GMAs; the stochastic engine (`denali-stoke`) trades the optimality
//! proof for an anytime search that always has a *verified* answer in
//! hand. This module wires the chain into the pipeline: engine choice
//! (`--engine sat|stochastic|auto`, `DENALI_ENGINE`), equivalence-move
//! mining from the saturated e-graph, the goal-semantics oracle the
//! chain verifies against, and the anytime slot the serve deadline
//! watchdog harvests when a request expires mid-compile.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use denali_arch::{Machine, Program};
use denali_lang::Gma;
use denali_stoke::{EquivRule, Sketch, StokeConfig, StokeOutcome, ValRef};
use denali_term::value::Env;
use denali_term::{ops, Op, Symbol, Term};
use denali_trace::Tracer;

use crate::matcher::Matched;

/// Which optimizer answers a compile.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineChoice {
    /// The SAT cycle-budget search (provably optimal; the default).
    #[default]
    Sat,
    /// The stochastic (MCMC) engine only: skip SAT entirely.
    Stochastic,
    /// SAT with a stochastic safety net: an anytime prepass publishes
    /// verified candidates for deadline harvesting, and a SAT budget
    /// exhaustion ("no schedule within N cycles") falls back to a full
    /// stochastic run instead of failing.
    Auto,
}

impl EngineChoice {
    /// Parses `sat` / `stochastic` / `auto` (case-insensitive).
    pub fn parse(s: &str) -> Option<EngineChoice> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sat" => Some(EngineChoice::Sat),
            "stochastic" | "stoke" | "mcmc" => Some(EngineChoice::Stochastic),
            "auto" => Some(EngineChoice::Auto),
            _ => None,
        }
    }

    /// Canonical name (what fingerprints and response bodies carry).
    pub fn as_str(self) -> &'static str {
        match self {
            EngineChoice::Sat => "sat",
            EngineChoice::Stochastic => "stochastic",
            EngineChoice::Auto => "auto",
        }
    }
}

impl std::fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `DENALI_ENGINE` (`sat`/`stochastic`/`auto`), defaulting to `sat`.
pub fn env_engine() -> EngineChoice {
    std::env::var("DENALI_ENGINE")
        .ok()
        .and_then(|v| EngineChoice::parse(&v))
        .unwrap_or(EngineChoice::Sat)
}

/// Chain scheduling knobs. None of these are output-affecting in the
/// fingerprint sense — like `threads` and `portfolio`, they tune *how*
/// a verified answer is found, and the serve cache only stores
/// complete deterministic runs — so they are all excluded from the
/// compilation fingerprint (pinned by the fingerprint tests).
#[derive(Clone, Copy, Debug)]
pub struct StokeKnobs {
    /// Chain seed (`DENALI_STOKE_SEED`).
    pub seed: u64,
    /// Proposal budget for a full stochastic run
    /// (`DENALI_STOKE_ITERATIONS`).
    pub iterations: u64,
    /// Proposal budget for the bounded anytime prepass `auto` mode
    /// runs before handing over to SAT.
    pub auto_iterations: u64,
}

impl Default for StokeKnobs {
    fn default() -> StokeKnobs {
        let defaults = StokeConfig::default();
        let env_u64 = |name: &str| std::env::var(name).ok().and_then(|v| v.trim().parse().ok());
        StokeKnobs {
            seed: env_u64("DENALI_STOKE_SEED").unwrap_or(defaults.seed),
            iterations: env_u64("DENALI_STOKE_ITERATIONS").unwrap_or(defaults.iterations),
            auto_iterations: 6_000,
        }
    }
}

impl StokeKnobs {
    /// The chain configuration for a run with the given proposal
    /// budget.
    pub fn config(&self, iterations: u64) -> StokeConfig {
        StokeConfig {
            seed: self.seed,
            iterations,
            ..StokeConfig::default()
        }
    }
}

/// A verified best-so-far candidate published on the anytime channel.
#[derive(Clone, Debug)]
pub struct AnytimeBest {
    /// The simulator-verified, validation-clean program.
    pub program: Program,
    /// Its schedule length.
    pub cycles: u32,
    /// Schedule length of the baseline rewrite it beats.
    pub baseline_cycles: u32,
}

/// The anytime channel: per-GMA verified best candidates, keyed by GMA
/// name. The compile pipeline publishes into the slot as the chain
/// improves; the serve deadline watchdog snapshots it when a request
/// expires so the response carries the best verified program instead
/// of the baseline.
#[derive(Clone, Default, Debug)]
pub struct AnytimeSlot {
    inner: Arc<Mutex<HashMap<String, AnytimeBest>>>,
}

impl AnytimeSlot {
    /// Creates an empty slot.
    pub fn new() -> AnytimeSlot {
        AnytimeSlot::default()
    }

    /// Records `best` for `name` if it is the first candidate or beats
    /// the recorded one.
    pub fn publish(&self, name: &str, best: AnytimeBest) {
        let mut map = self.inner.lock().expect("anytime slot poisoned");
        match map.get(name) {
            Some(prev) if prev.cycles <= best.cycles => {}
            _ => {
                map.insert(name.to_owned(), best);
            }
        }
    }

    /// The best candidate recorded for `name`, if any.
    pub fn get(&self, name: &str) -> Option<AnytimeBest> {
        self.inner
            .lock()
            .expect("anytime slot poisoned")
            .get(name)
            .cloned()
    }
}

/// True when the stochastic engine can search this goal: straight-line
/// (no guard), register-only (no memory), and every operation has
/// executable semantics (checked again during sketch conversion).
pub(crate) fn stoke_supported(gma: &Gma) -> bool {
    gma.guard.is_none() && !gma.touches_memory()
}

/// Builds the goal-semantics oracle for `gma`: maps an input vector
/// (in `inputs` order) to the goal's outputs (in `outputs` order) via
/// term evaluation — independent of any generated program, so chain
/// candidates are checked against what the source *means*.
pub(crate) fn gma_oracle<'g>(
    gma: &'g Gma,
    inputs: Vec<Symbol>,
    outputs: Vec<Symbol>,
) -> impl FnMut(&[u64]) -> Option<Vec<u64>> + 'g {
    move |vals: &[u64]| {
        let mut env = Env::new();
        for (sym, v) in inputs.iter().zip(vals) {
            env.set_word(*sym, *v);
        }
        let eval = gma.evaluate(&env).ok()?;
        outputs
            .iter()
            .map(|want| {
                eval.assigns
                    .iter()
                    .find(|(name, _)| name == want)
                    .map(|&(_, v)| v)
            })
            .collect()
    }
}

/// Ceiling on mined rules per chain (deterministic prefix is kept).
const MAX_RULES: usize = 512;

/// Mines rewrite-to-equivalent moves from the saturated e-graph: for
/// each sketch cell, look up its denotation's class and turn every
/// machine-executable e-node of that class whose children are already
/// available as sketch values into an [`EquivRule`]. Read-only on the
/// e-graph; resolution is deterministic (cells ascending, class node
/// lists in arena order).
pub(crate) fn mine_equiv_rules(
    matched: &Matched,
    machine: &Machine,
    sketch: &Sketch,
) -> Vec<EquivRule> {
    let egraph = &matched.egraph;
    let mov = Symbol::intern("mov");
    let ldiq = Symbol::intern("ldiq");

    // Denotation term per cell (None when a cell mixes into territory
    // the e-graph never saw — pads referencing pads are fine, they
    // resolve through the mov chain).
    let mut terms: Vec<Option<Term>> = Vec::with_capacity(sketch.cells.len());
    let input_term = |i: usize| Term::leaf(sketch.inputs[i].0);
    for cell in &sketch.cells {
        let arg_term = |v: &ValRef| -> Option<Term> {
            match *v {
                ValRef::Input(i) => Some(input_term(i)),
                ValRef::Cell(j) => terms[j].clone(),
                ValRef::Imm(k) => Some(Term::constant(k)),
            }
        };
        let term = if cell.op == mov {
            arg_term(&cell.args[0])
        } else if cell.op == ldiq {
            match cell.args[0] {
                ValRef::Imm(v) => Some(Term::constant(v)),
                _ => None,
            }
        } else {
            cell.args
                .iter()
                .map(arg_term)
                .collect::<Option<Vec<_>>>()
                .map(|args| Term::new(Op::Sym(cell.op), args))
        };
        terms.push(term);
    }

    // Canonical class → earliest sketch value computing it.
    let mut by_class: HashMap<denali_egraph::ClassId, ValRef> = HashMap::new();
    for (i, &(sym, _)) in sketch.inputs.iter().enumerate() {
        if let Some(class) = egraph.lookup_term(&Term::leaf(sym)) {
            by_class
                .entry(egraph.find(class))
                .or_insert(ValRef::Input(i));
        }
    }

    let mut rules: Vec<EquivRule> = Vec::new();
    for (i, cell) in sketch.cells.iter().enumerate() {
        let class = terms[i]
            .as_ref()
            .and_then(|t| egraph.lookup_term(t))
            .map(|c| egraph.find(c));
        let Some(class) = class else {
            continue;
        };
        // Constant classes become ldiq materializations.
        if let Some(v) = egraph.constant(class) {
            let rule = EquivRule {
                cell: i,
                op: ldiq,
                args: vec![ValRef::Imm(v)],
            };
            let is_noop = cell.op == rule.op && cell.args == rule.args;
            if !is_noop && !rules.contains(&rule) {
                rules.push(rule);
            }
        }
        for &node in egraph.class_node_ids(class) {
            if rules.len() >= MAX_RULES {
                break;
            }
            let Op::Sym(op) = egraph.node_op(node) else {
                continue;
            };
            let name = op.as_str();
            if !machine.is_instruction(op)
                || name == "ldq"
                || name == "stq"
                || name == "mov"
                || name == "ldiq"
                || ops::info(op).is_none_or(|info| info.eval.is_none())
            {
                continue;
            }
            let args: Option<Vec<ValRef>> = egraph
                .node_children(node)
                .iter()
                .enumerate()
                .map(|(pos, &child)| {
                    let child = egraph.find(child);
                    match by_class.get(&child) {
                        Some(&v @ ValRef::Input(_)) => Some(v),
                        Some(&v @ ValRef::Cell(j)) if j < i => Some(v),
                        _ => egraph
                            .constant(child)
                            .filter(|&v| denali_stoke::imm_ok(machine, op, pos, v))
                            .map(ValRef::Imm),
                    }
                })
                .collect();
            let Some(args) = args else {
                continue;
            };
            if cell.op == op && cell.args == args {
                continue; // identity: the cell already computes this
            }
            let rule = EquivRule { cell: i, op, args };
            if !rules.contains(&rule) {
                rules.push(rule);
            }
        }
        by_class.entry(class).or_insert(ValRef::Cell(i));
        if rules.len() >= MAX_RULES {
            break;
        }
    }
    rules
}

/// One stochastic search over a single GMA, with anytime publishing.
/// Returns `None` when the goal is outside the engine's fragment (the
/// caller then falls back to the baseline program untouched).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_chain(
    machine: &Machine,
    gma: &Gma,
    matched: Option<&Matched>,
    baseline: &Program,
    knobs: &StokeKnobs,
    iterations: u64,
    cancel: Option<&denali_par::CancelToken>,
    tracer: &Tracer,
    anytime: Option<&AnytimeSlot>,
) -> Option<StokeOutcome> {
    if !stoke_supported(gma) {
        return None;
    }
    let max_cells = StokeConfig::default().max_cells;
    let sketch = Sketch::from_program(baseline, machine, max_cells)?;
    let rules = matched
        .map(|m| mine_equiv_rules(m, machine, &sketch))
        .unwrap_or_default();
    let input_syms: Vec<Symbol> = sketch.inputs.iter().map(|&(s, _)| s).collect();
    let output_syms: Vec<Symbol> = sketch.outputs.iter().map(|&(s, _)| s).collect();
    let mut oracle = gma_oracle(gma, input_syms, output_syms);
    let baseline_cycles = baseline.cycles();
    let name = gma.name.clone();
    let mut on_best = |program: &Program, cycles: u32| {
        if let Some(slot) = anytime {
            if cycles < baseline_cycles {
                slot.publish(
                    &name,
                    AnytimeBest {
                        program: program.clone(),
                        cycles,
                        baseline_cycles,
                    },
                );
            }
        }
    };
    let config = knobs.config(iterations);
    Some(denali_stoke::optimize(
        machine,
        &sketch,
        baseline,
        &mut oracle,
        &rules,
        &config,
        cancel,
        tracer,
        &mut on_best,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_choice_parses_and_round_trips() {
        assert_eq!(EngineChoice::parse("sat"), Some(EngineChoice::Sat));
        assert_eq!(EngineChoice::parse("SAT"), Some(EngineChoice::Sat));
        assert_eq!(
            EngineChoice::parse("stochastic"),
            Some(EngineChoice::Stochastic)
        );
        assert_eq!(EngineChoice::parse(" auto "), Some(EngineChoice::Auto));
        assert_eq!(EngineChoice::parse("dpll"), None);
        for e in [
            EngineChoice::Sat,
            EngineChoice::Stochastic,
            EngineChoice::Auto,
        ] {
            assert_eq!(EngineChoice::parse(e.as_str()), Some(e));
        }
    }

    #[test]
    fn anytime_slot_keeps_the_cheapest() {
        let slot = AnytimeSlot::new();
        let program = Program::default();
        slot.publish(
            "g",
            AnytimeBest {
                program: program.clone(),
                cycles: 5,
                baseline_cycles: 9,
            },
        );
        slot.publish(
            "g",
            AnytimeBest {
                program: program.clone(),
                cycles: 7,
                baseline_cycles: 9,
            },
        );
        assert_eq!(slot.get("g").unwrap().cycles, 5, "worse never overwrites");
        slot.publish(
            "g",
            AnytimeBest {
                program,
                cycles: 3,
                baseline_cycles: 9,
            },
        );
        assert_eq!(slot.get("g").unwrap().cycles, 3);
        assert!(slot.get("other").is_none());
    }
}
