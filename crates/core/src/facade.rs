//! The end-to-end Denali pipeline.

use std::fmt;

use denali_arch::Machine;
use denali_axioms::{Axiom, SaturationLimits, SaturationReport};
use denali_lang::{lower_proc, parse_program, Gma, SourceProgram};
use denali_par::CancelToken;

use denali_trace::{field, Tracer};

use crate::encode::EncodeOptions;
use crate::engine::{env_engine, run_chain, AnytimeSlot, EngineChoice, StokeKnobs};
use crate::matcher::match_gma_traced;
use crate::search::{search_traced, ProbeStats, SearchOutcome, SearchParams};
use crate::telemetry::Telemetry;

pub use crate::search::SolverChoice;

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct Options {
    /// Target machine description.
    pub machine: Machine,
    /// Matcher budgets.
    pub saturation: SaturationLimits,
    /// Encoding behaviors (§7).
    pub encode: EncodeOptions,
    /// SAT engine.
    pub solver: SolverChoice,
    /// Give up if no schedule exists within this many cycles.
    pub max_cycles: u32,
    /// Extra axioms applied to every GMA (beyond the built-ins and the
    /// program's own axioms).
    pub extra_axioms: Vec<Axiom>,
    /// Override the default load latency (the paper's memory-latency
    /// annotations from profiling).
    pub load_latency: Option<u32>,
    /// Latency charged to loads annotated `\derefm` (likely cache
    /// misses).
    pub miss_latency: u32,
    /// If set, every SAT probe's CNF is written to this directory in
    /// DIMACS format (`<gma>_k<K>.cnf`), for comparison with external
    /// solvers.
    pub dump_dimacs: Option<std::path::PathBuf>,
    /// Automatically software-pipeline loop loads (the Figure 6 hand
    /// transformation, mechanized; the paper's unimplemented design).
    pub pipeline_loads: bool,
    /// Worker threads for both phases: parallel e-matching during
    /// saturation and speculative SAT probes during the search. `1` is
    /// the serial pipeline, `0` means one thread per available CPU.
    /// Results are byte-identical at every setting. Any value other
    /// than `1` overrides [`SaturationLimits::threads`]. Defaults to
    /// the `DENALI_THREADS` environment variable, else `1`.
    pub threads: usize,
    /// Reuse one persistent CDCL solver across the search's cycle
    /// budgets via assumption probing (serial CDCL searches without a
    /// DIMACS dump only; speculative and DPLL probes keep per-probe
    /// solvers). Probe outcomes, cycle counts, certificates, and
    /// programs are identical either way — only wall-clock and the
    /// reported formula/solver counters change. Defaults to on;
    /// `DENALI_INCREMENTAL=0` turns it off.
    pub incremental: bool,
    /// Portfolio width for SAT probes: `0` (the default) or `1` races
    /// nothing; `N >= 2` answers every probe by racing N diversified
    /// CDCL configurations (restart schedule, initial phase / phase
    /// saving, VSIDS decay) on scoped threads, cancelling the losers as
    /// soon as the first verdict lands. Output is byte-identical to the
    /// non-portfolio pipeline — only wall-clock and the reported solver
    /// counters change — so, like [`Options::threads`], this is never
    /// part of the compilation fingerprint. Forces fresh per-probe
    /// solvers and is ignored under DPLL. Defaults to the
    /// `DENALI_PORTFOLIO` environment variable, else `0`.
    pub portfolio: usize,
    /// Collect a structured trace of the pipeline (hierarchical spans
    /// and events; see `docs/TRACING.md`). Tracing never perturbs
    /// results — it only records them — and disabled tracing costs one
    /// pointer check per instrumentation point. Defaults to the
    /// `DENALI_TRACE` environment variable, else off.
    pub trace: bool,
    /// External cancellation (request deadlines, server shutdown).
    /// When the token is raised, the pipeline stops at the next phase
    /// boundary — or mid-probe inside the SAT search — and reports a
    /// [`CompileError`] whose [`CompileError::is_cancelled`] is true.
    /// Never part of the compilation fingerprint.
    pub cancel: Option<CancelToken>,
    /// Which optimizer answers compiles: the SAT search (`sat`, the
    /// default), the stochastic MCMC engine (`stochastic`), or SAT
    /// with a stochastic anytime prepass and budget-exhaustion
    /// fallback (`auto`). Output-affecting, so part of the
    /// fingerprint. Defaults to the `DENALI_ENGINE` environment
    /// variable, else `sat`.
    pub engine: EngineChoice,
    /// Stochastic-chain scheduling knobs (seed, proposal budgets).
    /// Excluded from the fingerprint, like `threads`.
    pub stoke: StokeKnobs,
    /// The anytime channel: when set, verified stochastic candidates
    /// that beat the baseline are published here as they are found,
    /// so a deadline-cancelled compile still leaves a harvestable
    /// result. Never part of the fingerprint.
    pub anytime: Option<AnytimeSlot>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            machine: Machine::ev6(),
            saturation: SaturationLimits::default(),
            encode: EncodeOptions::default(),
            solver: SolverChoice::Cdcl,
            max_cycles: 48,
            extra_axioms: Vec::new(),
            load_latency: None,
            miss_latency: 20,
            dump_dimacs: None,
            pipeline_loads: false,
            threads: env_threads(),
            incremental: env_incremental(),
            portfolio: env_portfolio(),
            trace: denali_trace::env_enabled(),
            cancel: None,
            engine: env_engine(),
            stoke: StokeKnobs::default(),
            anytime: None,
        }
    }
}

/// `DENALI_THREADS` (a worker count, `0` = auto), defaulting to the
/// serial pipeline.
fn env_threads() -> usize {
    std::env::var("DENALI_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

/// `DENALI_INCREMENTAL` (`0`/`false`/`off` disable), defaulting to on.
fn env_incremental() -> bool {
    match std::env::var("DENALI_INCREMENTAL") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

/// `DENALI_PORTFOLIO` (a race width, `0`/`1` = off), defaulting to off.
fn env_portfolio() -> usize {
    std::env::var("DENALI_PORTFOLIO")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Code generation for one GMA, with full diagnostics.
#[derive(Clone, Debug)]
pub struct CompiledGma {
    /// The GMA that was compiled.
    pub gma: Gma,
    /// The generated (validated) program.
    pub program: denali_arch::Program,
    /// Optimal cycle count found.
    pub cycles: u32,
    /// True if `cycles - 1` was refuted.
    pub refuted_below: bool,
    /// Matching-phase report.
    pub matcher: SaturationReport,
    /// Every SAT probe (budget, size, outcome, time).
    pub probes: Vec<ProbeStats>,
    /// Wall-clock milliseconds in the matching phase.
    pub match_ms: f64,
    /// Total wall-clock milliseconds in encoding + solving.
    pub search_ms: f64,
    /// Per-phase timings (`match`, `enumerate`, `search`).
    pub telemetry: Telemetry,
    /// Memory accounting of the saturated e-graph (arena/SoA storage).
    /// Diagnostic only: not part of the fingerprint or the response
    /// payload, but aggregated into the serve `stats` gauges.
    pub egraph_memory: denali_egraph::MemoryStats,
    /// Which engine produced `program`: [`EngineChoice::Sat`] (probes
    /// carry the optimality ladder) or [`EngineChoice::Stochastic`]
    /// (no optimality claim; `refuted_below` is always false). `Auto`
    /// never appears here — it resolves to whichever engine answered.
    pub engine: EngineChoice,
}

impl CompiledGma {
    /// Total milliseconds spent inside the SAT solver.
    pub fn solver_ms(&self) -> f64 {
        self.probes.iter().map(|p| p.solve_ms).sum()
    }

    /// Learned clauses carried into probes from earlier probes on the
    /// same solver — nonzero only when incremental probing reused a
    /// solver (and it learned something worth carrying).
    pub fn carried_clauses(&self) -> u64 {
        self.probes
            .iter()
            .filter_map(|p| p.solver.as_ref())
            .map(|s| s.carried_learned)
            .sum()
    }
}

/// Result of compiling a source file (one entry per GMA of the chosen
/// procedure).
#[derive(Clone, Debug)]
pub struct CompileResult {
    /// Compiled GMAs, in program order.
    pub gmas: Vec<CompiledGma>,
}

impl CompileResult {
    /// The largest compiled GMA (typically the inner loop) — a
    /// convenience for single-kernel programs.
    pub fn main(&self) -> &CompiledGma {
        self.gmas
            .iter()
            .max_by_key(|g| g.program.len())
            .expect("at least one GMA")
    }
}

/// Pipeline failure.
#[derive(Clone, Debug)]
pub struct CompileError {
    /// Which stage failed.
    pub stage: &'static str,
    /// Explanation.
    pub message: String,
}

impl CompileError {
    /// The stage name reported when [`Options::cancel`] stopped the
    /// pipeline.
    pub const CANCELLED: &'static str = "cancelled";

    /// True if this error reports external cancellation (a deadline or
    /// shutdown), not a genuine failure. Cancelled compilations are the
    /// server's cue to fall back to the baseline (degraded) program.
    pub fn is_cancelled(&self) -> bool {
        self.stage == CompileError::CANCELLED
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.stage, self.message)
    }
}

impl std::error::Error for CompileError {}

fn stage_err<E: fmt::Display>(stage: &'static str) -> impl Fn(E) -> CompileError {
    move |e| CompileError {
        stage,
        message: e.to_string(),
    }
}

/// A procedure readied for compilation: parsed, lowered to GMAs, with
/// its full axiom set assembled (built-ins, [`Options::extra_axioms`],
/// and the program's own axiom forms) and loop loads pipelined when
/// [`Options::pipeline_loads`] is set.
///
/// This is the front half of [`Denali::compile_proc`], split out so a
/// caller can [`Denali::fingerprint`] the work before paying for it —
/// the basis of the serve crate's content-addressed result cache.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// The procedure's name.
    pub name: String,
    /// The lowered GMAs, in program order.
    pub gmas: Vec<Gma>,
    /// Every axiom the matcher will use.
    pub axioms: Vec<Axiom>,
}

/// The Denali superoptimizer façade.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Denali {
    options: Options,
    tracer: Tracer,
}

impl Default for Denali {
    fn default() -> Denali {
        // Through `new` so the tracer honors `Options::trace` (which
        // reads `DENALI_TRACE` by default).
        Denali::new(Options::default())
    }
}

impl Denali {
    /// Creates a pipeline with the given options. An enabled tracer is
    /// created iff [`Options::trace`] is set.
    pub fn new(options: Options) -> Denali {
        let tracer = Tracer::when(options.trace);
        Denali { options, tracer }
    }

    /// The configured options.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// A pipeline identical to this one but cancellable via `token`,
    /// sharing this façade's tracer (so records from both accumulate
    /// in one place). Serving installs per-request tokens this way:
    /// preparation runs uncancellable on the shared façade, and each
    /// admitted compile gets its own deadline-armed token without
    /// rebuilding options or splitting the trace.
    #[must_use]
    pub fn with_cancel(&self, token: CancelToken) -> Denali {
        let mut options = self.options.clone();
        options.cancel = Some(token);
        Denali {
            options,
            tracer: self.tracer.clone(),
        }
    }

    /// A pipeline identical to this one but publishing verified
    /// stochastic candidates into `slot` as they are found. The server
    /// installs a fresh slot per request so that when the deadline
    /// watchdog cancels a compile, the response can carry the best
    /// verified-so-far program instead of the degraded baseline.
    #[must_use]
    pub fn with_anytime(&self, slot: AnytimeSlot) -> Denali {
        let mut options = self.options.clone();
        options.anytime = Some(slot);
        Denali {
            options,
            tracer: self.tracer.clone(),
        }
    }

    /// A pipeline identical to this one but recording into `tracer`
    /// instead of this façade's own tracer. The server uses this to
    /// attach a *capture* tracer to individual requests (deterministic
    /// sampling, slow-request spooling) without turning tracing on
    /// globally: the sampled request's spans land in the private
    /// tracer, every other request stays untraced, and the compiled
    /// output is byte-identical either way (tracing only records).
    #[must_use]
    pub fn with_tracer(&self, tracer: Tracer) -> Denali {
        let mut options = self.options.clone();
        options.trace = tracer.is_enabled();
        Denali { options, tracer }
    }

    /// Fails with a `cancelled`-stage error if [`Options::cancel`] has
    /// been raised.
    fn check_cancelled(&self) -> Result<(), CompileError> {
        if self
            .options
            .cancel
            .as_ref()
            .is_some_and(|c| c.is_cancelled())
        {
            return Err(CompileError {
                stage: CompileError::CANCELLED,
                message: "compilation cancelled".to_owned(),
            });
        }
        Ok(())
    }

    /// The pipeline's tracer: records accumulate across every
    /// compilation this façade runs (including failed ones, which is
    /// how error paths still get a trace). Disabled unless
    /// [`Options::trace`] was set.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Compiles the first procedure of `source`.
    ///
    /// # Errors
    ///
    /// Reports the failing stage: parsing, axiom parsing, lowering,
    /// matching, enumeration, or search.
    pub fn compile_source(&self, source: &str) -> Result<CompileResult, CompileError> {
        let prepared = self.prepare_source(source)?;
        self.compile_prepared(&prepared)
    }

    /// Compiles the named procedure of an already-parsed program.
    ///
    /// # Errors
    ///
    /// As [`Denali::compile_source`].
    pub fn compile_proc(
        &self,
        program: &SourceProgram,
        name: &str,
    ) -> Result<CompileResult, CompileError> {
        let prepared = self.prepare_proc(program, name)?;
        self.compile_prepared(&prepared)
    }

    /// Runs the front half of [`Denali::compile_source`] — parsing,
    /// axiom assembly, lowering, load pipelining — without entering the
    /// match/search phases.
    ///
    /// # Errors
    ///
    /// Reports the failing stage: parsing, axiom parsing, or lowering.
    pub fn prepare_source(&self, source: &str) -> Result<Prepared, CompileError> {
        let program = parse_program(source).map_err(stage_err("parse"))?;
        let first = program
            .procs
            .first()
            .ok_or_else(|| CompileError {
                stage: "parse",
                message: "source contains no procedures".to_owned(),
            })?
            .name;
        self.prepare_proc(&program, first.as_str())
    }

    /// [`Denali::prepare_source`] for the named procedure of an
    /// already-parsed program.
    ///
    /// # Errors
    ///
    /// As [`Denali::prepare_source`].
    pub fn prepare_proc(
        &self,
        program: &SourceProgram,
        name: &str,
    ) -> Result<Prepared, CompileError> {
        let proc = program.proc(name).ok_or_else(|| CompileError {
            stage: "parse",
            message: format!("no procedure named {name}"),
        })?;
        let mut axioms = denali_axioms::axioms_for(self.options.machine.name());
        axioms.extend(self.options.extra_axioms.iter().cloned());
        for (i, form) in program.axiom_forms.iter().enumerate() {
            axioms.push(
                Axiom::parse_sexpr(form, &format!("{name}-axiom-{i}"))
                    .map_err(stage_err("axiom"))?,
            );
        }
        let mut gmas = lower_proc(proc).map_err(stage_err("lower"))?;
        if self.options.pipeline_loads {
            // Transform every loop body, pairing it with the preceding
            // unguarded GMA (its prologue) when present.
            for i in 0..gmas.len() {
                if gmas[i].guard.is_none() {
                    continue;
                }
                let prologue_idx = (i > 0 && gmas[i - 1].guard.is_none()).then(|| i - 1);
                let prologue = prologue_idx.map(|j| gmas[j].clone());
                if let Some((new_prologue, new_body)) =
                    denali_lang::pipeline_loads(prologue.as_ref(), &gmas[i])
                {
                    gmas[i] = new_body;
                    match prologue_idx {
                        Some(j) => gmas[j] = new_prologue,
                        None => gmas.insert(i, new_prologue),
                    }
                }
            }
        }
        if gmas.is_empty() {
            return Err(CompileError {
                stage: "lower",
                message: format!("procedure {name} has no effect (no GMAs)"),
            });
        }
        Ok(Prepared {
            name: name.to_owned(),
            gmas,
            axioms,
        })
    }

    /// Runs the back half of [`Denali::compile_source`]: the
    /// match/enumerate/search pipeline over every prepared GMA.
    ///
    /// # Errors
    ///
    /// Reports the failing stage: matching, enumeration, search, or
    /// cancellation.
    pub fn compile_prepared(&self, prepared: &Prepared) -> Result<CompileResult, CompileError> {
        let compiled = prepared
            .gmas
            .iter()
            .map(|gma| self.compile_gma(gma.clone(), &prepared.axioms))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CompileResult { gmas: compiled })
    }

    /// The content-addressed cache key for compiling `prepared` under
    /// this façade's options: a 128-bit hex digest over the lowered
    /// GMAs, the axiom set, and the output-affecting option subset (see
    /// [`crate::fingerprint`] for what is excluded and why).
    pub fn fingerprint(&self, prepared: &Prepared) -> String {
        crate::fingerprint::fingerprint(&prepared.gmas, &prepared.axioms, &self.options)
    }

    /// Runs the crucial inner subroutine (Figure 1) on a single GMA.
    ///
    /// # Errors
    ///
    /// As [`Denali::compile_source`].
    pub fn compile_gma(&self, gma: Gma, axioms: &[Axiom]) -> Result<CompiledGma, CompileError> {
        self.check_cancelled()?;
        let mut telemetry = Telemetry::new();
        let tracer = &self.tracer;
        // One root span per GMA; the phase spans below both produce the
        // trace hierarchy and feed the coarse Telemetry aggregate (the
        // same guard measures both, so the two views always agree).
        // Each phase span is finished *before* `?` propagates its
        // error, so failed compilations still trace their phases.
        let gma_span = tracer.span_fields("gma", vec![field("name", gma.name.clone())]);

        let mut saturation = self.options.saturation;
        if self.options.threads != 1 {
            saturation.threads = self.options.threads;
        }
        let span = tracer.span("match");
        let matched = match_gma_traced(&gma, axioms, &saturation, tracer);
        telemetry.record("match", span.finish());
        let matched = matched.map_err(stage_err("match"))?;
        // One telemetry entry per saturation round; `Display` collapses
        // the repeats into one `saturate.round ×N` item.
        for round in &matched.report.rounds {
            telemetry.record("saturate.round", round.ms);
        }
        let egraph_memory = matched.egraph.memory_stats();
        // Delta-matching effectiveness: top-level e-match candidates
        // actually scanned vs. excluded by the dirty-cone filter.
        telemetry.count("match.scanned", matched.report.scanned_candidates as u64);
        telemetry.count("match.skipped", matched.report.skipped_candidates as u64);
        // Phase boundary: a deadline raised during matching stops here
        // rather than entering enumeration (saturation itself is
        // bounded by its budgets, so this check is reached promptly).
        self.check_cancelled()?;

        // Engine dispatch. The stochastic engine answers directly from
        // the saturated e-graph (equivalence mining) and never enters
        // the SAT search; `auto` first runs a bounded anytime prepass
        // so a deadline-cancelled SAT compile still leaves verified
        // candidates in the anytime slot.
        if self.options.engine == EngineChoice::Stochastic {
            return self.compile_gma_stochastic(gma, &matched, egraph_memory, telemetry, gma_span);
        }
        if self.options.engine == EngineChoice::Auto && self.options.anytime.is_some() {
            if let Ok(baseline) = denali_baseline::rewrite_compile(&gma, &self.options.machine) {
                let span = tracer.span("stoke.prepass");
                run_chain(
                    &self.options.machine,
                    &gma,
                    Some(&matched),
                    &baseline,
                    &self.options.stoke,
                    self.options.stoke.auto_iterations,
                    self.options.cancel.as_ref(),
                    tracer,
                    self.options.anytime.as_ref(),
                );
                telemetry.record("stoke.prepass", span.finish());
            }
            self.check_cancelled()?;
        }

        let inputs = gma.inputs();
        let span = tracer.span("enumerate");
        let candidates = crate::machine_terms::enumerate_with_misses(
            &matched,
            &self.options.machine,
            &inputs,
            self.options.load_latency,
            &gma.miss_addrs,
            self.options.miss_latency,
        );
        let enumerate_fields = match &candidates {
            Ok(c) => vec![field("candidates", c.list.len())],
            Err(_) => Vec::new(),
        };
        telemetry.record("enumerate", span.finish_fields(enumerate_fields));
        let candidates = candidates.map_err(stage_err("enumerate"))?;

        let params = SearchParams {
            solver: self.options.solver,
            max_cycles: self.options.max_cycles,
            threads: self.options.threads,
            incremental: self.options.incremental,
            dump: self
                .options
                .dump_dimacs
                .as_ref()
                .map(|dir| crate::search::DimacsDump {
                    directory: dir.clone(),
                    label: gma.name.clone(),
                }),
            portfolio: self.options.portfolio,
            cancel: self.options.cancel.clone(),
        };
        let span = tracer.span("search");
        let outcome = search_traced(
            &gma,
            &matched,
            &candidates,
            &self.options.machine,
            &self.options.encode,
            &params,
            tracer,
        );
        telemetry.record("search", span.finish());
        let outcome: SearchOutcome = match outcome {
            Ok(outcome) => outcome,
            Err(e) if e.cancelled => {
                return Err(CompileError {
                    stage: CompileError::CANCELLED,
                    message: e.message,
                })
            }
            Err(e)
                if self.options.engine == EngineChoice::Auto
                    && e.message.starts_with("no schedule within") =>
            {
                // The SAT probe ladder exhausted its cycle budget:
                // fall back to a full stochastic run. Anytime
                // semantics — the verified result is returned even
                // when it is longer than `max_cycles`.
                tracer.event("stoke.fallback", || {
                    vec![field("reason", e.message.clone())]
                });
                return self.compile_gma_stochastic(
                    gma,
                    &matched,
                    egraph_memory,
                    telemetry,
                    gma_span,
                );
            }
            Err(e) => {
                return Err(CompileError {
                    stage: "search",
                    message: e.message,
                })
            }
        };

        gma_span.finish_fields(vec![
            field("cycles", outcome.cycles),
            field("refuted_below", outcome.refuted_below),
            field("probes", outcome.probes.len()),
        ]);
        // Observability only: the process-wide registry sees every
        // completed compile regardless of caller (CLI, tests, server).
        // Recording is nanoseconds per event and never part of the
        // fingerprint or the result.
        let metrics = pipeline_metrics();
        metrics.compiles.inc();
        for round in &matched.report.rounds {
            metrics.round_us.observe_ms(round.ms);
        }
        for probe in &outcome.probes {
            metrics.solve_us.observe_ms(probe.solve_ms);
            metrics.encode_us.observe_ms(probe.encode_ms);
        }
        metrics.egraph_nodes.set(egraph_memory.nodes);
        metrics.egraph_bytes.set(egraph_memory.total_bytes);
        let match_ms = telemetry.ms("match");
        let search_ms = telemetry.ms("search");
        Ok(CompiledGma {
            gma,
            program: outcome.program,
            cycles: outcome.cycles,
            refuted_below: outcome.refuted_below,
            matcher: matched.report,
            probes: outcome.probes,
            match_ms,
            search_ms,
            telemetry,
            egraph_memory,
            engine: EngineChoice::Sat,
        })
    }

    /// The stochastic-engine tail of [`Denali::compile_gma`]: baseline
    /// rewrite → sketch conversion → equivalence-move mining from the
    /// saturated e-graph → Metropolis chain, with verified
    /// improvements published on the anytime channel along the way.
    fn compile_gma_stochastic(
        &self,
        gma: Gma,
        matched: &crate::matcher::Matched,
        egraph_memory: denali_egraph::MemoryStats,
        mut telemetry: Telemetry,
        gma_span: denali_trace::Span,
    ) -> Result<CompiledGma, CompileError> {
        let tracer = &self.tracer;
        let baseline = denali_baseline::rewrite_compile(&gma, &self.options.machine)
            .map_err(stage_err("baseline"))?;
        let span = tracer.span("stoke");
        let outcome = run_chain(
            &self.options.machine,
            &gma,
            Some(matched),
            &baseline,
            &self.options.stoke,
            self.options.stoke.iterations,
            self.options.cancel.as_ref(),
            tracer,
            self.options.anytime.as_ref(),
        );
        telemetry.record("stoke", span.finish());
        let (program, cycles) = match &outcome {
            Some(out) if out.cancelled => {
                gma_span.finish_fields(vec![
                    field("engine", "stochastic"),
                    field("cancelled", true),
                ]);
                return Err(CompileError {
                    stage: CompileError::CANCELLED,
                    message: "stochastic search cancelled".to_owned(),
                });
            }
            Some(out) => (out.best_program.clone(), out.best_cycles),
            // Outside the engine's fragment (guards, memory,
            // uninterpreted operations): the baseline program *is* the
            // stochastic answer — total, verified by construction, no
            // optimality claim either way.
            None => {
                let cycles = baseline.cycles();
                (baseline, cycles)
            }
        };
        gma_span.finish_fields(vec![field("cycles", cycles), field("engine", "stochastic")]);
        let metrics = pipeline_metrics();
        metrics.compiles.inc();
        metrics.egraph_nodes.set(egraph_memory.nodes);
        metrics.egraph_bytes.set(egraph_memory.total_bytes);
        let match_ms = telemetry.ms("match");
        let search_ms = telemetry.ms("stoke");
        Ok(CompiledGma {
            gma,
            program,
            cycles,
            refuted_below: false,
            matcher: matched.report.clone(),
            probes: Vec::new(),
            match_ms,
            search_ms,
            telemetry,
            egraph_memory,
            engine: EngineChoice::Stochastic,
        })
    }

    /// Profiles the stochastic engine on every supported GMA of
    /// `source`: one full chain per GMA with mined equivalence moves,
    /// returning the best-cost trajectory and chain statistics. Used
    /// by the `stoke_bench` artifact and the `report e7` table; fully
    /// deterministic at a fixed [`StokeKnobs::seed`].
    ///
    /// # Errors
    ///
    /// Reports preparation failures (parse/axiom/lower), match-phase
    /// failures, and baseline rewrite failures.
    pub fn stoke_profile(&self, source: &str) -> Result<Vec<StokeRun>, CompileError> {
        let prepared = self.prepare_source(source)?;
        let mut saturation = self.options.saturation;
        if self.options.threads != 1 {
            saturation.threads = self.options.threads;
        }
        let mut runs = Vec::new();
        for gma in &prepared.gmas {
            if !crate::engine::stoke_supported(gma) {
                continue;
            }
            let matched = match_gma_traced(gma, &prepared.axioms, &saturation, &self.tracer)
                .map_err(stage_err("match"))?;
            let baseline = denali_baseline::rewrite_compile(gma, &self.options.machine)
                .map_err(stage_err("baseline"))?;
            let Some(outcome) = run_chain(
                &self.options.machine,
                gma,
                Some(&matched),
                &baseline,
                &self.options.stoke,
                self.options.stoke.iterations,
                self.options.cancel.as_ref(),
                &self.tracer,
                None,
            ) else {
                continue;
            };
            runs.push(StokeRun {
                gma: gma.name.clone(),
                baseline_cycles: outcome.baseline_cycles,
                best_cycles: outcome.best_cycles,
                improved: outcome.improved,
                proposals: outcome.proposals,
                accepted: outcome.accepted,
                restarts: outcome.restarts,
                trajectory: outcome.trajectory,
            });
        }
        Ok(runs)
    }
}

/// One stochastic chain profile (see [`Denali::stoke_profile`]).
#[derive(Clone, Debug)]
pub struct StokeRun {
    /// GMA name.
    pub gma: String,
    /// Baseline rewrite schedule length.
    pub baseline_cycles: u32,
    /// Best verified schedule length the chain found.
    pub best_cycles: u32,
    /// True when `best_cycles < baseline_cycles`.
    pub improved: bool,
    /// Proposals evaluated.
    pub proposals: u64,
    /// Proposals accepted.
    pub accepted: u64,
    /// Chain restarts.
    pub restarts: u64,
    /// Verified best-cost trajectory: (proposal index, cycles).
    pub trajectory: Vec<(u64, u32)>,
}

/// Process-wide pipeline metric handles, resolved once. The handles are
/// `Arc`s into [`denali_metrics::global`], so the per-compile recording
/// above never touches the registry lock.
struct PipelineMetrics {
    compiles: std::sync::Arc<denali_metrics::Counter>,
    solve_us: std::sync::Arc<denali_metrics::Histogram>,
    encode_us: std::sync::Arc<denali_metrics::Histogram>,
    round_us: std::sync::Arc<denali_metrics::Histogram>,
    egraph_nodes: std::sync::Arc<denali_metrics::Gauge>,
    egraph_bytes: std::sync::Arc<denali_metrics::Gauge>,
}

fn pipeline_metrics() -> &'static PipelineMetrics {
    static METRICS: std::sync::OnceLock<PipelineMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = denali_metrics::global();
        PipelineMetrics {
            compiles: registry.counter(
                "denali_core_gma_compiles_total",
                "GMA compilations completed by the pipeline",
            ),
            solve_us: registry.histogram(
                "denali_core_probe_solve_us",
                "SAT probe solve time (microseconds)",
            ),
            encode_us: registry.histogram(
                "denali_core_probe_encode_us",
                "SAT probe constraint-generation time (microseconds)",
            ),
            round_us: registry.histogram(
                "denali_core_saturate_round_us",
                "Saturation round duration (microseconds)",
            ),
            egraph_nodes: registry.gauge(
                "denali_egraph_nodes",
                "Arena e-nodes of the most recently compiled GMA",
            ),
            egraph_bytes: registry.gauge(
                "denali_egraph_bytes",
                "E-graph storage payload bytes of the most recently compiled GMA",
            ),
        }
    })
}
