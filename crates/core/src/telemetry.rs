//! Lightweight per-phase wall-clock telemetry.
//!
//! The paper's headline measurement splits compilation into a matching
//! phase and a satisfiability search; [`Telemetry`] records that split
//! (plus any finer phases) as an ordered list of named timings, cheap
//! enough to collect unconditionally and render with [`fmt::Display`].

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// One named, timed phase.
#[derive(Clone, Copy, Debug)]
pub struct Phase {
    /// Phase name (e.g. `"match"`, `"enumerate"`, `"search"`).
    pub name: &'static str,
    /// Wall-clock milliseconds spent in the phase.
    pub ms: f64,
}

/// One named monotone counter (e.g. candidates scanned).
#[derive(Clone, Debug)]
pub struct Counter {
    /// Counter name (e.g. `"match.scanned"`).
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// An ordered log of phase timings for one compilation.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Phases in execution order. A name may repeat (e.g. one entry
    /// per saturation round); [`Telemetry::ms`] sums repeats.
    pub phases: Vec<Phase>,
    /// Named event counters, in first-use order (e.g. top-level
    /// e-match candidates scanned vs. skipped by delta matching).
    pub counters: Vec<Counter>,
    /// Counter name → index into `counters`, so hot-path counting is
    /// O(1) instead of a linear scan, while `counters` keeps first-use
    /// display order. Rebuilt lazily if `counters` was mutated directly
    /// (the fields are public).
    counter_index: HashMap<&'static str, usize>,
}

impl Telemetry {
    /// Creates an empty log.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Runs `f`, recording its wall-clock time under `name`.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed().as_secs_f64() * 1e3);
        out
    }

    /// Records an externally measured duration.
    pub fn record(&mut self, name: &'static str, ms: f64) {
        self.phases.push(Phase { name, ms });
    }

    /// Total milliseconds recorded under `name` (0.0 if absent).
    pub fn ms(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.ms)
            .sum()
    }

    /// Total milliseconds across every phase.
    pub fn total_ms(&self) -> f64 {
        self.phases.iter().map(|p| p.ms).sum()
    }

    /// Adds `n` to the counter `name` (creating it at zero first).
    pub fn count(&mut self, name: &'static str, n: u64) {
        if let Some(&i) = self.counter_index.get(name) {
            if let Some(c) = self.counters.get_mut(i) {
                if c.name == name {
                    c.value += n;
                    return;
                }
            }
        }
        // Index miss (or stale after direct `counters` mutation): fall
        // back to a scan and repair the index.
        match self.counters.iter_mut().position(|c| c.name == name) {
            Some(i) => {
                self.counter_index.insert(name, i);
                self.counters[i].value += n;
            }
            None => {
                self.counter_index.insert(name, self.counters.len());
                self.counters.push(Counter { name, value: n });
            }
        }
    }

    /// Current value of counter `name` (0 if never counted).
    pub fn counter(&self, name: &str) -> u64 {
        if let Some(&i) = self.counter_index.get(name) {
            if let Some(c) = self.counters.get(i) {
                if c.name == name {
                    return c.value;
                }
            }
        }
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }
}

impl fmt::Display for Telemetry {
    /// Renders phases in first-occurrence order, collapsing repeated
    /// names (one entry per saturation round, say) into a single
    /// `name ×N total_ms` item instead of N near-identical entries.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut order: Vec<&'static str> = Vec::new();
        let mut totals: HashMap<&'static str, (usize, f64)> = HashMap::new();
        for phase in &self.phases {
            let entry = totals.entry(phase.name).or_insert_with(|| {
                order.push(phase.name);
                (0, 0.0)
            });
            entry.0 += 1;
            entry.1 += phase.ms;
        }
        let mut first = true;
        for name in order {
            let (repeats, ms) = totals[name];
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            if repeats == 1 {
                write!(f, "{name} {ms:.1} ms")?;
            } else {
                write!(f, "{name} ×{repeats} {ms:.1} ms")?;
            }
        }
        if first {
            f.write_str("(no phases)")?;
        }
        for counter in &self.counters {
            write!(f, ", {} {}", counter.name, counter.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_and_returns() {
        let mut t = Telemetry::new();
        let out = t.time("work", || 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(t.phases.len(), 1);
        assert_eq!(t.phases[0].name, "work");
        assert!(t.phases[0].ms >= 0.0);
    }

    #[test]
    fn repeated_names_sum() {
        let mut t = Telemetry::new();
        t.record("round", 1.5);
        t.record("round", 2.5);
        t.record("other", 10.0);
        assert!((t.ms("round") - 4.0).abs() < 1e-9);
        assert!((t.total_ms() - 14.0).abs() < 1e-9);
        assert_eq!(t.ms("missing"), 0.0);
    }

    #[test]
    fn display_lists_phases_in_order() {
        let mut t = Telemetry::new();
        assert_eq!(t.to_string(), "(no phases)");
        t.record("match", 12.34);
        t.record("search", 5.0);
        assert_eq!(t.to_string(), "match 12.3 ms, search 5.0 ms");
    }

    #[test]
    fn display_collapses_repeated_phase_names() {
        let mut t = Telemetry::new();
        t.record("match", 2.0);
        t.record("saturate.round", 1.25);
        t.record("saturate.round", 0.75);
        t.record("saturate.round", 3.0);
        t.record("search", 4.0);
        assert_eq!(
            t.to_string(),
            "match 2.0 ms, saturate.round ×3 5.0 ms, search 4.0 ms"
        );
    }

    #[test]
    fn count_survives_direct_counter_mutation() {
        let mut t = Telemetry::new();
        t.count("a", 1);
        // The fields are public: shift "a" by inserting ahead of it,
        // making the name→index map stale.
        t.counters.insert(
            0,
            Counter {
                name: "z",
                value: 7,
            },
        );
        t.count("a", 2);
        t.count("z", 1);
        assert_eq!(t.counter("a"), 3);
        assert_eq!(t.counter("z"), 8);
        assert_eq!(t.counters.len(), 2);
    }

    #[test]
    fn counters_accumulate_by_name() {
        let mut t = Telemetry::new();
        assert_eq!(t.counter("match.scanned"), 0);
        t.count("match.scanned", 10);
        t.count("match.skipped", 3);
        t.count("match.scanned", 5);
        assert_eq!(t.counter("match.scanned"), 15);
        assert_eq!(t.counter("match.skipped"), 3);
        assert_eq!(t.counters.len(), 2, "repeat names accumulate in place");
        t.record("match", 1.0);
        assert_eq!(
            t.to_string(),
            "match 1.0 ms, match.scanned 15, match.skipped 3"
        );
    }
}
