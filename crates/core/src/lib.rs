#![warn(missing_docs)]

//! The Denali code generator: matching + satisfiability search.
//!
//! This crate implements the "crucial inner subroutine" of the paper's
//! Figure 1, which translates a single guarded multi-assignment into
//! near-optimal machine code in two phases:
//!
//! 1. **Matching** ([`matcher`]) — the GMA's goal terms are loaded into
//!    an E-graph, which is saturated with the mathematical,
//!    architectural, and program-specific axioms until it "represents all
//!    possible ways of computing the terms" (§5–6).
//! 2. **Satisfiability search** ([`encode`], [`search`]) — for a cycle
//!    budget `K`, a propositional formula is generated whose models are
//!    exactly the legal `K`-cycle schedules (launch variables `L(i, T)`,
//!    availability variables `B(i, Q)` per cluster, plus the §7
//!    constraints: multiple issue, guard-before-unsafe-operations, and
//!    memory ordering). A SAT solver refutes the budget or yields a
//!    schedule; a search over `K` finds the smallest feasible budget and
//!    [`extract`] decodes the winning model into assembly, which is then
//!    re-validated and ready for simulation.
//!
//! The [`Denali`] façade runs the whole pipeline from source text.
//!
//! # Example
//!
//! ```
//! use denali_core::{Denali, Options};
//!
//! let denali = Denali::new(Options::default());
//! let result = denali
//!     .compile_source("(\\procdecl f ((reg6 long)) long (:= (\\res (+ (* reg6 4) 1))))")
//!     .expect("compilation succeeds");
//! // Figure 2: reg6*4 + 1 is a single s4addq, so one cycle suffices.
//! assert_eq!(result.gmas[0].program.cycles(), 1);
//! ```

pub mod encode;
pub mod extract;
pub mod fingerprint;
pub mod machine_terms;
pub mod matcher;
pub mod search;
pub mod telemetry;

pub mod engine;

mod facade;

pub use engine::{AnytimeBest, AnytimeSlot, EngineChoice, StokeKnobs};
pub use facade::{
    CompileError, CompileResult, CompiledGma, Denali, Options, Prepared, SolverChoice, StokeRun,
};
pub use search::{DimacsDump, ProbeStats, SearchError, SearchOutcome, SearchParams};
pub use telemetry::Telemetry;
