//! The matching phase: GMA goals → saturated E-graph.

use denali_axioms::{saturate_traced, Axiom, SaturationLimits, SaturationReport};
use denali_egraph::{ClassId, EGraph, EGraphError};
use denali_lang::Gma;
use denali_term::Term;
use denali_trace::{field, Tracer};

/// The saturated e-graph for a GMA, with its goal classes identified.
#[derive(Clone, Debug)]
pub struct Matched {
    /// The quiescent e-graph.
    pub egraph: EGraph,
    /// Class of the guard term, if the GMA is guarded.
    pub guard: Option<ClassId>,
    /// Classes of the register-target values, in GMA order.
    pub assigns: Vec<ClassId>,
    /// Class of the memory chain term, if the GMA stores.
    pub mem: Option<ClassId>,
    /// The memory chain term itself (needed to walk the store levels).
    pub mem_term: Option<Term>,
    /// Saturation statistics.
    pub report: SaturationReport,
}

impl Matched {
    /// All distinct canonical goal classes (guard + assigns; the memory
    /// chain is handled through its store levels, not as a value class).
    pub fn value_goal_classes(&self) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut push = |c: ClassId| {
            let c = self.egraph.find(c);
            if !out.contains(&c) {
                out.push(c);
            }
        };
        if let Some(g) = self.guard {
            push(g);
        }
        for &a in &self.assigns {
            push(a);
        }
        out
    }
}

/// Runs the matching phase of Figure 1: builds the initial e-graph from
/// the GMA's goal expressions and saturates it with `axioms` (the
/// target's axiom set — see [`denali_axioms::axioms_for`] — plus any
/// program-specific axioms).
///
/// # Errors
///
/// Propagates e-graph contradictions (unsound axioms).
pub fn match_gma(
    gma: &Gma,
    axioms: &[Axiom],
    limits: &SaturationLimits,
) -> Result<Matched, EGraphError> {
    match_gma_traced(gma, axioms, limits, &Tracer::disabled())
}

/// [`match_gma`] with structured tracing: goal-term loading is logged
/// as a `match.goals` event and the saturation rounds record their own
/// spans (see [`denali_axioms::saturate_traced`]).
///
/// # Errors
///
/// Propagates e-graph contradictions (unsound axioms).
pub fn match_gma_traced(
    gma: &Gma,
    axioms: &[Axiom],
    limits: &SaturationLimits,
    tracer: &Tracer,
) -> Result<Matched, EGraphError> {
    let mut egraph = EGraph::new();
    egraph.set_class_capacity(limits.max_classes);
    let guard = gma.guard.as_ref().map(|g| egraph.add_term(g)).transpose()?;
    let assigns = gma
        .assigns
        .iter()
        .map(|(_, t)| egraph.add_term(t))
        .collect::<Result<Vec<_>, _>>()?;
    let mem = gma.mem.as_ref().map(|m| egraph.add_term(m)).transpose()?;
    tracer.event("match.goals", || {
        vec![
            field("guarded", guard.is_some()),
            field("assigns", assigns.len()),
            field("mem", mem.is_some()),
            field("nodes", egraph.num_nodes()),
            field("classes", egraph.num_classes()),
        ]
    });

    let report = saturate_traced(&mut egraph, axioms, limits, tracer)?;

    Ok(Matched {
        guard: guard.map(|c| egraph.find(c)),
        assigns: assigns.iter().map(|&c| egraph.find(c)).collect(),
        mem: mem.map(|c| egraph.find(c)),
        mem_term: gma.mem.clone(),
        egraph,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use denali_lang::{lower_proc, parse_program};

    fn gma_of(text: &str) -> Gma {
        let p = parse_program(text).unwrap();
        lower_proc(&p.procs[0]).unwrap().remove(0)
    }

    #[test]
    fn figure2_matching() {
        let gma = gma_of("(procdecl f ((reg6 long)) long (:= (res (+ (* reg6 4) 1))))");
        let m = match_gma(
            &gma,
            &denali_axioms::standard_axioms(),
            &SaturationLimits::default(),
        )
        .unwrap();
        assert!(m.report.saturated);
        assert_eq!(m.assigns.len(), 1);
        let ops: Vec<String> = m
            .egraph
            .nodes(m.assigns[0])
            .iter()
            .filter_map(|n| n.sym().map(|s| s.to_string()))
            .collect();
        assert!(ops.contains(&"s4addq".to_owned()), "{ops:?}");
        assert_eq!(m.value_goal_classes().len(), 1);
    }

    #[test]
    fn guarded_gma_has_guard_class() {
        let gma = gma_of(
            "(procdecl f ((p long*) (q long*)) long
               (do (-> (<u p q) (:= (p (+ p 8))))))",
        );
        let m = match_gma(
            &gma,
            &denali_axioms::standard_axioms(),
            &SaturationLimits::default(),
        )
        .unwrap();
        assert!(m.guard.is_some());
        assert!(m.value_goal_classes().len() >= 2);
    }

    #[test]
    fn program_axioms_extend_matching() {
        // Without the carry axioms, `carry` has no machine realization;
        // with them it becomes cmpult(add64(a,b), a).
        let gma = gma_of("(procdecl f ((a long) (b long)) long (:= (res (carry a b))))");
        let m_without = match_gma(
            &gma,
            &denali_axioms::standard_axioms(),
            &SaturationLimits::default(),
        )
        .unwrap();
        let ops: Vec<String> = m_without
            .egraph
            .nodes(m_without.assigns[0])
            .iter()
            .filter_map(|n| n.sym().map(|s| s.to_string()))
            .collect();
        assert_eq!(ops, vec!["carry".to_owned()]);

        let axiom_form = denali_term::sexpr::parse_one(
            "(axiom (forall (a b) (eq (carry a b) (cmpult (add64 a b) a))))",
        )
        .unwrap();
        let axiom = Axiom::parse_sexpr(&axiom_form, "carry-def").unwrap();
        let mut axioms = denali_axioms::standard_axioms();
        axioms.push(axiom);
        let m_with = match_gma(&gma, &axioms, &SaturationLimits::default()).unwrap();
        let ops: Vec<String> = m_with
            .egraph
            .nodes(m_with.assigns[0])
            .iter()
            .filter_map(|n| n.sym().map(|s| s.to_string()))
            .collect();
        assert!(ops.contains(&"cmpult".to_owned()), "{ops:?}");
    }

    #[test]
    fn delta_and_full_matching_build_identical_egraphs() {
        let gma = gma_of("(procdecl f ((reg6 long)) long (:= (res (+ (* reg6 4) 1))))");
        let run = |delta: bool| {
            match_gma(
                &gma,
                &denali_axioms::standard_axioms(),
                &SaturationLimits {
                    delta_match: delta,
                    ..SaturationLimits::default()
                },
            )
            .unwrap()
        };
        let full = run(false);
        let delta = run(true);
        // Identical instance sequence ⇒ identical class-id assignment;
        // the Debug rendering of every class pins both.
        let snapshot = |m: &Matched| {
            let mut lines: Vec<String> = m
                .egraph
                .classes()
                .iter()
                .map(|&c| format!("{c:?} -> {:?}", m.egraph.nodes(c)))
                .collect();
            lines.sort();
            lines
        };
        assert_eq!(snapshot(&full), snapshot(&delta));
        assert_eq!(full.assigns, delta.assigns);
        assert_eq!(full.report.iterations, delta.report.iterations);
        assert_eq!(full.report.instances, delta.report.instances);
        // The delta run skipped quiescent candidates; the full run, by
        // definition, skipped none. (Totals are not comparable: the
        // closing verification pass re-scans everything once.)
        assert_eq!(full.report.skipped_candidates, 0);
        assert!(delta.report.skipped_candidates > 0);
        let delta_rounds: Vec<_> = delta
            .report
            .rounds
            .iter()
            .filter(|r| !r.full && !r.verification)
            .collect();
        // At least one post-first-scan round scanned strictly fewer
        // top-level candidates than the full universe it was filtered
        // from (early rounds may legitimately dirty every class while
        // the graph is still small).
        assert!(!delta_rounds.is_empty());
        assert!(delta_rounds.iter().any(|r| r.skipped > 0));
    }
}
