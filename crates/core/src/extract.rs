//! Model decoding: a satisfying assignment → an assembly [`Program`].
//!
//! "The L's that are assigned true by the solver determine which machine
//! operations are launched at each cycle, from which the required
//! machine program can be read off." (§6). Decoding garbage-collects
//! launches the model asserted but nothing needs, assigns virtual
//! destination registers (the prototype "ignores register allocation"),
//! and re-validates the result against the machine description.

use std::collections::HashMap;
use std::fmt;

use denali_arch::{validate, Instr, Machine, Operand, Program, Reg, Unit};
use denali_egraph::ClassId;
use denali_lang::Gma;
use denali_term::Symbol;

use crate::encode::LaunchCoord;
use crate::machine_terms::{ArgSpec, CandidateKind, Candidates};
use crate::matcher::Matched;

/// Decoding failure (indicates an encoder bug; the SAT model should
/// always decode).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExtractError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ExtractError {}

fn err(message: impl Into<String>) -> ExtractError {
    ExtractError {
        message: message.into(),
    }
}

/// Decodes the true launches of a model (at cycle budget `k`) into a
/// validated program. An empty launch set is legal when every goal is
/// already an input register and there are no stores — the identity
/// program.
///
/// # Errors
///
/// Fails if the launches cannot be decoded into a legal schedule (an
/// internal invariant violation) or the decoded program fails
/// validation.
pub fn extract(
    gma: &Gma,
    matched: &Matched,
    candidates: &Candidates,
    machine: &Machine,
    k: u32,
    true_launches: &[LaunchCoord],
) -> Result<Program, ExtractError> {
    let eg = &matched.egraph;
    let clusters = machine.num_clusters();
    let cluster_of = |u: Unit| if clusters == 1 { 0 } else { u.cluster() };
    let delay = machine.cluster_delay();

    // Input registers, numbered in sorted name order — not map order,
    // which varies between `HashMap` instances and would make repeated
    // compiles disagree on register names.
    let mut next_reg = 0u32;
    let mut inputs: Vec<(Symbol, Reg)> = Vec::new();
    let mut input_reg_of_class: HashMap<ClassId, Reg> = HashMap::new();
    let mut named: Vec<(Symbol, ClassId)> = candidates
        .inputs
        .iter()
        .map(|(&class, &name)| (name, class))
        .collect();
    named.sort();
    for (name, class) in named {
        let reg = Reg(next_reg);
        next_reg += 1;
        inputs.push((name, reg));
        input_reg_of_class.insert(class, reg);
    }

    // Launch selection: for a requirement (class, usable at `cycle` on
    // `cluster`), pick the earliest true launch that satisfies it.
    let usable_at = |launch: &LaunchCoord, cluster: usize| -> u32 {
        let cand = &candidates.list[launch.candidate];
        let own = cluster_of(launch.unit);
        let cross = if own == cluster { 0 } else { delay };
        launch.cycle + cand.latency + cross
    };
    let find_launch = |class: ClassId, by_cycle: u32, cluster: usize| -> Option<LaunchCoord> {
        let class = eg.find(class);
        let producers = candidates.by_class.get(&class)?;
        true_launches
            .iter()
            .filter(|l| producers.contains(&l.candidate))
            .filter(|l| usable_at(l, cluster) <= by_cycle)
            .min_by_key(|l| l.cycle)
            .copied()
    };

    // Needed launches, keyed by coordinates; worklist over dependencies.
    let mut needed: Vec<LaunchCoord> = Vec::new();
    let enqueue = |l: LaunchCoord, needed: &mut Vec<LaunchCoord>| {
        if !needed.contains(&l) {
            needed.push(l);
        }
    };

    // Goals: guard + register targets.
    let mut goal_launch: HashMap<ClassId, LaunchCoord> = HashMap::new();
    for &goal in &candidates.goal_classes {
        if candidates.is_available(goal) {
            continue; // satisfied by an input register
        }
        // Any cluster by end of cycle k-1; i.e. usable by cycle k.
        let launch = (0..clusters)
            .filter_map(|c| find_launch(goal, k, c))
            .min_by_key(|l| l.cycle)
            .ok_or_else(|| err(format!("no launch computes goal class {goal}")))?;
        goal_launch.insert(goal, launch);
        enqueue(launch, &mut needed);
    }
    // Stores are all needed.
    for level in &candidates.store_levels {
        let launch = true_launches
            .iter()
            .find(|l| level.contains(&l.candidate))
            .copied()
            .ok_or_else(|| err("store level has no launch in the model"))?;
        enqueue(launch, &mut needed);
    }

    // Resolve dependencies transitively, remembering which launch feeds
    // each (consumer, argument) pair.
    let mut chosen_source: HashMap<(LaunchCoord, usize), LaunchCoord> = HashMap::new();
    let mut cursor = 0;
    while cursor < needed.len() {
        let launch = needed[cursor];
        cursor += 1;
        let cand = &candidates.list[launch.candidate];
        let cluster = cluster_of(launch.unit);
        for (arg_idx, spec) in cand.args.iter().enumerate() {
            let ArgSpec::Class(dep) = spec else { continue };
            let dep = eg.find(*dep);
            if input_reg_of_class.contains_key(&dep) && candidates.is_available(dep) {
                continue;
            }
            let source = find_launch(dep, launch.cycle, cluster).ok_or_else(|| {
                err(format!(
                    "no launch provides class {dep} for {} at cycle {}",
                    cand.op, launch.cycle
                ))
            })?;
            chosen_source.insert((launch, arg_idx), source);
            if !needed.contains(&source) {
                needed.push(source);
            }
        }
    }

    // Destination registers per needed launch.
    let mut dest_reg: HashMap<LaunchCoord, Reg> = HashMap::new();
    let mut ordered = needed.clone();
    ordered.sort_by_key(|l| (l.cycle, l.unit, l.candidate));
    for &launch in &ordered {
        let cand = &candidates.list[launch.candidate];
        if matches!(cand.kind, CandidateKind::Store { .. }) {
            continue;
        }
        dest_reg.insert(launch, Reg(next_reg));
        next_reg += 1;
    }

    // Emit instructions.
    let mut instrs = Vec::new();
    for &launch in &ordered {
        let cand = &candidates.list[launch.candidate];
        let reg_of = |arg_idx: usize, class: ClassId| -> Result<Reg, ExtractError> {
            let class = eg.find(class);
            if let Some(source) = chosen_source.get(&(launch, arg_idx)) {
                return Ok(dest_reg[source]);
            }
            input_reg_of_class
                .get(&class)
                .copied()
                .ok_or_else(|| err(format!("no register holds class {class}")))
        };
        let (operands, dest) = match &cand.kind {
            CandidateKind::LoadImm(value) => (vec![Operand::Imm(*value)], Some(dest_reg[&launch])),
            CandidateKind::Load { base, disp, .. } => (
                vec![Operand::Reg(reg_of(0, *base)?), Operand::Imm(*disp)],
                Some(dest_reg[&launch]),
            ),
            CandidateKind::Store {
                value, base, disp, ..
            } => (
                vec![
                    Operand::Reg(reg_of(0, *value)?),
                    Operand::Reg(reg_of(1, *base)?),
                    Operand::Imm(*disp),
                ],
                None,
            ),
            CandidateKind::Alu => {
                let mut operands = Vec::with_capacity(cand.args.len());
                for (i, spec) in cand.args.iter().enumerate() {
                    operands.push(match spec {
                        ArgSpec::Literal(v) => Operand::Imm(*v),
                        ArgSpec::Class(c) => Operand::Reg(reg_of(i, *c)?),
                    });
                }
                (operands, Some(dest_reg[&launch]))
            }
        };
        instrs.push(Instr {
            op: cand.op,
            operands,
            dest,
            cycle: launch.cycle,
            unit: launch.unit,
            comment: format!("class {}", eg.find(cand.class)),
        });
    }

    // Outputs: GMA targets (and the guard) → registers.
    let mut outputs: Vec<(Symbol, Reg)> = Vec::new();
    let reg_for_goal = |class: ClassId| -> Result<Reg, ExtractError> {
        let class = eg.find(class);
        if let Some(launch) = goal_launch.get(&class) {
            return Ok(dest_reg[launch]);
        }
        input_reg_of_class
            .get(&class)
            .copied()
            .ok_or_else(|| err(format!("goal class {class} has no register")))
    };
    if let Some(guard) = matched.guard {
        outputs.push((Symbol::intern("guard"), reg_for_goal(guard)?));
    }
    for ((name, _), &class) in gma.assigns.iter().zip(&matched.assigns) {
        outputs.push((*name, reg_for_goal(class)?));
    }

    let program = Program {
        instrs,
        inputs,
        outputs,
        name: gma.name.clone(),
        reg_reuse: false,
    };
    validate(&program, machine).map_err(|e| {
        err(format!(
            "decoded program failed validation (encoder bug):\n{e}\n{}",
            program.listing(machine.issue_width())
        ))
    })?;
    Ok(program)
}
