//! The constraint generator: candidates + cycle budget → CNF.
//!
//! Implements §6's encoding, generalized from the single-issue
//! presentation to the real EV6 shape (quad issue, unit restrictions,
//! clusters), plus the §7 constraints (guard-before-unsafe-operations
//! and memory ordering):
//!
//! * `L(T, i, u)` — candidate `T` is **launched** at cycle `i` on unit
//!   `u` (the paper's `L(i, T)`, refined by unit),
//! * `B(Q, i, c)` — the value of class `Q` has been computed **by** the
//!   end of cycle `i` and is usable on cluster `c` (the paper's
//!   `B(i, Q)`, refined by cluster to model the EV6's cross-cluster
//!   bypass delay).
//!
//! The paper's five condition families map to:
//! 1. launch/completion wiring — folded into the `B` ladder clauses
//!    (a launch at `j` completes at `j + λ - 1`),
//! 2. arguments available before launch — `L(T,i,u) ⇒ B(Q, i-1, cluster(u))`,
//! 3. `B` holds iff some member term completed in time — the ladder
//!    `B(Q,i,c) ⇔ B(Q,i-1,c) ∨ {launches completing at i on c}`,
//! 4. issue exclusivity — at most one launch per `(cycle, unit)` slot,
//! 5. goals computed within budget — `∨_c B(G, K-1, c)` per goal class.

use std::collections::HashMap;
use std::time::Instant;

use denali_arch::{Machine, Unit};
use denali_egraph::ClassId;
use denali_sat::dimacs::Cnf;
use denali_sat::{Lit, SolveResult, Solver, SolverStats, Var};
use denali_trace::{field, Tracer};

use crate::machine_terms::{CandidateKind, Candidates};
use crate::matcher::Matched;

/// Encoding options (§7 behaviors).
#[derive(Clone, Copy, Debug)]
pub struct EncodeOptions {
    /// If false, loads are unsafe to speculate and must wait for the
    /// guard like stores do. The default matches the paper's checksum
    /// experiment, which speculates next-iteration loads.
    pub speculate_loads: bool,
}

impl Default for EncodeOptions {
    fn default() -> EncodeOptions {
        EncodeOptions {
            speculate_loads: true,
        }
    }
}

/// A launch variable's coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LaunchCoord {
    /// Candidate index into [`Candidates::list`].
    pub candidate: usize,
    /// Issue cycle.
    pub cycle: u32,
    /// Functional unit.
    pub unit: Unit,
}

/// The CNF for one cycle budget, with the variable maps needed to decode
/// a model.
#[derive(Clone, Debug)]
pub struct Encoding {
    /// The formula.
    pub cnf: Cnf,
    /// Cycle budget encoded.
    pub k: u32,
    /// Launch variable coordinates, indexed by SAT variable order
    /// (launch variables come first).
    pub launches: Vec<LaunchCoord>,
    /// `B` variable index: (class, cycle, cluster) → var.
    pub avail: HashMap<(ClassId, u32, usize), Var>,
}

impl Encoding {
    /// Number of SAT variables.
    pub fn num_vars(&self) -> usize {
        self.cnf.num_vars
    }

    /// Number of CNF clauses.
    pub fn num_clauses(&self) -> usize {
        self.cnf.clauses.len()
    }

    /// Decodes a model into the set of true launches.
    pub fn true_launches(&self, model: &[bool]) -> Vec<LaunchCoord> {
        self.launches
            .iter()
            .enumerate()
            .filter(|&(v, _)| model[v])
            .map(|(_, &c)| c)
            .collect()
    }
}

struct Builder {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Builder {
    fn var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    fn clause(&mut self, lits: Vec<Lit>) {
        self.clauses.push(lits);
    }

    /// At-most-one over `lits`: pairwise for small sets, the sequential
    /// (ladder) encoding for larger ones (3n clauses and n−1 auxiliary
    /// variables instead of n²/2 clauses).
    fn at_most_one(&mut self, lits: &[Lit]) {
        if lits.len() <= 4 {
            for (i, &a) in lits.iter().enumerate() {
                for &b in &lits[i + 1..] {
                    self.clause(vec![!a, !b]);
                }
            }
            return;
        }
        // s_i = "some literal among lits[..=i] is true".
        let mut prev: Option<Var> = None;
        for (i, &x) in lits.iter().enumerate() {
            if i + 1 == lits.len() {
                if let Some(s) = prev {
                    self.clause(vec![!x, Lit::neg(s)]);
                }
                break;
            }
            let s = self.var();
            self.clause(vec![!x, Lit::pos(s)]);
            if let Some(p) = prev {
                self.clause(vec![Lit::neg(p), Lit::pos(s)]);
                self.clause(vec![!x, Lit::neg(p)]);
            }
            prev = Some(s);
        }
    }
}

/// Earliest cycle at which each class's value could be usable by a
/// consumer (critical path from the inputs, ignoring resource limits).
fn earliest_completion(
    candidates: &Candidates,
    eg: &denali_egraph::EGraph,
    k: u32,
) -> HashMap<ClassId, u32> {
    let horizon = k + 1;
    let mut usable: HashMap<ClassId, u32> = HashMap::new();
    loop {
        let mut changed = false;
        for cand in &candidates.list {
            if matches!(cand.kind, CandidateKind::Store { .. }) {
                continue;
            }
            let class = eg.find(cand.class);
            let mut start = 0u32;
            let mut feasible = true;
            for dep in cand.register_deps() {
                let dep = eg.find(dep);
                if candidates.is_available(dep) {
                    continue;
                }
                match usable.get(&dep) {
                    Some(&e) if e <= horizon => start = start.max(e),
                    _ => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            let finish = (start + cand.latency).min(horizon + 1);
            let entry = usable.entry(class).or_insert(u32::MAX);
            if finish < *entry {
                *entry = finish;
                changed = true;
            }
        }
        if !changed {
            return usable;
        }
    }
}

/// Generates the CNF asserting "a legal `k`-cycle schedule computing the
/// goals exists". Unsatisfiability of this formula is the paper's
/// conjecture that no `k`-cycle program exists.
pub fn encode(
    matched: &Matched,
    candidates: &Candidates,
    machine: &Machine,
    k: u32,
    options: &EncodeOptions,
) -> Encoding {
    let eg = &matched.egraph;
    let clusters = machine.num_clusters();
    let cluster_of = |u: Unit| -> usize {
        if clusters == 1 {
            0
        } else {
            u.cluster()
        }
    };
    let delay = machine.cluster_delay();

    let mut b = Builder {
        num_vars: 0,
        clauses: Vec::new(),
    };

    // Earliest feasible completion cycle per class (critical path from
    // the inputs), used to prune launch variables that could never
    // satisfy their argument-readiness constraints.
    let earliest = earliest_completion(candidates, eg, k);

    // ---- Launch variables ----
    let mut launches: Vec<LaunchCoord> = Vec::new();
    for (t, cand) in candidates.list.iter().enumerate() {
        if cand.latency > k {
            continue; // cannot complete within the budget
        }
        // A launch cannot start before every register argument could
        // possibly be ready (same-cluster best case).
        let mut start = 0u32;
        for dep in cand.register_deps() {
            let dep = eg.find(dep);
            if candidates.is_available(dep) {
                continue;
            }
            match earliest.get(&dep) {
                Some(&e) => start = start.max(e),
                None => {
                    start = k + 1; // dependency never computable
                    break;
                }
            }
        }
        if start > k || cand.latency > k - start {
            continue;
        }
        for cycle in start..=(k - cand.latency) {
            for &unit in &cand.units {
                let var = b.var();
                debug_assert_eq!(var.index(), launches.len());
                launches.push(LaunchCoord {
                    candidate: t,
                    cycle,
                    unit,
                });
            }
        }
    }

    // ---- Availability variables (B ladder) ----
    let mut avail: HashMap<(ClassId, u32, usize), Var> = HashMap::new();
    for &class in &candidates.needed_classes {
        if candidates.is_available(class) {
            continue; // inputs are available everywhere from cycle 0
        }
        for cycle in 0..k {
            for cluster in 0..clusters {
                let var = b.var();
                avail.insert((class, cycle, cluster), var);
            }
        }
    }

    // Completion events: (class, cycle, cluster) -> launch literals.
    let mut completions: HashMap<(ClassId, u32, usize), Vec<Lit>> = HashMap::new();
    for (v, coord) in launches.iter().enumerate() {
        let (t, cycle, unit) = (coord.candidate, coord.cycle, coord.unit);
        let var = Var::from_index(v);
        let cand = &candidates.list[t];
        if matches!(cand.kind, CandidateKind::Store { .. }) {
            continue; // stores produce no register value
        }
        let class = eg.find(cand.class);
        let own = cluster_of(unit);
        let complete = cycle + cand.latency - 1;
        if complete < k {
            completions
                .entry((class, complete, own))
                .or_default()
                .push(Lit::pos(var));
        }
        if clusters > 1 {
            let other = 1 - own;
            let cross = complete + delay;
            if cross < k {
                completions
                    .entry((class, cross, other))
                    .or_default()
                    .push(Lit::pos(var));
            }
        }
    }

    // Ladder clauses: B(Q,i,c) ⇔ B(Q,i-1,c) ∨ completions(Q,i,c).
    for &class in &candidates.needed_classes {
        if candidates.is_available(class) {
            continue;
        }
        for cycle in 0..k {
            for cluster in 0..clusters {
                let bvar = avail[&(class, cycle, cluster)];
                let events = completions
                    .get(&(class, cycle, cluster))
                    .cloned()
                    .unwrap_or_default();
                // B(i) -> B(i-1) ∨ events
                let mut forward = vec![Lit::neg(bvar)];
                if cycle > 0 {
                    forward.push(Lit::pos(avail[&(class, cycle - 1, cluster)]));
                }
                forward.extend(events.iter().copied());
                b.clause(forward);
                // B(i-1) -> B(i); event -> B(i)
                if cycle > 0 {
                    b.clause(vec![
                        Lit::neg(avail[&(class, cycle - 1, cluster)]),
                        Lit::pos(bvar),
                    ]);
                }
                for &e in &events {
                    b.clause(vec![!e, Lit::pos(bvar)]);
                }
            }
        }
    }

    // ---- Argument readiness ----
    let guard_class = candidates.guard_class.map(|c| eg.find(c));
    for (v, coord) in launches.iter().enumerate() {
        let (t, cycle, unit) = (coord.candidate, coord.cycle, coord.unit);
        let var = Var::from_index(v);
        let cand = &candidates.list[t];
        let mut deps = cand.register_deps();
        // §7: unsafe operations wait for the guard.
        let unsafe_op = match cand.kind {
            CandidateKind::Store { .. } => true,
            CandidateKind::Load { .. } => !options.speculate_loads,
            _ => false,
        };
        if unsafe_op {
            if let Some(g) = guard_class {
                deps.push(g);
            }
        }
        for dep in deps {
            let dep = eg.find(dep);
            if candidates.is_available(dep) {
                continue;
            }
            if cycle == 0 {
                b.clause(vec![Lit::neg(var)]);
                break;
            }
            let bvar = avail[&(dep, cycle - 1, cluster_of(unit))];
            b.clause(vec![Lit::neg(var), Lit::pos(bvar)]);
        }
    }

    // ---- Issue exclusivity: at most one launch per (cycle, unit) ----
    let mut slots: std::collections::BTreeMap<(u32, Unit), Vec<Var>> =
        std::collections::BTreeMap::new();
    for (v, coord) in launches.iter().enumerate() {
        slots
            .entry((coord.cycle, coord.unit))
            .or_default()
            .push(Var::from_index(v));
    }
    for vars in slots.values() {
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        b.at_most_one(&lits);
    }

    // ---- Goals ----
    for &goal in &candidates.goal_classes {
        if candidates.is_available(goal) {
            continue; // already in an input register
        }
        let mut clause = Vec::new();
        for cluster in 0..clusters {
            clause.push(Lit::pos(avail[&(goal, k - 1, cluster)]));
        }
        b.clause(clause);
    }

    // ---- Stores: exactly one launch per chain level ----
    for level in &candidates.store_levels {
        let mut level_launches: Vec<Var> = Vec::new();
        for (v, coord) in launches.iter().enumerate() {
            if level.contains(&coord.candidate) {
                level_launches.push(Var::from_index(v));
            }
        }
        b.clause(level_launches.iter().map(|&v| Lit::pos(v)).collect());
        let lits: Vec<Lit> = level_launches.iter().map(|&v| Lit::pos(v)).collect();
        b.at_most_one(&lits);
    }

    // ---- Memory ordering (§7) ----
    // Loads read the GMA's pre-state: a load must not issue after a
    // store it may alias. Store levels must retain their chain order
    // unless the addresses are provably distinct.
    let loads = candidates.loads();
    let store_cands: Vec<usize> = candidates.store_levels.iter().flatten().copied().collect();
    let addr_of = |t: usize| -> ClassId {
        match candidates.list[t].kind {
            CandidateKind::Load { addr, .. } | CandidateKind::Store { addr, .. } => addr,
            _ => unreachable!("memory candidate"),
        }
    };
    let may_alias = |a: ClassId, b: ClassId| !eg.provably_distinct(a, b);
    for &l in &loads {
        for &s in &store_cands {
            if !may_alias(addr_of(l), addr_of(s)) {
                continue;
            }
            for (i1, lc1) in launches.iter().enumerate() {
                if lc1.candidate != l {
                    continue;
                }
                for (i2, lc2) in launches.iter().enumerate() {
                    if lc2.candidate == s && lc1.cycle > lc2.cycle {
                        b.clause(vec![
                            Lit::neg(Var::from_index(i1)),
                            Lit::neg(Var::from_index(i2)),
                        ]);
                    }
                }
            }
        }
    }
    for (li, level_a) in candidates.store_levels.iter().enumerate() {
        for level_b in &candidates.store_levels[li + 1..] {
            for &s1 in level_a {
                for &s2 in level_b {
                    if !may_alias(addr_of(s1), addr_of(s2)) {
                        continue;
                    }
                    // Earlier level must issue strictly before later.
                    for (i1, lc1) in launches.iter().enumerate() {
                        if lc1.candidate != s1 {
                            continue;
                        }
                        for (i2, lc2) in launches.iter().enumerate() {
                            if lc2.candidate == s2 && lc2.cycle <= lc1.cycle {
                                b.clause(vec![
                                    Lit::neg(Var::from_index(i1)),
                                    Lit::neg(Var::from_index(i2)),
                                ]);
                            }
                        }
                    }
                }
            }
        }
    }

    Encoding {
        cnf: Cnf {
            num_vars: b.num_vars,
            clauses: b.clauses,
        },
        k,
        launches,
        avail,
    }
}

/// One assumption-based probe of an [`IncrementalEncoding`].
#[derive(Clone, Copy, Debug)]
pub struct IncrementalProbe {
    /// Whether a schedule exists within the probed budget.
    pub satisfiable: bool,
    /// True if an installed interrupt flag (see
    /// [`IncrementalEncoding::set_interrupt`]) stopped the solver
    /// before it reached an answer; `satisfiable` is meaningless then.
    pub interrupted: bool,
    /// Live solver variable count (cumulative across budgets).
    pub vars: usize,
    /// Live solver problem-clause count (cumulative across budgets).
    pub clauses: usize,
    /// Milliseconds spent growing the encoding for this probe.
    pub encode_ms: f64,
    /// Milliseconds inside [`Solver::solve_under`].
    pub solve_ms: f64,
    /// This probe's solver work (counters are per-probe deltas; gauges
    /// such as `carried_learned` describe the live solver).
    pub stats: SolverStats,
}

/// The budget-*monotone* form of the [`encode`] formula, held inside one
/// persistent [`Solver`] so a sequence of cycle-budget probes shares
/// learned clauses, variable activity, and saved polarities.
///
/// The trick is standard incremental BMC: variables and clauses cover
/// cycles `0..horizon`, and every launch `L` completing at cycle `e`
/// carries an *activation* clause `L ⇒ active[e]`. Probing budget `K ≤
/// horizon` is then [`Solver::solve_under`] with assumptions
/// `¬active[K..horizon]` (no launch may complete at or after cycle `K`),
/// `goal_ok[K-1]` (every goal available by the end of cycle `K-1`), and
/// `¬frontier` (the current store at-least-one clauses are in force).
/// Growing the horizon only ever *adds* variables and clauses — the §6
/// constraint families are emitted so that earlier clauses never need a
/// literal that does not exist yet:
///
/// * availability ladders are emitted cycle by cycle, with completion
///   events buffered until their cycle's ladder clause is written (new
///   launches always complete at or after the old horizon, so emitted
///   ladders never miss an event);
/// * at-most-one constraints (issue slots, store levels) use extendable
///   sequential chains with one commander variable per literal;
/// * store at-least-one clauses, the only non-monotone family, are
///   re-emitted per extension behind a fresh `frontier` guard literal
///   (stale guards are left free, making the old clauses vacuous).
///
/// The probe answers are identical to solving [`encode`]'s fresh
/// formula at each budget; only solver statistics and formula sizes
/// differ (they are cumulative here).
pub struct IncrementalEncoding<'a> {
    matched: &'a Matched,
    candidates: &'a Candidates,
    machine: &'a Machine,
    options: EncodeOptions,
    solver: Solver,
    horizon: u32,
    /// Launches created so far, per candidate: `(var, cycle)`.
    by_candidate: Vec<Vec<(Var, u32)>>,
    /// Highest launch cycle created per candidate (`None` = none yet).
    created_upto: Vec<Option<u32>>,
    /// `B` variable index: (class, cycle, cluster) → var.
    avail: HashMap<(ClassId, u32, usize), Var>,
    /// Completion events buffered for not-yet-emitted ladder cycles.
    events: HashMap<(ClassId, u32, usize), Vec<Lit>>,
    /// Activation literal per completion cycle (`0..horizon`).
    active: Vec<Var>,
    /// `goal_ok[i]` ⇒ every goal class is available by end of cycle `i`.
    goal_ok: Vec<Var>,
    /// Sequential at-most-one chain head per `(cycle, unit)` slot.
    slot_chain: HashMap<(u32, Unit), Var>,
    /// Sequential at-most-one chain head per store level.
    level_chain: Vec<Option<Var>>,
    /// Every launch literal per store level (for at-least-one).
    level_lits: Vec<Vec<Lit>>,
    /// Guard literal of the current store at-least-one clauses.
    frontier: Option<Var>,
    /// Memory-ordering conflicts `(a, b, strict)`: launching `a` at
    /// cycle `ca` and `b` at `cb` is forbidden when `ca > cb` (strict)
    /// or `ca ≥ cb`.
    order_pairs: Vec<(usize, usize, bool)>,
    /// Store level index per store candidate.
    level_of: HashMap<usize, usize>,
}

impl<'a> IncrementalEncoding<'a> {
    /// Creates an empty encoding (horizon 0); the first
    /// [`IncrementalEncoding::probe`] grows it.
    pub fn new(
        matched: &'a Matched,
        candidates: &'a Candidates,
        machine: &'a Machine,
        options: &EncodeOptions,
    ) -> IncrementalEncoding<'a> {
        let eg = &matched.egraph;
        let addr_of = |t: usize| -> ClassId {
            match candidates.list[t].kind {
                CandidateKind::Load { addr, .. } | CandidateKind::Store { addr, .. } => addr,
                _ => unreachable!("memory candidate"),
            }
        };
        let may_alias = |a: ClassId, b: ClassId| !eg.provably_distinct(a, b);
        let store_cands: Vec<usize> = candidates.store_levels.iter().flatten().copied().collect();
        let mut order_pairs = Vec::new();
        for &l in &candidates.loads() {
            for &s in &store_cands {
                if may_alias(addr_of(l), addr_of(s)) {
                    // A load must not issue after a store it may alias.
                    order_pairs.push((l, s, true));
                }
            }
        }
        for (li, level_a) in candidates.store_levels.iter().enumerate() {
            for level_b in &candidates.store_levels[li + 1..] {
                for &s1 in level_a {
                    for &s2 in level_b {
                        if may_alias(addr_of(s1), addr_of(s2)) {
                            // Earlier level must issue strictly before.
                            order_pairs.push((s1, s2, false));
                        }
                    }
                }
            }
        }
        let mut level_of = HashMap::new();
        for (li, level) in candidates.store_levels.iter().enumerate() {
            for &t in level {
                level_of.insert(t, li);
            }
        }
        IncrementalEncoding {
            matched,
            candidates,
            machine,
            options: *options,
            solver: Solver::new(),
            horizon: 0,
            by_candidate: vec![Vec::new(); candidates.list.len()],
            created_upto: vec![None; candidates.list.len()],
            avail: HashMap::new(),
            events: HashMap::new(),
            active: Vec::new(),
            goal_ok: Vec::new(),
            slot_chain: HashMap::new(),
            level_chain: vec![None; candidates.store_levels.len()],
            level_lits: vec![Vec::new(); candidates.store_levels.len()],
            frontier: None,
            order_pairs,
            level_of,
        }
    }

    /// The cycle horizon currently encoded (budgets `1..=horizon` are
    /// probeable without growing).
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// Installs a shared interrupt flag on the persistent solver. Once
    /// the flag is raised, the in-flight probe (and any later one)
    /// returns with [`IncrementalProbe::interrupted`] set at the
    /// solver's next checkpoint instead of an answer. Used by request
    /// deadlines to abandon a search mid-probe.
    pub fn set_interrupt(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.solver.set_interrupt(flag);
    }

    /// Lifetime work counters of the persistent solver.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Grows the encoded horizon from `self.horizon` to `new_h`,
    /// adding variables and clauses to the live solver.
    fn extend(&mut self, new_h: u32) {
        let old_h = self.horizon;
        debug_assert!(new_h > old_h);
        let eg = &self.matched.egraph;
        let clusters = self.machine.num_clusters();
        let cluster_of = |u: Unit| -> usize {
            if clusters == 1 {
                0
            } else {
                u.cluster()
            }
        };
        let delay = self.machine.cluster_delay();

        // New availability and activation variables for the new cycles.
        for &class in &self.candidates.needed_classes {
            if self.candidates.is_available(class) {
                continue;
            }
            for cycle in old_h..new_h {
                for cluster in 0..clusters {
                    let var = self.solver.new_var();
                    self.avail.insert((class, cycle, cluster), var);
                }
            }
        }
        for _ in old_h..new_h {
            let var = self.solver.new_var();
            self.active.push(var);
        }

        // Goal-deadline guards: goal_ok[i] ⇒ ∨_c B(goal, i, c).
        for cycle in old_h..new_h {
            let ok = self.solver.new_var();
            for &goal in &self.candidates.goal_classes {
                if self.candidates.is_available(goal) {
                    continue;
                }
                let mut clause = vec![Lit::neg(ok)];
                for cluster in 0..clusters {
                    clause.push(Lit::pos(self.avail[&(goal, cycle, cluster)]));
                }
                self.solver.add_clause(clause);
            }
            self.goal_ok.push(ok);
        }

        // New launches: exactly the launch set [`encode`] would build at
        // budget `new_h`, minus what already exists. Launch starts never
        // move earlier as the horizon grows (a candidate only has
        // launches once its critical path fits, and from then on the
        // path lengths below the horizon are exact), so the new launches
        // are a suffix of each candidate's cycle range — and they all
        // complete at or after `old_h`, which keeps the already-emitted
        // ladder clauses complete.
        let earliest = earliest_completion(self.candidates, eg, new_h);
        let guard_class = self.candidates.guard_class.map(|c| eg.find(c));
        let mut new_launches: Vec<(Var, LaunchCoord)> = Vec::new();
        for (t, cand) in self.candidates.list.iter().enumerate() {
            if cand.latency > new_h {
                continue;
            }
            let mut start = 0u32;
            for dep in cand.register_deps() {
                let dep = eg.find(dep);
                if self.candidates.is_available(dep) {
                    continue;
                }
                match earliest.get(&dep) {
                    Some(&e) => start = start.max(e),
                    None => {
                        start = new_h + 1;
                        break;
                    }
                }
            }
            if start > new_h || cand.latency > new_h - start {
                continue;
            }
            let first = match self.created_upto[t] {
                Some(end) => {
                    debug_assert!(start <= end + 1, "launch start moved earlier");
                    end + 1
                }
                None => start,
            };
            let last = new_h - cand.latency;
            if first > last {
                continue;
            }
            for cycle in first..=last {
                for &unit in &cand.units {
                    let var = self.solver.new_var();
                    new_launches.push((
                        var,
                        LaunchCoord {
                            candidate: t,
                            cycle,
                            unit,
                        },
                    ));
                }
            }
            self.created_upto[t] = Some(last);
        }

        // Per-launch clauses: activation, completion events, argument
        // readiness, issue-slot and store-level at-most-one chains.
        for &(var, coord) in &new_launches {
            let cand = &self.candidates.list[coord.candidate];
            let completion = coord.cycle + cand.latency - 1;
            debug_assert!(
                (old_h..new_h).contains(&completion),
                "new launch must complete in the new cycle range"
            );
            self.solver
                .add_clause([Lit::neg(var), Lit::pos(self.active[completion as usize])]);

            if !matches!(cand.kind, CandidateKind::Store { .. }) {
                let class = eg.find(cand.class);
                let own = cluster_of(coord.unit);
                self.events
                    .entry((class, completion, own))
                    .or_default()
                    .push(Lit::pos(var));
                if clusters > 1 {
                    let other = 1 - own;
                    self.events
                        .entry((class, completion + delay, other))
                        .or_default()
                        .push(Lit::pos(var));
                }
            }

            let mut deps = cand.register_deps();
            let unsafe_op = match cand.kind {
                CandidateKind::Store { .. } => true,
                CandidateKind::Load { .. } => !self.options.speculate_loads,
                _ => false,
            };
            if unsafe_op {
                if let Some(g) = guard_class {
                    deps.push(g);
                }
            }
            for dep in deps {
                let dep = eg.find(dep);
                if self.candidates.is_available(dep) {
                    continue;
                }
                if coord.cycle == 0 {
                    self.solver.add_clause([Lit::neg(var)]);
                    break;
                }
                let bvar = self.avail[&(dep, coord.cycle - 1, cluster_of(coord.unit))];
                self.solver.add_clause([Lit::neg(var), Lit::pos(bvar)]);
            }

            let prev = self.slot_chain.get(&(coord.cycle, coord.unit)).copied();
            let head = self.chain_link(var, prev);
            self.slot_chain.insert((coord.cycle, coord.unit), head);

            if let Some(&li) = self.level_of.get(&coord.candidate) {
                self.level_lits[li].push(Lit::pos(var));
                let head = self.chain_link(var, self.level_chain[li]);
                self.level_chain[li] = Some(head);
            }
        }

        // Memory-ordering conflicts touching a new launch.
        for &(a, b, strict) in &self.order_pairs {
            let forbidden = |ca: u32, cb: u32| if strict { ca > cb } else { ca >= cb };
            let new_of = |t: usize| {
                new_launches
                    .iter()
                    .filter(move |(_, c)| c.candidate == t)
                    .map(|&(v, c)| (v, c.cycle))
            };
            for (va, ca) in new_of(a) {
                for (vb, cb) in self.by_candidate[b].iter().copied().chain(new_of(b)) {
                    if forbidden(ca, cb) {
                        self.solver.add_clause([Lit::neg(va), Lit::neg(vb)]);
                    }
                }
            }
            for &(va, ca) in &self.by_candidate[a] {
                for (vb, cb) in new_of(b) {
                    if forbidden(ca, cb) {
                        self.solver.add_clause([Lit::neg(va), Lit::neg(vb)]);
                    }
                }
            }
        }
        for &(var, coord) in &new_launches {
            self.by_candidate[coord.candidate].push((var, coord.cycle));
        }

        // Ladder clauses for the new cycles, consuming buffered events:
        // B(Q,i,c) ⇔ B(Q,i-1,c) ∨ completions(Q,i,c).
        for &class in &self.candidates.needed_classes {
            if self.candidates.is_available(class) {
                continue;
            }
            for cycle in old_h..new_h {
                for cluster in 0..clusters {
                    let bvar = self.avail[&(class, cycle, cluster)];
                    let events = self
                        .events
                        .remove(&(class, cycle, cluster))
                        .unwrap_or_default();
                    let mut forward = vec![Lit::neg(bvar)];
                    if cycle > 0 {
                        forward.push(Lit::pos(self.avail[&(class, cycle - 1, cluster)]));
                    }
                    forward.extend(events.iter().copied());
                    self.solver.add_clause(forward);
                    if cycle > 0 {
                        self.solver.add_clause([
                            Lit::neg(self.avail[&(class, cycle - 1, cluster)]),
                            Lit::pos(bvar),
                        ]);
                    }
                    for &e in &events {
                        self.solver.add_clause([!e, Lit::pos(bvar)]);
                    }
                }
            }
        }

        // Store at-least-one, re-emitted over the grown launch sets
        // behind a fresh guard; the previous guard is left free, which
        // makes its clauses vacuous.
        if !self.candidates.store_levels.is_empty() {
            let f = self.solver.new_var();
            for lits in &self.level_lits {
                let mut clause = lits.clone();
                clause.push(Lit::pos(f));
                self.solver.add_clause(clause);
            }
            self.frontier = Some(f);
        }

        self.horizon = new_h;
    }

    /// Extends a sequential at-most-one chain with launch `var`:
    /// `head ⇐ var ∨ prev` and `var ⇒ ¬prev`. Returns the new head.
    fn chain_link(&mut self, var: Var, prev: Option<Var>) -> Var {
        let head = self.solver.new_var();
        if let Some(p) = prev {
            self.solver.add_clause([Lit::neg(var), Lit::neg(p)]);
            self.solver.add_clause([Lit::neg(p), Lit::pos(head)]);
        }
        self.solver.add_clause([Lit::neg(var), Lit::pos(head)]);
        head
    }

    /// Asks whether a `k`-cycle schedule exists, reusing the live
    /// solver. Growing the horizon (when `k > horizon`) only adds
    /// variables and clauses; the budget restriction itself is pure
    /// assumptions, so the answer matches a fresh [`encode`] at `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (the zero-launch case never probes).
    pub fn probe(&mut self, k: u32) -> IncrementalProbe {
        self.probe_traced(k, &Tracer::disabled())
    }

    /// [`IncrementalEncoding::probe`] with tracing: horizon growth is
    /// logged as an `encode.grow` event (old/new horizon, variables and
    /// clauses added to the live solver).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (the zero-launch case never probes).
    pub fn probe_traced(&mut self, k: u32, tracer: &Tracer) -> IncrementalProbe {
        assert!(k >= 1, "budgets start at one cycle");
        let encode_start = Instant::now();
        if k > self.horizon {
            let old_h = self.horizon;
            let vars_before = self.solver.num_vars();
            let clauses_before = self.solver.num_clauses();
            self.extend(k);
            tracer.event("encode.grow", || {
                vec![
                    field("from", old_h),
                    field("to", k),
                    field("new_vars", self.solver.num_vars() - vars_before),
                    field("new_clauses", self.solver.num_clauses() - clauses_before),
                ]
            });
        }
        let encode_ms = encode_start.elapsed().as_secs_f64() * 1e3;

        let mut assumptions: Vec<Lit> = (k..self.horizon)
            .map(|e| Lit::neg(self.active[e as usize]))
            .collect();
        assumptions.push(Lit::pos(self.goal_ok[(k - 1) as usize]));
        if let Some(f) = self.frontier {
            assumptions.push(Lit::neg(f));
        }

        let before = self.solver.stats();
        let solve_start = Instant::now();
        let result = self.solver.solve_under(&assumptions);
        let solve_ms = solve_start.elapsed().as_secs_f64() * 1e3;
        let (satisfiable, interrupted) = match result {
            SolveResult::Sat => (true, false),
            SolveResult::Unsat => (false, false),
            // Only possible when `set_interrupt` installed a flag and
            // it was raised (deadline cancellation).
            SolveResult::Interrupted => (false, true),
        };
        IncrementalProbe {
            satisfiable,
            interrupted,
            vars: self.solver.num_vars(),
            clauses: self.solver.num_clauses(),
            encode_ms,
            solve_ms,
            stats: self.solver.stats().since(before),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine_terms::enumerate;
    use crate::matcher::match_gma;
    use denali_axioms::SaturationLimits;
    use denali_lang::{lower_proc, parse_program};
    use denali_sat::SolveResult;

    fn pipeline(text: &str) -> (Matched, Candidates) {
        let p = parse_program(text).unwrap();
        let gma = lower_proc(&p.procs[0]).unwrap().remove(0);
        let matched = match_gma(
            &gma,
            &denali_axioms::standard_axioms(),
            &SaturationLimits::default(),
        )
        .unwrap();
        let inputs = gma.inputs();
        let cands = enumerate(&matched, &Machine::ev6(), &inputs, None).unwrap();
        (matched, cands)
    }

    fn solve_at(matched: &Matched, cands: &Candidates, machine: &Machine, k: u32) -> SolveResult {
        let enc = encode(matched, cands, machine, k, &EncodeOptions::default());
        let mut solver = enc.cnf.to_solver();
        solver.solve()
    }

    #[test]
    fn figure2_is_one_cycle() {
        let (matched, cands) =
            pipeline("(procdecl f ((reg6 long)) long (:= (res (+ (* reg6 4) 1))))");
        let m = Machine::ev6();
        assert_eq!(solve_at(&matched, &cands, &m, 1), SolveResult::Sat);
    }

    #[test]
    fn dependent_adds_need_two_cycles() {
        // (a + b) + c: two dependent adds.
        let (matched, cands) =
            pipeline("(procdecl f ((a long) (b long) (c long)) long (:= (res (+ (+ a b) c))))");
        let m = Machine::ev6();
        assert_eq!(solve_at(&matched, &cands, &m, 1), SolveResult::Unsat);
        assert_eq!(solve_at(&matched, &cands, &m, 2), SolveResult::Sat);
    }

    #[test]
    fn multiply_latency_dominates() {
        let (matched, cands) = pipeline("(procdecl f ((a long)) long (:= (res (+ (* a a) 1))))");
        let m = Machine::ev6();
        // mulq latency 7, then the add: 8 cycles; 7 is impossible.
        assert_eq!(solve_at(&matched, &cands, &m, 7), SolveResult::Unsat);
        assert_eq!(solve_at(&matched, &cands, &m, 8), SolveResult::Sat);
    }

    #[test]
    fn issue_width_constrains_parallelism() {
        // Four independent ops combined with xors (no associativity
        // axioms, so no AC blowup) on a single-issue machine need more
        // cycles than on the quad-issue EV6.
        let text = "(procdecl f ((a long) (b long)) long
            (:= (res (^ (^ (+ a 1) (- a 2)) (^ (& b 3) (| b 4))))))";
        let p = parse_program(text).unwrap();
        let gma = lower_proc(&p.procs[0]).unwrap().remove(0);
        let limits = SaturationLimits {
            max_iterations: 8,
            max_nodes: 4_000,
            ..SaturationLimits::default()
        };
        let matched = match_gma(&gma, &denali_axioms::standard_axioms(), &limits).unwrap();
        let quad = Machine::ev6();
        let single = Machine::single_issue();
        let cands_quad = enumerate(&matched, &quad, &gma.inputs(), None).unwrap();
        let cands_single = enumerate(&matched, &single, &gma.inputs(), None).unwrap();
        // Quad issue with clusters: the final xor's two operands are
        // produced on different clusters, so one pays the bypass delay;
        // 3 cycles is impossible but 4 works.
        assert_eq!(
            solve_at(&matched, &cands_quad, &quad, 3),
            SolveResult::Unsat
        );
        assert_eq!(solve_at(&matched, &cands_quad, &quad, 4), SolveResult::Sat);
        // Without the cluster penalty, 3 cycles suffice.
        let flat = Machine::ev6_unclustered();
        let cands_flat = enumerate(&matched, &flat, &gma.inputs(), None).unwrap();
        assert_eq!(solve_at(&matched, &cands_flat, &flat, 3), SolveResult::Sat);
        // Single issue needs at least 7 instructions, so 7 cycles.
        assert_eq!(
            solve_at(&matched, &cands_single, &single, 6),
            SolveResult::Unsat
        );
        assert_eq!(
            solve_at(&matched, &cands_single, &single, 7),
            SolveResult::Sat
        );
    }

    #[test]
    fn load_latency_is_respected() {
        let (matched, cands) = pipeline("(procdecl f ((p long*)) long (:= (res (+ (deref p) 1))))");
        let m = Machine::ev6();
        // ldq (3 cycles) + addq (1): 4 cycles minimum.
        assert_eq!(solve_at(&matched, &cands, &m, 3), SolveResult::Unsat);
        assert_eq!(solve_at(&matched, &cands, &m, 4), SolveResult::Sat);
    }

    #[test]
    fn guard_orders_stores() {
        // A guarded store cannot launch before the guard is computed.
        let (matched, cands) = pipeline(
            "(procdecl f ((p long*) (q long*) (x long)) long
               (do (-> (<u p q) (:= ((deref p) x)))))",
        );
        let m = Machine::ev6();
        // Guard (1 cycle) then store: 2 cycles minimum.
        assert_eq!(solve_at(&matched, &cands, &m, 1), SolveResult::Unsat);
        assert_eq!(solve_at(&matched, &cands, &m, 2), SolveResult::Sat);
    }

    #[test]
    fn encoding_sizes_grow_with_k() {
        let (matched, cands) = pipeline("(procdecl f ((a long)) long (:= (res (+ (* a 4) 1))))");
        let m = Machine::ev6();
        let e4 = encode(&matched, &cands, &m, 4, &EncodeOptions::default());
        let e8 = encode(&matched, &cands, &m, 8, &EncodeOptions::default());
        assert!(e8.num_vars() > e4.num_vars());
        assert!(e8.num_clauses() > e4.num_clauses());
    }

    #[test]
    fn identity_goal_needs_no_instructions() {
        let (matched, cands) = pipeline("(procdecl f ((a long)) long (:= (res a)))");
        let m = Machine::ev6();
        // K = 1 trivially SAT (no launches needed at all).
        assert_eq!(solve_at(&matched, &cands, &m, 1), SolveResult::Sat);
    }
}
