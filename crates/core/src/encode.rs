//! The constraint generator: candidates + cycle budget → CNF.
//!
//! Implements §6's encoding, generalized from the single-issue
//! presentation to the real EV6 shape (quad issue, unit restrictions,
//! clusters), plus the §7 constraints (guard-before-unsafe-operations
//! and memory ordering):
//!
//! * `L(T, i, u)` — candidate `T` is **launched** at cycle `i` on unit
//!   `u` (the paper's `L(i, T)`, refined by unit),
//! * `B(Q, i, c)` — the value of class `Q` has been computed **by** the
//!   end of cycle `i` and is usable on cluster `c` (the paper's
//!   `B(i, Q)`, refined by cluster to model the EV6's cross-cluster
//!   bypass delay).
//!
//! The paper's five condition families map to:
//! 1. launch/completion wiring — folded into the `B` ladder clauses
//!    (a launch at `j` completes at `j + λ - 1`),
//! 2. arguments available before launch — `L(T,i,u) ⇒ B(Q, i-1, cluster(u))`,
//! 3. `B` holds iff some member term completed in time — the ladder
//!    `B(Q,i,c) ⇔ B(Q,i-1,c) ∨ {launches completing at i on c}`,
//! 4. issue exclusivity — at most one launch per `(cycle, unit)` slot,
//! 5. goals computed within budget — `∨_c B(G, K-1, c)` per goal class.

use std::collections::HashMap;

use denali_arch::{Machine, Unit};
use denali_egraph::ClassId;
use denali_sat::dimacs::Cnf;
use denali_sat::{Lit, Var};

use crate::machine_terms::{CandidateKind, Candidates};
use crate::matcher::Matched;

/// Encoding options (§7 behaviors).
#[derive(Clone, Copy, Debug)]
pub struct EncodeOptions {
    /// If false, loads are unsafe to speculate and must wait for the
    /// guard like stores do. The default matches the paper's checksum
    /// experiment, which speculates next-iteration loads.
    pub speculate_loads: bool,
}

impl Default for EncodeOptions {
    fn default() -> EncodeOptions {
        EncodeOptions {
            speculate_loads: true,
        }
    }
}

/// A launch variable's coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LaunchCoord {
    /// Candidate index into [`Candidates::list`].
    pub candidate: usize,
    /// Issue cycle.
    pub cycle: u32,
    /// Functional unit.
    pub unit: Unit,
}

/// The CNF for one cycle budget, with the variable maps needed to decode
/// a model.
#[derive(Clone, Debug)]
pub struct Encoding {
    /// The formula.
    pub cnf: Cnf,
    /// Cycle budget encoded.
    pub k: u32,
    /// Launch variable coordinates, indexed by SAT variable order
    /// (launch variables come first).
    pub launches: Vec<LaunchCoord>,
    /// `B` variable index: (class, cycle, cluster) → var.
    pub avail: HashMap<(ClassId, u32, usize), Var>,
}

impl Encoding {
    /// Number of SAT variables.
    pub fn num_vars(&self) -> usize {
        self.cnf.num_vars
    }

    /// Number of CNF clauses.
    pub fn num_clauses(&self) -> usize {
        self.cnf.clauses.len()
    }

    /// Decodes a model into the set of true launches.
    pub fn true_launches(&self, model: &[bool]) -> Vec<LaunchCoord> {
        self.launches
            .iter()
            .enumerate()
            .filter(|&(v, _)| model[v])
            .map(|(_, &c)| c)
            .collect()
    }
}

struct Builder {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Builder {
    fn var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    fn clause(&mut self, lits: Vec<Lit>) {
        self.clauses.push(lits);
    }

    /// At-most-one over `lits`: pairwise for small sets, the sequential
    /// (ladder) encoding for larger ones (3n clauses and n−1 auxiliary
    /// variables instead of n²/2 clauses).
    fn at_most_one(&mut self, lits: &[Lit]) {
        if lits.len() <= 4 {
            for (i, &a) in lits.iter().enumerate() {
                for &b in &lits[i + 1..] {
                    self.clause(vec![!a, !b]);
                }
            }
            return;
        }
        // s_i = "some literal among lits[..=i] is true".
        let mut prev: Option<Var> = None;
        for (i, &x) in lits.iter().enumerate() {
            if i + 1 == lits.len() {
                if let Some(s) = prev {
                    self.clause(vec![!x, Lit::neg(s)]);
                }
                break;
            }
            let s = self.var();
            self.clause(vec![!x, Lit::pos(s)]);
            if let Some(p) = prev {
                self.clause(vec![Lit::neg(p), Lit::pos(s)]);
                self.clause(vec![!x, Lit::neg(p)]);
            }
            prev = Some(s);
        }
    }
}

/// Earliest cycle at which each class's value could be usable by a
/// consumer (critical path from the inputs, ignoring resource limits).
fn earliest_completion(
    candidates: &Candidates,
    eg: &denali_egraph::EGraph,
    k: u32,
) -> HashMap<ClassId, u32> {
    let horizon = k + 1;
    let mut usable: HashMap<ClassId, u32> = HashMap::new();
    loop {
        let mut changed = false;
        for cand in &candidates.list {
            if matches!(cand.kind, CandidateKind::Store { .. }) {
                continue;
            }
            let class = eg.find(cand.class);
            let mut start = 0u32;
            let mut feasible = true;
            for dep in cand.register_deps() {
                let dep = eg.find(dep);
                if candidates.is_available(dep) {
                    continue;
                }
                match usable.get(&dep) {
                    Some(&e) if e <= horizon => start = start.max(e),
                    _ => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            let finish = (start + cand.latency).min(horizon + 1);
            let entry = usable.entry(class).or_insert(u32::MAX);
            if finish < *entry {
                *entry = finish;
                changed = true;
            }
        }
        if !changed {
            return usable;
        }
    }
}

/// Generates the CNF asserting "a legal `k`-cycle schedule computing the
/// goals exists". Unsatisfiability of this formula is the paper's
/// conjecture that no `k`-cycle program exists.
pub fn encode(
    matched: &Matched,
    candidates: &Candidates,
    machine: &Machine,
    k: u32,
    options: &EncodeOptions,
) -> Encoding {
    let eg = &matched.egraph;
    let clusters = machine.num_clusters();
    let cluster_of = |u: Unit| -> usize {
        if clusters == 1 {
            0
        } else {
            u.cluster()
        }
    };
    let delay = machine.cluster_delay();

    let mut b = Builder {
        num_vars: 0,
        clauses: Vec::new(),
    };

    // Earliest feasible completion cycle per class (critical path from
    // the inputs), used to prune launch variables that could never
    // satisfy their argument-readiness constraints.
    let earliest = earliest_completion(candidates, eg, k);

    // ---- Launch variables ----
    let mut launches: Vec<LaunchCoord> = Vec::new();
    for (t, cand) in candidates.list.iter().enumerate() {
        if cand.latency > k {
            continue; // cannot complete within the budget
        }
        // A launch cannot start before every register argument could
        // possibly be ready (same-cluster best case).
        let mut start = 0u32;
        for dep in cand.register_deps() {
            let dep = eg.find(dep);
            if candidates.is_available(dep) {
                continue;
            }
            match earliest.get(&dep) {
                Some(&e) => start = start.max(e),
                None => {
                    start = k + 1; // dependency never computable
                    break;
                }
            }
        }
        if start > k || cand.latency > k - start {
            continue;
        }
        for cycle in start..=(k - cand.latency) {
            for &unit in &cand.units {
                let var = b.var();
                debug_assert_eq!(var.index(), launches.len());
                launches.push(LaunchCoord {
                    candidate: t,
                    cycle,
                    unit,
                });
            }
        }
    }

    // ---- Availability variables (B ladder) ----
    let mut avail: HashMap<(ClassId, u32, usize), Var> = HashMap::new();
    for &class in &candidates.needed_classes {
        if candidates.is_available(class) {
            continue; // inputs are available everywhere from cycle 0
        }
        for cycle in 0..k {
            for cluster in 0..clusters {
                let var = b.var();
                avail.insert((class, cycle, cluster), var);
            }
        }
    }

    // Completion events: (class, cycle, cluster) -> launch literals.
    let mut completions: HashMap<(ClassId, u32, usize), Vec<Lit>> = HashMap::new();
    for (v, coord) in launches.iter().enumerate() {
        let (t, cycle, unit) = (coord.candidate, coord.cycle, coord.unit);
        let var = Var::from_index(v);
        let cand = &candidates.list[t];
        if matches!(cand.kind, CandidateKind::Store { .. }) {
            continue; // stores produce no register value
        }
        let class = eg.find(cand.class);
        let own = cluster_of(unit);
        let complete = cycle + cand.latency - 1;
        if complete < k {
            completions
                .entry((class, complete, own))
                .or_default()
                .push(Lit::pos(var));
        }
        if clusters > 1 {
            let other = 1 - own;
            let cross = complete + delay;
            if cross < k {
                completions
                    .entry((class, cross, other))
                    .or_default()
                    .push(Lit::pos(var));
            }
        }
    }

    // Ladder clauses: B(Q,i,c) ⇔ B(Q,i-1,c) ∨ completions(Q,i,c).
    for &class in &candidates.needed_classes {
        if candidates.is_available(class) {
            continue;
        }
        for cycle in 0..k {
            for cluster in 0..clusters {
                let bvar = avail[&(class, cycle, cluster)];
                let events = completions
                    .get(&(class, cycle, cluster))
                    .cloned()
                    .unwrap_or_default();
                // B(i) -> B(i-1) ∨ events
                let mut forward = vec![Lit::neg(bvar)];
                if cycle > 0 {
                    forward.push(Lit::pos(avail[&(class, cycle - 1, cluster)]));
                }
                forward.extend(events.iter().copied());
                b.clause(forward);
                // B(i-1) -> B(i); event -> B(i)
                if cycle > 0 {
                    b.clause(vec![
                        Lit::neg(avail[&(class, cycle - 1, cluster)]),
                        Lit::pos(bvar),
                    ]);
                }
                for &e in &events {
                    b.clause(vec![!e, Lit::pos(bvar)]);
                }
            }
        }
    }

    // ---- Argument readiness ----
    let guard_class = candidates.guard_class.map(|c| eg.find(c));
    for (v, coord) in launches.iter().enumerate() {
        let (t, cycle, unit) = (coord.candidate, coord.cycle, coord.unit);
        let var = Var::from_index(v);
        let cand = &candidates.list[t];
        let mut deps = cand.register_deps();
        // §7: unsafe operations wait for the guard.
        let unsafe_op = match cand.kind {
            CandidateKind::Store { .. } => true,
            CandidateKind::Load { .. } => !options.speculate_loads,
            _ => false,
        };
        if unsafe_op {
            if let Some(g) = guard_class {
                deps.push(g);
            }
        }
        for dep in deps {
            let dep = eg.find(dep);
            if candidates.is_available(dep) {
                continue;
            }
            if cycle == 0 {
                b.clause(vec![Lit::neg(var)]);
                break;
            }
            let bvar = avail[&(dep, cycle - 1, cluster_of(unit))];
            b.clause(vec![Lit::neg(var), Lit::pos(bvar)]);
        }
    }

    // ---- Issue exclusivity: at most one launch per (cycle, unit) ----
    let mut slots: std::collections::BTreeMap<(u32, Unit), Vec<Var>> =
        std::collections::BTreeMap::new();
    for (v, coord) in launches.iter().enumerate() {
        slots
            .entry((coord.cycle, coord.unit))
            .or_default()
            .push(Var::from_index(v));
    }
    for vars in slots.values() {
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        b.at_most_one(&lits);
    }

    // ---- Goals ----
    for &goal in &candidates.goal_classes {
        if candidates.is_available(goal) {
            continue; // already in an input register
        }
        let mut clause = Vec::new();
        for cluster in 0..clusters {
            clause.push(Lit::pos(avail[&(goal, k - 1, cluster)]));
        }
        b.clause(clause);
    }

    // ---- Stores: exactly one launch per chain level ----
    for level in &candidates.store_levels {
        let mut level_launches: Vec<Var> = Vec::new();
        for (v, coord) in launches.iter().enumerate() {
            if level.contains(&coord.candidate) {
                level_launches.push(Var::from_index(v));
            }
        }
        b.clause(level_launches.iter().map(|&v| Lit::pos(v)).collect());
        let lits: Vec<Lit> = level_launches.iter().map(|&v| Lit::pos(v)).collect();
        b.at_most_one(&lits);
    }

    // ---- Memory ordering (§7) ----
    // Loads read the GMA's pre-state: a load must not issue after a
    // store it may alias. Store levels must retain their chain order
    // unless the addresses are provably distinct.
    let loads = candidates.loads();
    let store_cands: Vec<usize> = candidates.store_levels.iter().flatten().copied().collect();
    let addr_of = |t: usize| -> ClassId {
        match candidates.list[t].kind {
            CandidateKind::Load { addr, .. } | CandidateKind::Store { addr, .. } => addr,
            _ => unreachable!("memory candidate"),
        }
    };
    let may_alias = |a: ClassId, b: ClassId| !eg.provably_distinct(a, b);
    for &l in &loads {
        for &s in &store_cands {
            if !may_alias(addr_of(l), addr_of(s)) {
                continue;
            }
            for (i1, lc1) in launches.iter().enumerate() {
                if lc1.candidate != l {
                    continue;
                }
                for (i2, lc2) in launches.iter().enumerate() {
                    if lc2.candidate == s && lc1.cycle > lc2.cycle {
                        b.clause(vec![
                            Lit::neg(Var::from_index(i1)),
                            Lit::neg(Var::from_index(i2)),
                        ]);
                    }
                }
            }
        }
    }
    for (li, level_a) in candidates.store_levels.iter().enumerate() {
        for level_b in &candidates.store_levels[li + 1..] {
            for &s1 in level_a {
                for &s2 in level_b {
                    if !may_alias(addr_of(s1), addr_of(s2)) {
                        continue;
                    }
                    // Earlier level must issue strictly before later.
                    for (i1, lc1) in launches.iter().enumerate() {
                        if lc1.candidate != s1 {
                            continue;
                        }
                        for (i2, lc2) in launches.iter().enumerate() {
                            if lc2.candidate == s2 && lc2.cycle <= lc1.cycle {
                                b.clause(vec![
                                    Lit::neg(Var::from_index(i1)),
                                    Lit::neg(Var::from_index(i2)),
                                ]);
                            }
                        }
                    }
                }
            }
        }
    }

    Encoding {
        cnf: Cnf {
            num_vars: b.num_vars,
            clauses: b.clauses,
        },
        k,
        launches,
        avail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine_terms::enumerate;
    use crate::matcher::match_gma;
    use denali_axioms::SaturationLimits;
    use denali_lang::{lower_proc, parse_program};
    use denali_sat::SolveResult;

    fn pipeline(text: &str) -> (Matched, Candidates) {
        let p = parse_program(text).unwrap();
        let gma = lower_proc(&p.procs[0]).unwrap().remove(0);
        let matched = match_gma(
            &gma,
            &denali_axioms::standard_axioms(),
            &SaturationLimits::default(),
        )
        .unwrap();
        let inputs = gma.inputs();
        let cands = enumerate(&matched, &Machine::ev6(), &inputs, None).unwrap();
        (matched, cands)
    }

    fn solve_at(matched: &Matched, cands: &Candidates, machine: &Machine, k: u32) -> SolveResult {
        let enc = encode(matched, cands, machine, k, &EncodeOptions::default());
        let mut solver = enc.cnf.to_solver();
        solver.solve()
    }

    #[test]
    fn figure2_is_one_cycle() {
        let (matched, cands) =
            pipeline("(procdecl f ((reg6 long)) long (:= (res (+ (* reg6 4) 1))))");
        let m = Machine::ev6();
        assert_eq!(solve_at(&matched, &cands, &m, 1), SolveResult::Sat);
    }

    #[test]
    fn dependent_adds_need_two_cycles() {
        // (a + b) + c: two dependent adds.
        let (matched, cands) =
            pipeline("(procdecl f ((a long) (b long) (c long)) long (:= (res (+ (+ a b) c))))");
        let m = Machine::ev6();
        assert_eq!(solve_at(&matched, &cands, &m, 1), SolveResult::Unsat);
        assert_eq!(solve_at(&matched, &cands, &m, 2), SolveResult::Sat);
    }

    #[test]
    fn multiply_latency_dominates() {
        let (matched, cands) = pipeline("(procdecl f ((a long)) long (:= (res (+ (* a a) 1))))");
        let m = Machine::ev6();
        // mulq latency 7, then the add: 8 cycles; 7 is impossible.
        assert_eq!(solve_at(&matched, &cands, &m, 7), SolveResult::Unsat);
        assert_eq!(solve_at(&matched, &cands, &m, 8), SolveResult::Sat);
    }

    #[test]
    fn issue_width_constrains_parallelism() {
        // Four independent ops combined with xors (no associativity
        // axioms, so no AC blowup) on a single-issue machine need more
        // cycles than on the quad-issue EV6.
        let text = "(procdecl f ((a long) (b long)) long
            (:= (res (^ (^ (+ a 1) (- a 2)) (^ (& b 3) (| b 4))))))";
        let p = parse_program(text).unwrap();
        let gma = lower_proc(&p.procs[0]).unwrap().remove(0);
        let limits = SaturationLimits {
            max_iterations: 8,
            max_nodes: 4_000,
            ..SaturationLimits::default()
        };
        let matched = match_gma(&gma, &denali_axioms::standard_axioms(), &limits).unwrap();
        let quad = Machine::ev6();
        let single = Machine::single_issue();
        let cands_quad = enumerate(&matched, &quad, &gma.inputs(), None).unwrap();
        let cands_single = enumerate(&matched, &single, &gma.inputs(), None).unwrap();
        // Quad issue with clusters: the final xor's two operands are
        // produced on different clusters, so one pays the bypass delay;
        // 3 cycles is impossible but 4 works.
        assert_eq!(
            solve_at(&matched, &cands_quad, &quad, 3),
            SolveResult::Unsat
        );
        assert_eq!(solve_at(&matched, &cands_quad, &quad, 4), SolveResult::Sat);
        // Without the cluster penalty, 3 cycles suffice.
        let flat = Machine::ev6_unclustered();
        let cands_flat = enumerate(&matched, &flat, &gma.inputs(), None).unwrap();
        assert_eq!(solve_at(&matched, &cands_flat, &flat, 3), SolveResult::Sat);
        // Single issue needs at least 7 instructions, so 7 cycles.
        assert_eq!(
            solve_at(&matched, &cands_single, &single, 6),
            SolveResult::Unsat
        );
        assert_eq!(
            solve_at(&matched, &cands_single, &single, 7),
            SolveResult::Sat
        );
    }

    #[test]
    fn load_latency_is_respected() {
        let (matched, cands) = pipeline("(procdecl f ((p long*)) long (:= (res (+ (deref p) 1))))");
        let m = Machine::ev6();
        // ldq (3 cycles) + addq (1): 4 cycles minimum.
        assert_eq!(solve_at(&matched, &cands, &m, 3), SolveResult::Unsat);
        assert_eq!(solve_at(&matched, &cands, &m, 4), SolveResult::Sat);
    }

    #[test]
    fn guard_orders_stores() {
        // A guarded store cannot launch before the guard is computed.
        let (matched, cands) = pipeline(
            "(procdecl f ((p long*) (q long*) (x long)) long
               (do (-> (<u p q) (:= ((deref p) x)))))",
        );
        let m = Machine::ev6();
        // Guard (1 cycle) then store: 2 cycles minimum.
        assert_eq!(solve_at(&matched, &cands, &m, 1), SolveResult::Unsat);
        assert_eq!(solve_at(&matched, &cands, &m, 2), SolveResult::Sat);
    }

    #[test]
    fn encoding_sizes_grow_with_k() {
        let (matched, cands) = pipeline("(procdecl f ((a long)) long (:= (res (+ (* a 4) 1))))");
        let m = Machine::ev6();
        let e4 = encode(&matched, &cands, &m, 4, &EncodeOptions::default());
        let e8 = encode(&matched, &cands, &m, 8, &EncodeOptions::default());
        assert!(e8.num_vars() > e4.num_vars());
        assert!(e8.num_clauses() > e4.num_clauses());
    }

    #[test]
    fn identity_goal_needs_no_instructions() {
        let (matched, cands) = pipeline("(procdecl f ((a long)) long (:= (res a)))");
        let m = Machine::ev6();
        // K = 1 trivially SAT (no launches needed at all).
        assert_eq!(solve_at(&matched, &cands, &m, 1), SolveResult::Sat);
    }
}
