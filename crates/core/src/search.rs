//! The cycle-budget search.
//!
//! §1.3: "Continuing with binary search, we eventually find, for some K,
//! a K-cycle program that computes P, together with a proof that K−1
//! cycles are insufficient: that is, an optimal program". We probe
//! geometrically upward from a structural lower bound until the first
//! satisfiable budget, then binary-search the gap, recording the size
//! and outcome of every SAT problem (the paper reports these sizes for
//! byteswap4 in §8).
//!
//! # Incremental probing
//!
//! The probes are a sequence of closely related SAT problems — the
//! encodings differ only in the cycle budget — so the serial CDCL
//! search defaults to *incremental* mode ([`SearchParams::incremental`]):
//! one [`IncrementalEncoding`] holds a persistent solver, growing the
//! encoded horizon during geometric ascent and restricting it back down
//! per probe with assumption literals, so learned clauses, variable
//! activity, and saved polarities carry over between budgets. The probe
//! log's (K, SAT/UNSAT) sequence, the chosen cycle count, the
//! optimality certificate, and the decoded program are identical to
//! fresh-solver mode; only formula sizes and solver counters differ
//! (they are cumulative for the live solver). Speculative (`threads >
//! 1`), DPLL, and DIMACS-dumping searches keep fresh per-probe solvers.
//!
//! # Speculation
//!
//! With [`SearchParams::threads`] > 1 the search becomes *speculative*:
//! each probe owns its CNF and solver, so while the current budget is
//! being decided the budgets the search would visit *next* are encoded
//! and solved concurrently on scoped threads. During geometric ascent
//! the partner of budget `K` is `2K` (needed exactly when `K` is
//! UNSAT); during binary search the partners of the midpoint are the
//! two possible next midpoints (one needed per outcome). As soon as
//! the primary probe resolves, the speculation on the losing branch is
//! cancelled via [`CancelToken`] and both solvers abandon it at their
//! next 1024-step checkpoint (the CDCL solver via its interrupt flag,
//! DPLL via `solve_interruptible`). Completed speculations are cached
//! and consumed when — and only when — the serial control flow reaches
//! their budget, so the probe log, the chosen program, and the cycle
//! count are identical to the serial search at any thread count.
//!
//! # Portfolio probing
//!
//! With [`SearchParams::portfolio`] >= 2 each consumed probe is decided
//! by a *race*: N diversified CDCL configurations (restart schedule,
//! initial phase / phase saving, VSIDS decay — see
//! [`SolverConfig::diversified`]) attack the same formula on scoped
//! threads, the first verdict wins, and the losers are cancelled via
//! per-lane [`CancelToken`]s. Every lane's verdict is necessarily the
//! same, so consuming the winner's answer keeps the probe log exact;
//! the winning budget is decoded by the canonical fresh re-solve
//! (default configuration), so the decoded program is byte-identical no
//! matter which lane won. Portfolio composes with speculation (each
//! speculative probe races its own portfolio) and forces fresh
//! per-probe solvers.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use denali_arch::{Machine, Program};
use denali_lang::Gma;
use denali_par::CancelToken;
use denali_sat::dimacs::Cnf;
use denali_sat::{dpll, SolveResult, SolverConfig, SolverStats};
use denali_trace::{field, Tracer};

use crate::encode::{encode, EncodeOptions, IncrementalEncoding, LaunchCoord};
use crate::extract::extract;
use crate::machine_terms::Candidates;
use crate::matcher::Matched;

/// Which SAT engine answers the probes (the paper's point that the
/// solver is swappable: CHAFF vs its predecessors).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolverChoice {
    /// The CDCL solver (CHAFF's stand-in).
    #[default]
    Cdcl,
    /// The naive DPLL solver (the "previous solver").
    Dpll,
}

/// One SAT probe of the search.
#[derive(Clone, Copy, Debug)]
pub struct ProbeStats {
    /// Cycle budget tested.
    pub k: u32,
    /// SAT variables in the probe's formula. Fresh probes report their
    /// own encoding's size; incremental probes report the live solver's
    /// cumulative size.
    pub vars: usize,
    /// CNF clauses in the probe's formula (cumulative for incremental
    /// probes, like `vars`).
    pub clauses: usize,
    /// Whether a schedule exists within `k` cycles.
    pub satisfiable: bool,
    /// Wall-clock milliseconds in the solver.
    pub solve_ms: f64,
    /// Wall-clock milliseconds generating the constraints.
    pub encode_ms: f64,
    /// CDCL search counters for this probe (`None` under DPLL). In
    /// incremental mode the work counters are per-probe deltas and the
    /// `solves`/`carried_learned`/`carried_activity` gauges show the
    /// solver reuse. In portfolio mode these are the winning lane's
    /// counters.
    pub solver: Option<SolverStats>,
    /// In portfolio mode: the index of the [`SolverConfig::diversified`]
    /// configuration whose verdict landed first. `None` outside
    /// portfolio races. Which lane wins is a wall-clock race — it may
    /// differ between runs even though the verdict (and therefore the
    /// search's output) never does.
    pub winner: Option<u32>,
}

impl fmt::Display for ProbeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "K={}: {} vars, {} clauses, {} ({:.1} ms solve)",
            self.k,
            self.vars,
            self.clauses,
            if self.satisfiable { "SAT" } else { "UNSAT" },
            self.solve_ms
        )?;
        if let Some(s) = &self.solver {
            write!(
                f,
                " [{} decisions, {} conflicts, {} restarts",
                s.decisions, s.conflicts, s.restarts
            )?;
            if s.solves > 1 {
                write!(
                    f,
                    ", carried {} learned / {} warm vars",
                    s.carried_learned, s.carried_activity
                )?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// The search result: the optimal program found plus the probe log.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The decoded program at the smallest satisfiable budget.
    pub program: Program,
    /// The optimal cycle count.
    pub cycles: u32,
    /// True if `cycles - 1` was refuted (the optimality certificate):
    /// either a probe at `cycles - 1` returned UNSAT, or `cycles == 1`
    /// and the GMA requires launches (zero cycles is vacuously
    /// insufficient). The zero-launch identity path reports `false` —
    /// nothing was refuted there.
    pub refuted_below: bool,
    /// Every probe performed, in order.
    pub probes: Vec<ProbeStats>,
}

/// Search failure.
#[derive(Clone, Debug)]
pub struct SearchError {
    /// Explanation.
    pub message: String,
    /// True if the search stopped because [`SearchParams::cancel`] was
    /// raised (a deadline or shutdown), not because it failed.
    pub cancelled: bool,
}

impl SearchError {
    fn new(message: String) -> SearchError {
        SearchError {
            message,
            cancelled: false,
        }
    }

    fn cancelled() -> SearchError {
        SearchError {
            message: "search cancelled".to_owned(),
            cancelled: true,
        }
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SearchError {}

/// Where to dump each probe's CNF in DIMACS format.
#[derive(Clone, Debug)]
pub struct DimacsDump {
    /// Target directory (created if missing).
    pub directory: std::path::PathBuf,
    /// File-name prefix (the GMA name).
    pub label: String,
}

/// How the search runs: engine, budget ceiling, parallelism, dumps.
#[derive(Clone, Debug)]
pub struct SearchParams {
    /// SAT engine answering the probes.
    pub solver: SolverChoice,
    /// Give up if no schedule exists within this many cycles.
    pub max_cycles: u32,
    /// Worker threads for speculative probing: `1` is the serial
    /// search, `0` means one thread per available CPU. The result is
    /// identical at every setting; only wall-clock changes.
    pub threads: usize,
    /// Reuse one persistent CDCL solver across budgets via assumption
    /// probing. Applies only to serial (`threads == 1`) CDCL searches
    /// without a DIMACS dump — speculative probes need per-probe
    /// solvers, DPLL has no assumption interface, and dumps want one
    /// standalone CNF per probe. The probe outcomes, cycle count,
    /// certificate, and decoded program are identical either way.
    pub incremental: bool,
    /// If set, every *consumed* probe's CNF is written here in DIMACS
    /// format (`<label>_k<K>.cnf`). Cancelled speculations are not
    /// dumped, so the file set matches the serial search. A dump
    /// disables incremental probing (see [`SearchParams::incremental`]).
    pub dump: Option<DimacsDump>,
    /// Portfolio width: `0` or `1` disables portfolio probing; `N >= 2`
    /// races N diversified CDCL configurations
    /// ([`SolverConfig::diversified`]) on every consumed probe, each on
    /// its own scoped thread, cancelling the losers the moment the
    /// first verdict lands. Only the winner's SAT/UNSAT verdict is
    /// consumed — the winning budget is still decoded by the canonical
    /// fresh re-solve — so the output is byte-identical to a
    /// non-portfolio search. Ignored under DPLL (the naive engine has
    /// no strategy knobs), and forces fresh per-probe solvers (a
    /// portfolio race cannot share one persistent incremental solver).
    pub portfolio: usize,
    /// External cancellation (deadlines, shutdown). When raised, the
    /// search stops at the next budget boundary — or mid-probe, at the
    /// solver's next checkpoint — and returns a [`SearchError`] with
    /// `cancelled` set. `None` means the search runs to completion.
    pub cancel: Option<CancelToken>,
}

impl Default for SearchParams {
    fn default() -> SearchParams {
        SearchParams {
            solver: SolverChoice::default(),
            max_cycles: 48,
            threads: 1,
            incremental: true,
            dump: None,
            portfolio: 0,
            cancel: None,
        }
    }
}

/// Everything a probe needs, bundled so it can be handed to a scoped
/// thread by copy.
#[derive(Clone, Copy)]
struct ProbeCtx<'a> {
    matched: &'a Matched,
    candidates: &'a Candidates,
    machine: &'a Machine,
    options: &'a EncodeOptions,
    solver: SolverChoice,
    /// Portfolio width (0/1 = off); see [`SearchParams::portfolio`].
    portfolio: usize,
}

/// One lane of a portfolio race, recorded for tracing and the per-config
/// win table in `report e4`.
#[derive(Clone, Copy, Debug)]
struct LaneProbe {
    /// Index into [`SolverConfig::diversified`].
    config: u32,
    /// `Some(satisfiable)` if the lane finished; `None` if it was
    /// cancelled by the winner (or an external deadline).
    outcome: Option<bool>,
    /// Wall-clock milliseconds this lane ran.
    solve_ms: f64,
    /// The lane's own solver counters.
    stats: SolverStats,
}

/// A completed probe: its log entry plus the artifacts needed to decode
/// or dump it.
struct ProbeRun {
    stats: ProbeStats,
    /// The model's true launches when satisfiable. Fresh probes decode
    /// their own model; incremental and portfolio probes leave this
    /// `None` and the winner is decoded by one canonical fresh
    /// re-solve.
    launches: Option<Vec<LaunchCoord>>,
    /// The probe's standalone formula, kept for DIMACS dumps (fresh
    /// probes only).
    cnf: Option<Cnf>,
    /// Per-configuration race records (empty outside portfolio mode).
    lanes: Vec<LaneProbe>,
}

enum ProbeOutcome {
    Done(Box<ProbeRun>),
    /// The cancel flag was raised before the solver finished; the
    /// budget's status is unknown and nothing may be cached.
    Interrupted,
}

fn run_probe(ctx: ProbeCtx<'_>, k: u32, cancel: Option<&CancelToken>) -> ProbeOutcome {
    let encode_start = Instant::now();
    let encoding = encode(ctx.matched, ctx.candidates, ctx.machine, k, ctx.options);
    let encode_ms = encode_start.elapsed().as_secs_f64() * 1e3;
    if ctx.solver == SolverChoice::Cdcl && ctx.portfolio >= 2 {
        // Portfolio race: only the verdict is consumed (the winner is
        // decoded by the canonical fresh re-solve), so the lanes never
        // extract a model.
        return match race_portfolio(&encoding.cnf, ctx.portfolio, cancel) {
            Some(race) => ProbeOutcome::Done(Box::new(ProbeRun {
                stats: ProbeStats {
                    k,
                    vars: encoding.num_vars(),
                    clauses: encoding.num_clauses(),
                    satisfiable: race.satisfiable,
                    solve_ms: race.solve_ms,
                    encode_ms,
                    solver: Some(race.stats),
                    winner: Some(race.winner),
                },
                launches: None,
                cnf: Some(encoding.cnf),
                lanes: race.lanes,
            })),
            None => ProbeOutcome::Interrupted,
        };
    }
    let solve_start = Instant::now();
    let (satisfiable, model, solver_stats) = match ctx.solver {
        SolverChoice::Cdcl => {
            let mut s = encoding.cnf.to_solver();
            if let Some(token) = cancel {
                s.set_interrupt(token.handle());
            }
            match s.solve() {
                SolveResult::Sat => (
                    true,
                    Some(s.model().expect("sat model").to_vec()),
                    Some(s.stats()),
                ),
                SolveResult::Unsat => (false, None, Some(s.stats())),
                SolveResult::Interrupted => return ProbeOutcome::Interrupted,
            }
        }
        SolverChoice::Dpll => {
            let flag = cancel.map(|token| token.handle());
            match dpll::solve_interruptible(
                encoding.cnf.num_vars,
                &encoding.cnf.clauses,
                flag.as_deref(),
            ) {
                dpll::DpllResult::Sat(m) => (true, Some(m), None),
                dpll::DpllResult::Unsat => (false, None, None),
                dpll::DpllResult::Interrupted => return ProbeOutcome::Interrupted,
            }
        }
    };
    let solve_ms = solve_start.elapsed().as_secs_f64() * 1e3;
    let launches = model.map(|m| encoding.true_launches(&m));
    ProbeOutcome::Done(Box::new(ProbeRun {
        stats: ProbeStats {
            k,
            vars: encoding.num_vars(),
            clauses: encoding.num_clauses(),
            satisfiable,
            solve_ms,
            encode_ms,
            solver: solver_stats,
            winner: None,
        },
        launches,
        cnf: Some(encoding.cnf),
        lanes: Vec::new(),
    }))
}

/// The consumed result of a portfolio race.
struct PortfolioRace {
    /// The winning lane's verdict.
    satisfiable: bool,
    /// The winning configuration's index.
    winner: u32,
    /// The winning lane's wall-clock milliseconds.
    solve_ms: f64,
    /// The winning lane's solver counters.
    stats: SolverStats,
    /// Every lane's record, in configuration order.
    lanes: Vec<LaneProbe>,
}

/// Races `width` diversified CDCL configurations on `cnf`, each on its
/// own scoped thread with its own [`CancelToken`]. The first lane to
/// finish claims the race and cancels the rest, which abandon the
/// formula at their next 1024-step checkpoint. Any lane's verdict is
/// correct (the solvers differ only in strategy), so whichever wins,
/// the consumed SAT/UNSAT answer — and therefore the search's output —
/// is the same.
///
/// Returns `None` only when the external `cancel` flag interrupted the
/// race before any lane finished.
fn race_portfolio(cnf: &Cnf, width: usize, cancel: Option<&CancelToken>) -> Option<PortfolioRace> {
    const NO_WINNER: usize = usize::MAX;
    let winner = AtomicUsize::new(NO_WINNER);
    let done = AtomicUsize::new(0);
    let tokens: Vec<CancelToken> = (0..width).map(|_| CancelToken::new()).collect();
    let lanes: Vec<LaneProbe> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|i| {
                let tokens = &tokens;
                let winner = &winner;
                let done = &done;
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut s = cnf.to_solver_with(SolverConfig::diversified(i));
                    s.set_interrupt(tokens[i].handle());
                    let result = s.solve();
                    let solve_ms = start.elapsed().as_secs_f64() * 1e3;
                    let outcome = match result {
                        SolveResult::Sat => Some(true),
                        SolveResult::Unsat => Some(false),
                        SolveResult::Interrupted => None,
                    };
                    if outcome.is_some()
                        && winner
                            .compare_exchange(NO_WINNER, i, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                    {
                        // First verdict in: kill the losing lanes.
                        for (j, token) in tokens.iter().enumerate() {
                            if j != i {
                                token.cancel();
                            }
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                    LaneProbe {
                        config: i as u32,
                        outcome,
                        solve_ms,
                        stats: s.stats(),
                    }
                })
            })
            .collect();
        // The CDCL interrupt checkpoint watches exactly one flag, so an
        // external deadline has to be forwarded into the lane tokens by
        // hand; the caller's thread polls for it while the race runs.
        if let Some(external) = cancel {
            while done.load(Ordering::Relaxed) < width {
                if external.is_cancelled() {
                    for token in &tokens {
                        token.cancel();
                    }
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("portfolio lane panicked"))
            .collect()
    });
    let winner = winner.load(Ordering::Relaxed);
    let lane = *lanes.get(winner)?;
    Some(PortfolioRace {
        satisfiable: lane.outcome.expect("winning lane finished"),
        winner: winner as u32,
        solve_ms: lane.solve_ms,
        stats: lane.stats,
        lanes,
    })
}

/// Which primary outcome keeps a speculative probe on the search path.
#[derive(Clone, Copy)]
enum Keep {
    IfSat,
    IfUnsat,
}

/// The probe scheduler: runs primaries (with optional speculation on
/// the budgets the search would visit next), caches completed
/// speculations, and *consumes* probes strictly in the serial search
/// order — so the probe log and DIMACS dumps are oblivious to
/// parallelism.
struct Scheduler<'a> {
    ctx: ProbeCtx<'a>,
    /// Extra worker threads available for speculation (0 = serial).
    workers: usize,
    dump: Option<&'a DimacsDump>,
    /// External cancellation, threaded into every primary probe so a
    /// deadline can abandon the solver mid-probe.
    cancel: Option<&'a CancelToken>,
    cache: HashMap<u32, ProbeRun>,
    probes: Vec<ProbeStats>,
}

impl<'a> Scheduler<'a> {
    fn new(
        ctx: ProbeCtx<'a>,
        threads: usize,
        dump: Option<&'a DimacsDump>,
        cancel: Option<&'a CancelToken>,
    ) -> Scheduler<'a> {
        Scheduler {
            ctx,
            workers: denali_par::resolve_threads(threads).saturating_sub(1),
            dump,
            cancel,
            cache: HashMap::new(),
            probes: Vec::new(),
        }
    }

    /// Probes `primary`, speculating on `speculative` budgets (each
    /// tagged with the primary outcome that keeps it relevant; losers
    /// are cancelled). Returns the primary's completed run after
    /// logging and (optionally) dumping it.
    fn probe(
        &mut self,
        primary: u32,
        speculative: &[(u32, Keep)],
        tracer: &Tracer,
    ) -> Result<ProbeRun, SearchError> {
        let run = match self.cache.remove(&primary) {
            Some(run) => run,
            None if self.workers == 0 || speculative.is_empty() => {
                match run_probe(self.ctx, primary, self.cancel) {
                    ProbeOutcome::Done(run) => *run,
                    ProbeOutcome::Interrupted => return Err(SearchError::cancelled()),
                }
            }
            None => self.run_speculating(primary, speculative)?,
        };
        self.consume(run, tracer)
    }

    /// Runs `primary` on the caller's thread while speculations run on
    /// scoped threads; cancels losers the moment the primary resolves.
    /// If external cancellation interrupts the primary, every
    /// speculation is cancelled and joined before the error returns.
    fn run_speculating(
        &mut self,
        primary: u32,
        speculative: &[(u32, Keep)],
    ) -> Result<ProbeRun, SearchError> {
        let ctx = self.ctx;
        let cancel = self.cancel;
        let launches: Vec<(u32, Keep)> = speculative
            .iter()
            .filter(|(k, _)| !self.cache.contains_key(k))
            .take(self.workers)
            .copied()
            .collect();
        let (run, completed) = std::thread::scope(|scope| {
            let handles: Vec<_> = launches
                .iter()
                .map(|&(k, keep)| {
                    let token = CancelToken::new();
                    let worker_token = token.clone();
                    let handle = scope.spawn(move || run_probe(ctx, k, Some(&worker_token)));
                    (k, keep, token, handle)
                })
                .collect();
            let run = match run_probe(ctx, primary, cancel) {
                ProbeOutcome::Done(run) => Some(*run),
                ProbeOutcome::Interrupted => None,
            };
            for (_, keep, token, _) in &handles {
                let off_path = match &run {
                    // Cancelled search: nothing is on-path any more.
                    None => true,
                    Some(run) => match keep {
                        Keep::IfSat => !run.stats.satisfiable,
                        Keep::IfUnsat => run.stats.satisfiable,
                    },
                };
                if off_path {
                    token.cancel();
                }
            }
            let completed: Vec<(u32, ProbeOutcome)> = handles
                .into_iter()
                .map(|(k, _, _, handle)| (k, handle.join().expect("speculative probe panicked")))
                .collect();
            (run, completed)
        });
        for (k, outcome) in completed {
            if let ProbeOutcome::Done(done) = outcome {
                self.cache.insert(k, *done);
            }
        }
        run.ok_or_else(SearchError::cancelled)
    }

    /// Logs a probe the serial control flow has reached, writing its
    /// DIMACS dump if requested. A dump failure is a hard error — a
    /// silently missing CNF defeats the point of dumping.
    fn consume(&mut self, run: ProbeRun, tracer: &Tracer) -> Result<ProbeRun, SearchError> {
        if let Some(dump) = self.dump {
            std::fs::create_dir_all(&dump.directory).map_err(|e| {
                SearchError::new(format!(
                    "cannot create DIMACS dump directory {}: {e}",
                    dump.directory.display()
                ))
            })?;
            let path = dump
                .directory
                .join(format!("{}_k{}.cnf", dump.label, run.stats.k));
            let cnf = run.cnf.as_ref().expect("fresh probes keep their CNF");
            std::fs::write(&path, cnf.to_dimacs()).map_err(|e| {
                SearchError::new(format!("cannot write DIMACS dump {}: {e}", path.display()))
            })?;
        }
        self.probes.push(run.stats);
        emit_probe_trace(tracer, &run.stats);
        emit_portfolio_trace(tracer, &run.stats, &run.lanes);
        Ok(run)
    }
}

/// Logs one consumed probe as a retrospective `probe` span (with nested
/// `encode` and `solve` children) plus a `sat.probe` event carrying the
/// full counter set.
///
/// Called only at *consume* time — the moment the serial control flow
/// reaches the probe — never from [`run_probe`], which may execute
/// speculatively on a worker thread. That keeps the record stream
/// identical at every thread count (the determinism contract).
fn emit_probe_trace(tracer: &Tracer, stats: &ProbeStats) {
    if !tracer.is_enabled() {
        return;
    }
    let outcome = if stats.satisfiable { "sat" } else { "unsat" };
    let probe_id = tracer.complete_span(
        "probe",
        None,
        0.0,
        stats.encode_ms + stats.solve_ms,
        vec![field("k", stats.k), field("outcome", outcome)],
    );
    tracer.complete_span(
        "encode",
        probe_id,
        stats.solve_ms,
        stats.encode_ms,
        vec![field("vars", stats.vars), field("clauses", stats.clauses)],
    );
    tracer.complete_span("solve", probe_id, 0.0, stats.solve_ms, Vec::new());
    tracer.event("sat.probe", || {
        let mut fields = vec![
            field("k", stats.k),
            field("outcome", outcome),
            field("vars", stats.vars),
            field("clauses", stats.clauses),
            field("encode_ms", stats.encode_ms),
            field("solve_ms", stats.solve_ms),
        ];
        if let Some(s) = &stats.solver {
            fields.extend([
                field("decisions", s.decisions),
                field("propagations", s.propagations),
                field("conflicts", s.conflicts),
                field("restarts", s.restarts),
                field("learned", s.learned),
                field("solves", s.solves),
                field("carried_learned", s.carried_learned),
                field("carried_activity", s.carried_activity),
            ]);
        }
        if let Some(winner) = stats.winner {
            fields.push(field("winner", winner));
        }
        fields
    });
}

/// Logs a consumed portfolio race: one `sat.probe` event per lane,
/// tagged with its configuration index, plus a `portfolio.win` event
/// naming the winner. Lane records are race-dependent by construction
/// (which lane wins, and how far the losers got before cancellation,
/// varies run to run), so these events are excluded from the
/// normalized-trace determinism contract — unlike everything else in
/// the trace, they describe wall-clock behaviour, not the search.
fn emit_portfolio_trace(tracer: &Tracer, stats: &ProbeStats, lanes: &[LaneProbe]) {
    if !tracer.is_enabled() || lanes.is_empty() {
        return;
    }
    for lane in lanes {
        tracer.event("sat.probe", || {
            vec![
                field("k", stats.k),
                field("config", lane.config),
                field(
                    "outcome",
                    match lane.outcome {
                        Some(true) => "sat",
                        Some(false) => "unsat",
                        None => "cancelled",
                    },
                ),
                field("solve_ms", lane.solve_ms),
                field("decisions", lane.stats.decisions),
                field("propagations", lane.stats.propagations),
                field("conflicts", lane.stats.conflicts),
                field("restarts", lane.stats.restarts),
            ]
        });
    }
    if let Some(winner) = stats.winner {
        tracer.event("portfolio.win", || {
            vec![field("k", stats.k), field("config", winner)]
        });
    }
}

/// One probe engine for the whole search: fresh per-probe solvers
/// (with optional speculation) or the persistent incremental solver.
enum Prober<'a> {
    Fresh(Scheduler<'a>),
    Incremental {
        // Boxed: the live encoding (solver included) dwarfs the fresh
        // scheduler.
        inc: Box<IncrementalEncoding<'a>>,
        probes: Vec<ProbeStats>,
    },
}

impl<'a> Prober<'a> {
    /// Probes `primary`; the speculation hints only apply to the fresh
    /// engine (the incremental solver is strictly serial).
    fn probe(
        &mut self,
        primary: u32,
        speculative: &[(u32, Keep)],
        tracer: &Tracer,
    ) -> Result<ProbeRun, SearchError> {
        match self {
            Prober::Fresh(sched) => sched.probe(primary, speculative, tracer),
            Prober::Incremental { inc, probes } => {
                let p = inc.probe_traced(primary, tracer);
                if p.interrupted {
                    return Err(SearchError::cancelled());
                }
                let stats = ProbeStats {
                    k: primary,
                    vars: p.vars,
                    clauses: p.clauses,
                    satisfiable: p.satisfiable,
                    solve_ms: p.solve_ms,
                    encode_ms: p.encode_ms,
                    solver: Some(p.stats),
                    winner: None,
                };
                probes.push(stats);
                emit_probe_trace(tracer, &stats);
                Ok(ProbeRun {
                    stats,
                    launches: None,
                    cnf: None,
                    lanes: Vec::new(),
                })
            }
        }
    }

    fn probes(&self) -> &[ProbeStats] {
        match self {
            Prober::Fresh(sched) => &sched.probes,
            Prober::Incremental { probes, .. } => probes,
        }
    }

    fn into_probes(self) -> Vec<ProbeStats> {
        match self {
            Prober::Fresh(sched) => sched.probes,
            Prober::Incremental { probes, .. } => probes,
        }
    }
}

/// The next budget of the geometric ascent: doubles, saturating at the
/// cycle ceiling (`max_cycles` may be near `u32::MAX`; plain `k * 2`
/// overflows in debug builds).
fn next_budget(k: u32, max_cycles: u32) -> u32 {
    k.saturating_mul(2).min(max_cycles.max(1))
}

/// Finds the smallest cycle budget with a legal schedule and decodes it.
///
/// # Errors
///
/// Fails if no schedule exists within `params.max_cycles`, if a
/// requested DIMACS dump cannot be written, or on a decoding error
/// (which indicates an internal bug).
pub fn search(
    gma: &Gma,
    matched: &Matched,
    candidates: &Candidates,
    machine: &Machine,
    options: &EncodeOptions,
    params: &SearchParams,
) -> Result<SearchOutcome, SearchError> {
    search_traced(
        gma,
        matched,
        candidates,
        machine,
        options,
        params,
        &Tracer::disabled(),
    )
}

/// [`search`] with structured tracing: ascent/binary/decode spans, one
/// retrospective `probe` span (with `encode`/`solve` children) plus a
/// `sat.probe` event per consumed probe, all emitted in serial search
/// order regardless of speculation.
pub fn search_traced(
    gma: &Gma,
    matched: &Matched,
    candidates: &Candidates,
    machine: &Machine,
    options: &EncodeOptions,
    params: &SearchParams,
    tracer: &Tracer,
) -> Result<SearchOutcome, SearchError> {
    // A trivial case first: no launches needed at all (identity GMA) —
    // nothing to schedule, nothing to probe. No budget was refuted
    // here, so no optimality certificate is claimed.
    if candidates
        .goal_classes
        .iter()
        .all(|&g| candidates.is_available(g))
        && candidates.store_levels.is_empty()
    {
        tracer.event("search.identity", Vec::new);
        let program = extract(gma, matched, candidates, machine, 0, &[])
            .map_err(|e| SearchError::new(e.to_string()))?;
        return Ok(SearchOutcome {
            program,
            cycles: 0,
            refuted_below: false,
            probes: Vec::new(),
        });
    }

    let ctx = ProbeCtx {
        matched,
        candidates,
        machine,
        options,
        solver: params.solver,
        portfolio: params.portfolio,
    };
    let use_incremental = params.incremental
        && params.solver == SolverChoice::Cdcl
        && params.dump.is_none()
        && params.portfolio < 2
        && denali_par::resolve_threads(params.threads) == 1;
    let mut prober = if use_incremental {
        let mut inc = Box::new(IncrementalEncoding::new(
            matched, candidates, machine, options,
        ));
        if let Some(token) = &params.cancel {
            inc.set_interrupt(token.handle());
        }
        Prober::Incremental {
            inc,
            probes: Vec::new(),
        }
    } else {
        Prober::Fresh(Scheduler::new(
            ctx,
            params.threads,
            params.dump.as_ref(),
            params.cancel.as_ref(),
        ))
    };
    let max_cycles = params.max_cycles;

    // Geometric ascent to the first satisfiable budget; the partner
    // probe 2K is only needed if K is UNSAT.
    let ascent = tracer.span("search.ascent");
    let mut k = 1u32;
    let mut max_unsat = 0u32;
    let mut best: ProbeRun;
    loop {
        if params.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            return Err(SearchError::cancelled());
        }
        if k > max_cycles {
            return Err(SearchError::new(format!(
                "no schedule within {max_cycles} cycles"
            )));
        }
        let next = next_budget(k, max_cycles);
        let speculative: &[(u32, Keep)] = if next != k {
            &[(next, Keep::IfUnsat)]
        } else {
            &[]
        };
        let run = prober.probe(k, speculative, tracer)?;
        if run.stats.satisfiable {
            best = run;
            break;
        }
        max_unsat = k;
        if next == k {
            return Err(SearchError::new(format!(
                "no schedule within {max_cycles} cycles"
            )));
        }
        k = next;
    }
    let mut best_k = best.stats.k;
    ascent.finish_fields(vec![
        field("first_sat", best_k),
        field("max_unsat", max_unsat),
    ]);

    // Binary search in (max_unsat, best_k); the partners of each
    // midpoint are the two possible next midpoints.
    let binary = tracer.span_fields(
        "search.binary",
        vec![field("lo", max_unsat), field("hi", best_k)],
    );
    while best_k - max_unsat > 1 {
        if params.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            // A winner exists, but returning it would make the probe
            // log deadline-dependent; the caller degrades instead.
            return Err(SearchError::cancelled());
        }
        let mid = max_unsat + (best_k - max_unsat) / 2;
        let mut speculative = Vec::new();
        let if_sat = max_unsat + (mid - max_unsat) / 2;
        if if_sat > max_unsat {
            speculative.push((if_sat, Keep::IfSat));
        }
        let if_unsat = mid + (best_k - mid) / 2;
        if if_unsat > mid {
            speculative.push((if_unsat, Keep::IfUnsat));
        }
        let run = prober.probe(mid, &speculative, tracer)?;
        if run.stats.satisfiable {
            best = run;
            best_k = mid;
        } else {
            max_unsat = mid;
        }
    }
    binary.finish_fields(vec![field("cycles", best_k)]);

    // The optimality certificate: K-1 was actually refuted, or K == 1
    // and launches are required (zero cycles is vacuously infeasible —
    // the zero-launch case was handled above).
    let refuted_below = best_k == 1
        || prober
            .probes()
            .iter()
            .any(|p| p.k + 1 == best_k && !p.satisfiable);

    // Decode the winner. Fresh probes carry their own model's launches;
    // the incremental engine instead re-solves the winning budget's
    // standalone encoding once — both solvers are deterministic, so
    // this decodes the exact program fresh-solver mode would.
    let decode = tracer.span_fields("search.decode", vec![field("cycles", best_k)]);
    let launches = match best.launches.take() {
        Some(launches) => launches,
        None => {
            let encoding = encode(matched, candidates, machine, best_k, options);
            let mut solver = encoding.cnf.to_solver();
            match solver.solve() {
                SolveResult::Sat => encoding.true_launches(solver.model().expect("sat model")),
                _ => {
                    return Err(SearchError::new(format!(
                        "internal: budget {best_k} satisfiable under assumptions \
                         but unsatisfiable standalone"
                    )))
                }
            }
        }
    };
    let program = extract(gma, matched, candidates, machine, best_k, &launches)
        .map_err(|e| SearchError::new(e.to_string()))?;
    decode.finish_fields(vec![field("launches", launches.len())]);
    Ok(SearchOutcome {
        program,
        cycles: best_k,
        refuted_below,
        probes: prober.into_probes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_budget_doubles_then_clamps() {
        assert_eq!(next_budget(1, 48), 2);
        assert_eq!(next_budget(2, 48), 4);
        assert_eq!(next_budget(32, 48), 48);
        assert_eq!(next_budget(48, 48), 48);
    }

    #[test]
    fn next_budget_survives_huge_ceilings() {
        // Regression: `k * 2` overflowed in debug builds once the
        // ascent passed 2^31 on a near-u32::MAX ceiling.
        assert_eq!(next_budget(1 << 31, u32::MAX), u32::MAX);
        assert_eq!(next_budget(u32::MAX, u32::MAX), u32::MAX);
        assert_eq!(next_budget(3 << 30, u32::MAX - 1), u32::MAX - 1);
        assert_eq!(next_budget(1, 0), 1);
    }
}
