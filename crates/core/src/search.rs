//! The cycle-budget search.
//!
//! §1.3: "Continuing with binary search, we eventually find, for some K,
//! a K-cycle program that computes P, together with a proof that K−1
//! cycles are insufficient: that is, an optimal program". We probe
//! geometrically upward from a structural lower bound until the first
//! satisfiable budget, then binary-search the gap, recording the size
//! and outcome of every SAT problem (the paper reports these sizes for
//! byteswap4 in §8).

use std::fmt;
use std::time::Instant;

use denali_arch::{Machine, Program};
use denali_lang::Gma;
use denali_sat::{dpll, SolveResult};

use crate::encode::{encode, EncodeOptions};
use crate::extract::extract;
use crate::machine_terms::Candidates;
use crate::matcher::Matched;

/// Which SAT engine answers the probes (the paper's point that the
/// solver is swappable: CHAFF vs its predecessors).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolverChoice {
    /// The CDCL solver (CHAFF's stand-in).
    #[default]
    Cdcl,
    /// The naive DPLL solver (the "previous solver").
    Dpll,
}

/// One SAT probe of the search.
#[derive(Clone, Copy, Debug)]
pub struct ProbeStats {
    /// Cycle budget tested.
    pub k: u32,
    /// SAT variables in the encoding.
    pub vars: usize,
    /// CNF clauses in the encoding.
    pub clauses: usize,
    /// Whether a schedule exists within `k` cycles.
    pub satisfiable: bool,
    /// Wall-clock milliseconds in the solver.
    pub solve_ms: f64,
    /// Wall-clock milliseconds generating the constraints.
    pub encode_ms: f64,
}

impl fmt::Display for ProbeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "K={}: {} vars, {} clauses, {} ({:.1} ms solve)",
            self.k,
            self.vars,
            self.clauses,
            if self.satisfiable { "SAT" } else { "UNSAT" },
            self.solve_ms
        )
    }
}

/// The search result: the optimal program found plus the probe log.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The decoded program at the smallest satisfiable budget.
    pub program: Program,
    /// The optimal cycle count.
    pub cycles: u32,
    /// True if `cycles - 1` was refuted (the optimality certificate).
    pub refuted_below: bool,
    /// Every probe performed, in order.
    pub probes: Vec<ProbeStats>,
}

/// Search failure.
#[derive(Clone, Debug)]
pub struct SearchError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SearchError {}

/// Where to dump each probe's CNF in DIMACS format.
#[derive(Clone, Debug)]
pub struct DimacsDump {
    /// Target directory (created if missing).
    pub directory: std::path::PathBuf,
    /// File-name prefix (the GMA name).
    pub label: String,
}

/// Finds the smallest cycle budget with a legal schedule and decodes it.
///
/// # Errors
///
/// Fails if no schedule exists within `max_cycles`, or on a decoding
/// error (which indicates an internal bug).
#[allow(clippy::too_many_arguments)]
pub fn search(
    gma: &Gma,
    matched: &Matched,
    candidates: &Candidates,
    machine: &Machine,
    options: &EncodeOptions,
    solver: SolverChoice,
    max_cycles: u32,
    dump: Option<DimacsDump>,
) -> Result<SearchOutcome, SearchError> {
    let mut probes = Vec::new();
    let probe = |k: u32, probes: &mut Vec<ProbeStats>| -> (bool, Option<Vec<bool>>) {
        let encode_start = Instant::now();
        let encoding = encode(matched, candidates, machine, k, options);
        let encode_ms = encode_start.elapsed().as_secs_f64() * 1e3;
        if let Some(dump) = &dump {
            let _ = std::fs::create_dir_all(&dump.directory);
            let path = dump
                .directory
                .join(format!("{}_k{k}.cnf", dump.label));
            let _ = std::fs::write(path, encoding.cnf.to_dimacs());
        }
        let solve_start = Instant::now();
        let (satisfiable, model) = match solver {
            SolverChoice::Cdcl => {
                let mut s = encoding.cnf.to_solver();
                match s.solve() {
                    SolveResult::Sat => (true, Some(s.model().expect("sat model").to_vec())),
                    SolveResult::Unsat => (false, None),
                }
            }
            SolverChoice::Dpll => match dpll::solve(encoding.cnf.num_vars, &encoding.cnf.clauses)
            {
                dpll::DpllResult::Sat(m) => (true, Some(m)),
                dpll::DpllResult::Unsat => (false, None),
            },
        };
        let solve_ms = solve_start.elapsed().as_secs_f64() * 1e3;
        probes.push(ProbeStats {
            k,
            vars: encoding.num_vars(),
            clauses: encoding.num_clauses(),
            satisfiable,
            solve_ms,
            encode_ms,
        });
        (satisfiable, model)
    };

    // A trivial case first: no launches needed at all (identity GMA).
    if candidates
        .goal_classes
        .iter()
        .all(|&g| candidates.is_available(g))
        && candidates.store_levels.is_empty()
    {
        let encoding = encode(matched, candidates, machine, 1, options);
        let program = extract(gma, matched, candidates, machine, &encoding, &vec![
            false;
            encoding.num_vars()
        ])
        .map_err(|e| SearchError {
            message: e.to_string(),
        })?;
        return Ok(SearchOutcome {
            program,
            cycles: 0,
            refuted_below: true,
            probes,
        });
    }

    // Geometric ascent to the first satisfiable budget.
    let mut k = 1u32;
    let first_sat: (u32, Vec<bool>);
    let mut max_unsat = 0u32;
    loop {
        if k > max_cycles {
            return Err(SearchError {
                message: format!("no schedule within {max_cycles} cycles"),
            });
        }
        let (sat, model) = probe(k, &mut probes);
        if sat {
            first_sat = (k, model.expect("model"));
            break;
        }
        max_unsat = k;
        k = (k * 2).min(max_cycles.max(1));
        if k == max_unsat {
            return Err(SearchError {
                message: format!("no schedule within {max_cycles} cycles"),
            });
        }
    }
    let (mut best_k, mut best_model) = first_sat;

    // Binary search in (max_unsat, best_k).
    while best_k - max_unsat > 1 {
        let mid = max_unsat + (best_k - max_unsat) / 2;
        let (sat, model) = probe(mid, &mut probes);
        if sat {
            best_k = mid;
            best_model = model.expect("model");
        } else {
            max_unsat = mid;
        }
    }

    let encoding = encode(matched, candidates, machine, best_k, options);
    let program = extract(gma, matched, candidates, machine, &encoding, &best_model)
        .map_err(|e| SearchError {
            message: e.to_string(),
        })?;
    Ok(SearchOutcome {
        program,
        cycles: best_k,
        refuted_below: max_unsat + 1 == best_k,
        probes,
    })
}
