//! Content-addressed compilation fingerprints.
//!
//! A fingerprint is a stable 128-bit hex digest over everything that
//! determines a compilation's *output*: the lowered GMAs, the full
//! axiom set, and the output-affecting subset of [`Options`]. Knobs
//! that only change wall-clock or observability — `threads`,
//! `incremental`, `portfolio`, `trace`, `dump_dimacs`,
//! `saturation.delta_match`, and the cancellation token — are
//! deliberately excluded: the
//! pipeline's determinism contract guarantees byte-identical results
//! across all of them, so requests differing only in those knobs may
//! share one cached result.
//!
//! The hash is two independent FNV-1a-64 lanes over a canonical text
//! serialization. It is *not* cryptographic; it keys a trusted local
//! cache, where 128 bits of a well-dispersed hash make accidental
//! collisions negligible.

use denali_axioms::{Axiom, AxiomBody, AxiomPriority};
use denali_lang::Gma;

use crate::facade::Options;
use crate::search::SolverChoice;

/// Two-lane FNV-1a-64 accumulator (128 bits total). The lanes use the
/// standard FNV prime with distinct offset bases, so they disperse the
/// same byte stream independently.
struct Fp {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// Second lane's offset: the standard basis folded with an arbitrary
/// odd constant so the lanes start decorrelated.
const FNV_OFFSET_B: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;

impl Fp {
    fn new() -> Fp {
        Fp {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Writes a labeled field with unambiguous framing (label, `=`,
    /// value, `;`). The labels keep adjacent fields from running
    /// together under concatenation.
    fn field(&mut self, label: &str, value: &str) {
        self.write(label.as_bytes());
        self.write(b"=");
        self.write(value.as_bytes());
        self.write(b";");
    }

    fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.a, self.b)
    }
}

/// Computes the canonical fingerprint for compiling `gmas` under
/// `axioms` with `options`. See the module docs for what is and is not
/// part of the key.
pub fn fingerprint(gmas: &[Gma], axioms: &[Axiom], options: &Options) -> String {
    let mut fp = Fp::new();
    fp.field("v", "1");

    // Output-affecting options. `machine` is identified by name: the
    // constructors are the only way to build one, so the name pins the
    // full description.
    fp.field("machine", options.machine.name());
    let solver = match options.solver {
        SolverChoice::Cdcl => "cdcl",
        SolverChoice::Dpll => "dpll",
    };
    fp.field("solver", solver);
    // The engine determines *which* optimizer answers, so two requests
    // differing only in `engine` must never share a cached result. The
    // stochastic knobs (`stoke.seed`, `stoke.iterations`) are excluded
    // deliberately: they come from process environment, never from a
    // request, so they are fixed for the lifetime of any cache keyed by
    // this fingerprint; deadline-harvested anytime candidates bypass
    // the cache entirely (see the serve crate).
    fp.field("engine", options.engine.as_str());
    fp.field("max_cycles", &options.max_cycles.to_string());
    let load_latency = match options.load_latency {
        Some(l) => l.to_string(),
        None => "default".to_owned(),
    };
    fp.field("load_latency", &load_latency);
    fp.field("miss_latency", &options.miss_latency.to_string());
    fp.field(
        "speculate_loads",
        &options.encode.speculate_loads.to_string(),
    );
    // Saturation budgets shape the e-graph and therefore the output;
    // `threads` and `delta_match` are result-identical knobs and stay
    // out of the key.
    let s = &options.saturation;
    fp.field("sat.max_iterations", &s.max_iterations.to_string());
    fp.field("sat.max_nodes", &s.max_nodes.to_string());
    fp.field(
        "sat.max_instances_per_round",
        &s.max_instances_per_round.to_string(),
    );
    fp.field(
        "sat.max_structural_per_round",
        &s.max_structural_per_round.to_string(),
    );
    fp.field("sat.pow2_facts", &s.pow2_facts.to_string());
    fp.field(
        "sat.max_structural_growth",
        &s.max_structural_growth.to_string(),
    );
    // `max_classes` gates whether a compilation succeeds at all, so it
    // must key the cache even though it never alters a *successful*
    // program.
    fp.field("sat.max_classes", &s.max_classes.to_string());

    // The lowered GMAs. `pipeline_loads` and `extra_axioms` need no
    // separate fields: the former rewrites the GMAs before
    // fingerprinting and the latter lands in `axioms`.
    fp.field("gmas", &gmas.len().to_string());
    for gma in gmas {
        hash_gma(&mut fp, gma);
    }

    fp.field("axioms", &axioms.len().to_string());
    for axiom in axioms {
        hash_axiom(&mut fp, axiom);
    }

    fp.hex()
}

fn hash_gma(fp: &mut Fp, gma: &Gma) {
    fp.field("gma", &gma.name);
    match &gma.guard {
        Some(g) => fp.field("guard", &g.to_string()),
        None => fp.field("guard", "-"),
    }
    for (target, value) in &gma.assigns {
        fp.field("assign", target.as_str());
        fp.field("value", &value.to_string());
    }
    match &gma.mem {
        Some(m) => fp.field("mem", &m.to_string()),
        None => fp.field("mem", "-"),
    }
    for addr in &gma.miss_addrs {
        fp.field("miss", &addr.to_string());
    }
}

fn hash_axiom(fp: &mut Fp, axiom: &Axiom) {
    fp.field("axiom", &axiom.name);
    for var in &axiom.vars {
        fp.field("var", var.as_str());
    }
    for pattern in &axiom.patterns {
        fp.field("pat", &pattern.to_string());
    }
    match &axiom.body {
        AxiomBody::Equal(l, r) => {
            fp.field("eq.l", &l.to_string());
            fp.field("eq.r", &r.to_string());
        }
        AxiomBody::Distinct(l, r) => {
            fp.field("ne.l", &l.to_string());
            fp.field("ne.r", &r.to_string());
        }
        AxiomBody::Clause(lits) => {
            for (positive, l, r) in lits {
                fp.field("lit", if *positive { "+" } else { "-" });
                fp.field("lit.l", &l.to_string());
                fp.field("lit.r", &r.to_string());
            }
        }
    }
    // A side condition's predicate is a function pointer; its
    // description is the stable identity (each built-in condition has a
    // distinct one).
    match &axiom.condition {
        Some(c) => fp.field("cond", c.description),
        None => fp.field("cond", "-"),
    }
    let priority = match axiom.priority {
        AxiomPriority::Defining => "defining",
        AxiomPriority::Structural => "structural",
    };
    fp.field("priority", priority);
}

#[cfg(test)]
mod tests {
    use super::*;
    use denali_lang::{lower_proc, parse_program};

    fn figure2_gmas() -> Vec<Gma> {
        let p = parse_program("(\\procdecl f ((reg6 long)) long (:= (\\res (+ (* reg6 4) 1))))")
            .unwrap();
        lower_proc(&p.procs[0]).unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_hex() {
        let gmas = figure2_gmas();
        let axioms = denali_axioms::standard_axioms();
        let opts = Options::default();
        let a = fingerprint(&gmas, &axioms, &opts);
        let b = fingerprint(&gmas, &axioms, &opts);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn fingerprint_ignores_execution_knobs() {
        let gmas = figure2_gmas();
        let axioms = denali_axioms::standard_axioms();
        let base = Options::default();
        let key = fingerprint(&gmas, &axioms, &base);
        let mut other = base.clone();
        other.threads = 8;
        other.portfolio = 4;
        other.incremental = !base.incremental;
        other.trace = true;
        other.dump_dimacs = Some(std::path::PathBuf::from("/tmp/nowhere"));
        other.saturation.threads = 4;
        other.saturation.delta_match = !base.saturation.delta_match;
        // Stochastic effort knobs are environment-pinned, not
        // request-visible; they stay out of the key.
        other.stoke.seed = base.stoke.seed.wrapping_add(1);
        other.stoke.iterations = base.stoke.iterations + 1;
        other.stoke.auto_iterations = base.stoke.auto_iterations + 1;
        assert_eq!(key, fingerprint(&gmas, &axioms, &other));
    }

    #[test]
    fn fingerprint_tracks_output_affecting_knobs() {
        let gmas = figure2_gmas();
        let axioms = denali_axioms::standard_axioms();
        let base = Options::default();
        let key = fingerprint(&gmas, &axioms, &base);
        let mut cycles = base.clone();
        cycles.max_cycles = 7;
        assert_ne!(key, fingerprint(&gmas, &axioms, &cycles));
        let mut latency = base.clone();
        latency.miss_latency = 3;
        assert_ne!(key, fingerprint(&gmas, &axioms, &latency));
        let mut classes = base.clone();
        classes.saturation.max_classes = 1_000;
        assert_ne!(key, fingerprint(&gmas, &axioms, &classes));
        // The engine selects which optimizer produces the program.
        let mut engine = base.clone();
        engine.engine = crate::engine::EngineChoice::Stochastic;
        assert_ne!(key, fingerprint(&gmas, &axioms, &engine));
        // Dropping an axiom changes the key.
        assert_ne!(key, fingerprint(&gmas, &axioms[1..], &base));
        // A different GMA changes the key.
        assert_ne!(key, fingerprint(&gmas[..0], &axioms, &base));
    }
}
