//! Coverage for the `Denali` façade API surface: procedure selection,
//! error stages, options plumbing, DIMACS dumps, and result accessors.

use denali_core::{CompileError, CompileResult, Denali, Options, Prepared, SolverChoice};

const TWO_PROCS: &str = "
(\\procdecl first ((a long)) long (:= (\\res (+ a 1))))
(\\procdecl second ((a long)) long (:= (\\res (+ (+ a 1) 2))))";

#[test]
fn compile_proc_selects_by_name() {
    let denali = Denali::new(Options::default());
    let program = denali::parse(TWO_PROCS);
    let first = denali.compile_proc(&program, "first").unwrap();
    assert_eq!(first.gmas[0].program.len(), 1);
    let second = denali.compile_proc(&program, "second").unwrap();
    // a+1+2 folds to a+3 via associativity... the matcher finds a+3 as
    // one addq.
    assert_eq!(
        second.gmas[0].cycles,
        1,
        "{}",
        second.gmas[0].program.listing(4)
    );
}

/// Helper namespace to keep the test body readable.
mod denali {
    pub fn parse(source: &str) -> denali_lang::SourceProgram {
        denali_lang::parse_program(source).unwrap()
    }
}

#[test]
fn unknown_procedure_is_a_parse_stage_error() {
    let pipeline = Denali::new(Options::default());
    let program = denali::parse(TWO_PROCS);
    let err = pipeline.compile_proc(&program, "third").unwrap_err();
    assert_eq!(err.stage, "parse");
    assert!(err.to_string().contains("third"));
}

#[test]
fn error_stages_are_reported() {
    let pipeline = Denali::new(Options::default());
    // Syntax error.
    assert_eq!(
        pipeline.compile_source("(procdecl").unwrap_err().stage,
        "parse"
    );
    // Unknown statement -> parse.
    assert_eq!(
        pipeline
            .compile_source("(procdecl f ((a long)) long (nonsense))")
            .unwrap_err()
            .stage,
        "parse"
    );
    // Malformed program axiom -> axiom.
    assert_eq!(
        pipeline
            .compile_source("(axiom (zzz a b))\n(procdecl f ((a long)) long (:= (res a)))")
            .unwrap_err()
            .stage,
        "axiom"
    );
    // Nested loops -> lower.
    assert_eq!(
        pipeline
            .compile_source(
                "(procdecl f ((x long)) long
                   (do (-> (<u x 9) (do (-> (<u x 5) (:= (x (+ x 1))))))))"
            )
            .unwrap_err()
            .stage,
        "lower"
    );
    // Uninterpreted op -> enumerate.
    assert_eq!(
        pipeline
            .compile_source("(procdecl f ((a long)) long (:= (res (mystery a))))")
            .unwrap_err()
            .stage,
        "enumerate"
    );
    // Impossible budget -> search.
    let tiny = Denali::new(Options {
        max_cycles: 1,
        ..Options::default()
    });
    assert_eq!(
        tiny.compile_source("(procdecl f ((a long)) long (:= (res (* a a))))")
            .unwrap_err()
            .stage,
        "search"
    );
}

#[test]
fn dimacs_dump_writes_probe_files() {
    let dir = std::env::temp_dir().join(format!("denali_dimacs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pipeline = Denali::new(Options {
        dump_dimacs: Some(dir.clone()),
        ..Options::default()
    });
    pipeline
        .compile_source("(\\procdecl f ((a long)) long (:= (\\res (+ (+ a 1) (* a 8)))))")
        .unwrap();
    let files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(!files.is_empty());
    assert!(files.iter().all(|f| f.ends_with(".cnf")), "{files:?}");
    // The dumps are valid DIMACS and agree with the internal solver.
    for f in &files {
        let text = std::fs::read_to_string(dir.join(f)).unwrap();
        let cnf = denali_sat::dimacs::parse(&text).unwrap();
        let _ = cnf.to_solver().solve();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn main_accessor_picks_the_largest_gma() {
    let pipeline = Denali::new(Options::default());
    let result = pipeline
        .compile_source(
            "(\\procdecl f ((p long*) (n long*)) long
               (\\var (s long 0)
                 (\\semi
                   (\\do (-> (<u p n)
                     (\\semi (:= (s (+ s (\\deref p)))) (:= (p (+ p 8))))))
                   (:= (\\res s)))))",
        )
        .unwrap();
    assert!(result.gmas.len() >= 2);
    let main = result.main();
    assert!(result
        .gmas
        .iter()
        .all(|g| g.program.len() <= main.program.len()));
}

/// The serve crate shares pipeline configuration across worker threads
/// and moves per-request pipelines into pool jobs, which requires the
/// façade types to be `Send + Sync`. Pinning this at compile time turns
/// an accidental `Rc`/raw-pointer/`Cell` regression deep inside the
/// pipeline into an error here, instead of a cryptic one inside the
/// server's closures.
#[test]
fn facade_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Denali>();
    assert_send_sync::<Options>();
    assert_send_sync::<Prepared>();
    assert_send_sync::<CompileResult>();
    assert_send_sync::<CompileError>();
}

/// The façade split (prepare → fingerprint → compile) must be
/// observationally identical to the one-shot entry point.
#[test]
fn prepare_then_compile_matches_compile_source() {
    let source = r"(\procdecl f ((reg6 long)) long (:= (\res (+ (* reg6 4) 1))))";
    let denali = Denali::new(Options::default());
    let one_shot = denali.compile_source(source).unwrap();
    let prepared = denali.prepare_source(source).unwrap();
    let split = denali.compile_prepared(&prepared).unwrap();
    assert_eq!(one_shot.gmas.len(), split.gmas.len());
    for (a, b) in one_shot.gmas.iter().zip(&split.gmas) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.program.listing(4), b.program.listing(4));
    }
    // And the fingerprint is stable across prepares of the same source.
    assert_eq!(
        denali.fingerprint(&prepared),
        denali.fingerprint(&denali.prepare_source(source).unwrap())
    );
}

#[test]
fn solver_stats_and_times_are_recorded() {
    let pipeline = Denali::new(Options {
        solver: SolverChoice::Cdcl,
        ..Options::default()
    });
    let result = pipeline
        .compile_source("(\\procdecl f ((a long)) long (:= (\\res (* a 4))))")
        .unwrap();
    let compiled = &result.gmas[0];
    assert!(!compiled.probes.is_empty());
    assert!(compiled.match_ms >= 0.0);
    assert!(compiled.search_ms >= 0.0);
    assert!(compiled.solver_ms() <= compiled.search_ms + 1.0);
    assert!(compiled.matcher.nodes > 0);
}
