//! End-to-end property test: random expressions through the whole
//! pipeline, differentially checked against the reference evaluator on
//! random inputs, and cross-checked against the structural validator.

use std::collections::HashMap;

use denali_arch::{validate, Simulator};
use denali_axioms::SaturationLimits;
use denali_core::{Denali, Options};
use denali_lang::{lower_proc, parse_program};
use denali_prng::{forall, Rng};
use denali_term::value::Env;
use denali_term::{Symbol, Term};

/// Random goal expressions over two inputs, mixing arithmetic, bitwise,
/// shift, byte, and compare operations (no memory; memory has its own
/// deterministic tests).
fn random_goal(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => Term::leaf("a"),
            1 => Term::leaf("b"),
            _ => Term::constant(rng.below(256)),
        };
    }
    match rng.below(10) {
        0 => Term::call(
            "add64",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        1 => Term::call(
            "sub64",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        2 => Term::call(
            "and64",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        3 => Term::call(
            "or64",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        4 => Term::call(
            "xor64",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        5 => Term::call(
            "shl64",
            vec![random_goal(rng, depth - 1), Term::constant(rng.below(64))],
        ),
        6 => Term::call(
            "shr64",
            vec![random_goal(rng, depth - 1), Term::constant(rng.below(64))],
        ),
        7 => Term::call(
            "selectb",
            vec![random_goal(rng, depth - 1), Term::constant(rng.below(8))],
        ),
        8 => Term::call(
            "cmpult",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        _ => Term::call(
            "cmpeq",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
    }
}

fn pipeline() -> Denali {
    // Modest budgets keep the property test fast; correctness must hold
    // at any budget.
    Denali::new(Options {
        saturation: SaturationLimits {
            max_iterations: 6,
            max_nodes: 3_000,
            max_structural_per_round: 300,
            max_structural_growth: 800,
            ..SaturationLimits::default()
        },
        ..Options::default()
    })
}

#[test]
fn generated_code_matches_reference() {
    forall("generated_code_matches_reference", 48, |rng| {
        let goal = random_goal(rng, 3);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let source = format!("(procdecl f ((a long) (b long)) long (:= (res {goal})))");
        let denali = pipeline();
        let result = denali.compile_source(&source).expect("pipeline succeeds");
        let compiled = &result.gmas[0];

        // Structural validation (independent of the SAT encoding).
        validate(&compiled.program, &denali.options().machine).expect("valid schedule");

        // Reference evaluation.
        let mut env = Env::new();
        env.set_word("a", a);
        env.set_word("b", b);
        let expected = env.eval_word(&goal).expect("reference evaluates");

        // Simulation of the generated code.
        let sim = Simulator::new(&denali.options().machine);
        let mut inputs = Vec::new();
        for (name, value) in [("a", a), ("b", b)] {
            if compiled.program.input_reg(Symbol::intern(name)).is_some() {
                inputs.push((name, value));
            }
        }
        let outcome = sim
            .run_named(&compiled.program, &inputs, HashMap::new())
            .expect("simulates");
        let res = compiled
            .program
            .output_reg(Symbol::intern("res"))
            .expect("result register");
        assert_eq!(
            outcome.regs[&res],
            expected,
            "goal {} a={:#x} b={:#x}\n{}",
            goal,
            a,
            b,
            compiled.program.listing(4)
        );
    });
}

#[test]
fn denali_is_at_least_as_good_as_the_rewriting_baseline() {
    forall("denali_vs_rewriting_baseline", 48, |rng| {
        let goal = random_goal(rng, 3);
        let source = format!("(procdecl f ((a long) (b long)) long (:= (res {goal})))");
        let program = parse_program(&source).unwrap();
        let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
        let machine = denali_arch::Machine::ev6();
        let Ok(baseline) = denali_baseline::rewrite_compile(&gma, &machine) else {
            return; // baseline has no rewrite for this shape
        };
        let denali = pipeline();
        let result = denali.compile_source(&source).expect("pipeline succeeds");
        assert!(
            result.gmas[0].cycles <= baseline.cycles(),
            "goal {}: denali {} cycles, baseline {}",
            goal,
            result.gmas[0].cycles,
            baseline.cycles()
        );
    });
}
