//! End-to-end property test: random expressions through the whole
//! pipeline, differentially checked against the reference evaluator on
//! random inputs, and cross-checked against the structural validator.

use std::collections::HashMap;

use denali_arch::{validate, Simulator};
use denali_axioms::SaturationLimits;
use denali_core::{Denali, Options};
use denali_lang::{lower_proc, parse_program};
use denali_term::value::Env;
use denali_term::{Symbol, Term};
use proptest::prelude::*;

/// Random goal expressions over two inputs, mixing arithmetic, bitwise,
/// shift, byte, and compare operations (no memory; memory has its own
/// deterministic tests).
fn expr_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        Just(Term::leaf("a")),
        Just(Term::leaf("b")),
        (0u64..256).prop_map(Term::constant),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("add64", vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("sub64", vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("and64", vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("or64", vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("xor64", vec![x, y])),
            (inner.clone(), 0u64..64)
                .prop_map(|(x, n)| Term::call("shl64", vec![x, Term::constant(n)])),
            (inner.clone(), 0u64..64)
                .prop_map(|(x, n)| Term::call("shr64", vec![x, Term::constant(n)])),
            (inner.clone(), 0u64..8)
                .prop_map(|(x, i)| Term::call("selectb", vec![x, Term::constant(i)])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Term::call("cmpult", vec![x, y])),
            (inner.clone(), inner).prop_map(|(x, y)| Term::call("cmpeq", vec![x, y])),
        ]
    })
}

fn pipeline() -> Denali {
    // Modest budgets keep the property test fast; correctness must hold
    // at any budget.
    Denali::new(Options {
        saturation: SaturationLimits {
            max_iterations: 6,
            max_nodes: 3_000,
            max_structural_per_round: 300,
            max_structural_growth: 800,
            ..SaturationLimits::default()
        },
        ..Options::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_code_matches_reference(goal in expr_strategy(), a: u64, b: u64) {
        let source = format!(
            "(procdecl f ((a long) (b long)) long (:= (res {goal})))"
        );
        let denali = pipeline();
        let result = denali.compile_source(&source).expect("pipeline succeeds");
        let compiled = &result.gmas[0];

        // Structural validation (independent of the SAT encoding).
        validate(&compiled.program, &denali.options().machine).expect("valid schedule");

        // Reference evaluation.
        let mut env = Env::new();
        env.set_word("a", a);
        env.set_word("b", b);
        let expected = env.eval_word(&goal).expect("reference evaluates");

        // Simulation of the generated code.
        let sim = Simulator::new(&denali.options().machine);
        let mut inputs = Vec::new();
        for (name, value) in [("a", a), ("b", b)] {
            if compiled.program.input_reg(Symbol::intern(name)).is_some() {
                inputs.push((name, value));
            }
        }
        let outcome = sim
            .run_named(&compiled.program, &inputs, HashMap::new())
            .expect("simulates");
        let res = compiled
            .program
            .output_reg(Symbol::intern("res"))
            .expect("result register");
        prop_assert_eq!(
            outcome.regs[&res],
            expected,
            "goal {} a={:#x} b={:#x}\n{}",
            goal,
            a,
            b,
            compiled.program.listing(4)
        );
    }

    #[test]
    fn denali_is_at_least_as_good_as_the_rewriting_baseline(goal in expr_strategy()) {
        let source = format!(
            "(procdecl f ((a long) (b long)) long (:= (res {goal})))"
        );
        let program = parse_program(&source).unwrap();
        let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
        let machine = denali_arch::Machine::ev6();
        let Ok(baseline) = denali_baseline::rewrite_compile(&gma, &machine) else {
            return Ok(()); // baseline has no rewrite for this shape
        };
        let denali = pipeline();
        let result = denali.compile_source(&source).expect("pipeline succeeds");
        prop_assert!(
            result.gmas[0].cycles <= baseline.cycles(),
            "goal {}: denali {} cycles, baseline {}",
            goal,
            result.gmas[0].cycles,
            baseline.cycles()
        );
    }
}
