//! Regression tests for the speculative cycle-budget search: at every
//! thread count the search must emit byte-identical programs, identical
//! cycle counts, and the exact serial probe log — speculation may only
//! change wall-clock, never results. Also pins the `refuted_below`
//! certificate semantics and the DIMACS-dump error path.

use denali_core::{Denali, Options, SolverChoice};

const BYTESWAP4: &str = "
(\\procdecl byteswap4 ((a long)) long
  (\\var (r long 0)
    (\\semi
      (:= ((\\selectb r 0) (\\selectb a 3)))
      (:= ((\\selectb r 1) (\\selectb a 2)))
      (:= ((\\selectb r 2) (\\selectb a 1)))
      (:= ((\\selectb r 3) (\\selectb a 0)))
      (:= (\\res r)))))";

const FIGURE2: &str = "(\\procdecl f ((reg6 long)) long (:= (\\res (+ (* reg6 4) 1))))";

/// The comparable footprint of one compilation: everything except
/// wall-clock timings — cycles, certificate, listing, probe log.
type Snapshot = (u32, bool, String, Vec<(u32, usize, usize, bool)>);

fn snapshot(denali: &Denali, source: &str) -> Snapshot {
    let result = denali.compile_source(source).expect("compiles");
    let compiled = &result.gmas[0];
    (
        compiled.cycles,
        compiled.refuted_below,
        compiled.program.listing(4),
        compiled
            .probes
            .iter()
            .map(|p| (p.k, p.vars, p.clauses, p.satisfiable))
            .collect(),
    )
}

#[test]
fn search_is_identical_at_every_thread_count() {
    // Pin fresh-solver probes: this snapshot compares per-probe formula
    // sizes, and incremental probes (serial only) report the live
    // solver's cumulative sizes instead. The probe *outcomes* are
    // compared against incremental mode in `incremental_search.rs`.
    let fresh = |threads| Options {
        threads,
        incremental: false,
        ..Options::default()
    };
    let serial = snapshot(&Denali::new(fresh(1)), BYTESWAP4);
    assert_eq!(serial.0, 5, "byteswap4 is a 5-cycle program");
    assert!(serial.1, "4 cycles must be refuted");
    for threads in [2, 3, 4, 8] {
        let speculative = snapshot(&Denali::new(fresh(threads)), BYTESWAP4);
        assert_eq!(serial, speculative, "threads={threads}");
    }
}

#[test]
fn zero_threads_means_auto_and_stays_deterministic() {
    let fresh = |threads| Options {
        threads,
        incremental: false,
        ..Options::default()
    };
    let serial = snapshot(&Denali::new(fresh(1)), FIGURE2);
    let auto = snapshot(&Denali::new(fresh(0)), FIGURE2);
    assert_eq!(serial, auto);
}

#[test]
fn speculative_dpll_agrees_with_serial_dpll() {
    // DPLL probes cannot be interrupted; losing speculations run to
    // completion but their answers must never leak into the result.
    let opts = |threads| Options {
        solver: SolverChoice::Dpll,
        threads,
        ..Options::default()
    };
    let serial = snapshot(&Denali::new(opts(1)), FIGURE2);
    let speculative = snapshot(&Denali::new(opts(4)), FIGURE2);
    assert_eq!(serial, speculative);
}

#[test]
fn identity_claims_no_refutation_certificate() {
    // The zero-launch path performs no UNSAT probe, so it must not
    // claim that "cycles - 1" was refuted.
    let denali = Denali::new(Options::default());
    let result = denali
        .compile_source("(\\procdecl id ((a long)) long (:= (\\res a)))")
        .unwrap();
    let compiled = &result.gmas[0];
    assert_eq!(compiled.cycles, 0);
    assert!(compiled.probes.is_empty());
    assert!(!compiled.refuted_below);
}

#[test]
fn one_cycle_result_is_vacuously_refuted() {
    // figure2 needs a launch, so zero cycles is infeasible without any
    // probe: the certificate holds even though the first probe is SAT.
    let denali = Denali::new(Options::default());
    let result = denali.compile_source(FIGURE2).unwrap();
    let compiled = &result.gmas[0];
    assert_eq!(compiled.cycles, 1);
    assert!(compiled.refuted_below);
    assert!(compiled.probes.iter().all(|p| p.satisfiable));
}

#[test]
fn unsat_neighbor_backs_the_certificate() {
    // byteswap4's certificate must rest on an actual UNSAT probe at
    // cycles - 1, not on bookkeeping.
    let denali = Denali::new(Options::default());
    let result = denali.compile_source(BYTESWAP4).unwrap();
    let compiled = &result.gmas[0];
    assert!(compiled.refuted_below);
    assert!(compiled
        .probes
        .iter()
        .any(|p| p.k + 1 == compiled.cycles && !p.satisfiable));
}

#[test]
fn cdcl_probes_surface_solver_stats() {
    let denali = Denali::new(Options::default());
    let result = denali.compile_source(BYTESWAP4).unwrap();
    let compiled = &result.gmas[0];
    assert!(!compiled.probes.is_empty());
    for probe in &compiled.probes {
        let stats = probe.solver.expect("CDCL probes carry solver stats");
        assert_eq!(stats.vars as usize, probe.vars);
    }
}

#[test]
fn unwritable_dump_directory_is_a_hard_error() {
    // Point the dump "directory" underneath a regular file: creating
    // it must fail, and the search must report that instead of
    // silently skipping the dump.
    let base = std::env::temp_dir().join("denali_dump_blocker");
    std::fs::write(&base, b"not a directory").unwrap();
    let denali = Denali::new(Options {
        dump_dimacs: Some(base.join("sub")),
        ..Options::default()
    });
    let err = denali
        .compile_source(FIGURE2)
        .expect_err("dump into a non-directory must fail");
    assert_eq!(err.stage, "search");
    assert!(
        err.message.contains("DIMACS"),
        "error should name the dump: {}",
        err.message
    );
    let _ = std::fs::remove_file(&base);
}

#[test]
fn dump_writes_one_cnf_per_consumed_probe() {
    let dir = std::env::temp_dir().join("denali_dump_ok_test");
    let _ = std::fs::remove_dir_all(&dir);
    let denali = Denali::new(Options {
        dump_dimacs: Some(dir.clone()),
        ..Options::default()
    });
    let result = denali.compile_source(BYTESWAP4).unwrap();
    let compiled = &result.gmas[0];
    let mut dumped: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    dumped.sort();
    let mut expected: Vec<String> = compiled
        .probes
        .iter()
        .map(|p| format!("{}_k{}.cnf", compiled.gma.name, p.k))
        .collect();
    expected.sort();
    assert_eq!(dumped, expected);
    let _ = std::fs::remove_dir_all(&dir);
}
