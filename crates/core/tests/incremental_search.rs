//! Incremental-probing equivalence tests: assumption-based probing on
//! one persistent solver must report the same probe outcomes, cycle
//! count, certificate, and byte-identical program as fresh per-probe
//! solvers — reuse may only change wall-clock and the size/reuse
//! counters. Also pins the solver-identity invariant (one `Solver` for
//! the whole search) and the huge-`max_cycles` ascent regression.

use denali_axioms::SaturationLimits;
use denali_core::{Denali, Options};
use denali_prng::{forall, Rng};
use denali_term::Term;

const BYTESWAP4: &str = "
(\\procdecl byteswap4 ((a long)) long
  (\\var (r long 0)
    (\\semi
      (:= ((\\selectb r 0) (\\selectb a 3)))
      (:= ((\\selectb r 1) (\\selectb a 2)))
      (:= ((\\selectb r 2) (\\selectb a 1)))
      (:= ((\\selectb r 3) (\\selectb a 0)))
      (:= (\\res r)))))";

fn options(incremental: bool) -> Options {
    // Pin `threads: 1` and `portfolio: 0` explicitly (the defaults honor
    // `DENALI_THREADS`/`DENALI_PORTFOLIO`, and incremental probing is
    // serial single-solver only — either knob silently forces fresh
    // mode, which would hollow out the incremental-vs-fresh contrast
    // these tests exist to pin).
    Options {
        threads: 1,
        portfolio: 0,
        incremental,
        saturation: SaturationLimits {
            max_iterations: 6,
            max_nodes: 3_000,
            max_structural_per_round: 300,
            max_structural_growth: 800,
            ..SaturationLimits::default()
        },
        ..Options::default()
    }
}

/// Everything the two probing strategies must agree on: cycles,
/// certificate, listing, and the (budget, outcome) probe log. Formula
/// sizes are deliberately excluded — incremental probes report the live
/// solver's cumulative size.
type Footprint = (u32, bool, String, Vec<(u32, bool)>);

fn footprint(source: &str, incremental: bool) -> Footprint {
    let result = Denali::new(options(incremental))
        .compile_source(source)
        .expect("pipeline succeeds");
    let compiled = &result.gmas[0];
    (
        compiled.cycles,
        compiled.refuted_below,
        compiled.program.listing(4),
        compiled
            .probes
            .iter()
            .map(|p| (p.k, p.satisfiable))
            .collect(),
    )
}

/// Random goal expressions over two inputs (the same shape as the
/// end-to-end property test, minus memory).
fn random_goal(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => Term::leaf("a"),
            1 => Term::leaf("b"),
            _ => Term::constant(rng.below(256)),
        };
    }
    let args = |rng: &mut Rng| vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)];
    match rng.below(8) {
        0 => Term::call("add64", args(rng)),
        1 => Term::call("sub64", args(rng)),
        2 => Term::call("and64", args(rng)),
        3 => Term::call("or64", args(rng)),
        4 => Term::call("xor64", args(rng)),
        5 => Term::call(
            "shl64",
            vec![random_goal(rng, depth - 1), Term::constant(rng.below(64))],
        ),
        6 => Term::call(
            "selectb",
            vec![random_goal(rng, depth - 1), Term::constant(rng.below(8))],
        ),
        _ => Term::call("cmpult", args(rng)),
    }
}

#[test]
fn incremental_probing_agrees_with_fresh_solvers() {
    forall("incremental_probing_agrees_with_fresh_solvers", 24, |rng| {
        let goal = random_goal(rng, 3);
        let source = format!("(procdecl f ((a long) (b long)) long (:= (res {goal})))");
        let incremental = footprint(&source, true);
        let fresh = footprint(&source, false);
        assert_eq!(incremental, fresh, "goal {goal}");
    });
}

#[test]
fn incremental_probing_agrees_on_byteswap4() {
    // The deterministic multi-probe workhorse: a full up-then-down
    // ascent (SAT and UNSAT probes in both phases).
    let incremental = footprint(BYTESWAP4, true);
    let fresh = footprint(BYTESWAP4, false);
    assert_eq!(incremental.0, 5, "byteswap4 is a 5-cycle program");
    assert_eq!(incremental, fresh);
}

#[test]
fn incremental_probes_share_one_solver() {
    // Every probe after the first must land on the same live solver:
    // the per-solver `solves` gauge counts straight up, and once the
    // solver has learned anything, later probes carry it over.
    let result = Denali::new(options(true))
        .compile_source(BYTESWAP4)
        .expect("pipeline succeeds");
    let compiled = &result.gmas[0];
    assert!(compiled.probes.len() >= 3, "byteswap4 needs several probes");
    let mut learned_so_far = 0;
    for (i, probe) in compiled.probes.iter().enumerate() {
        let stats = probe.solver.expect("CDCL probes carry solver stats");
        assert_eq!(
            stats.solves,
            (i + 1) as u64,
            "probe {i} ran on a different solver"
        );
        assert_eq!(
            stats.carried_learned, learned_so_far,
            "probe {i} should inherit exactly the clauses learned before it"
        );
        learned_so_far = stats.learned;
        // Cumulative live-solver sizes never shrink.
        assert_eq!(stats.vars as usize, probe.vars);
        if i > 0 {
            assert!(probe.vars >= compiled.probes[i - 1].vars);
            assert!(probe.clauses >= compiled.probes[i - 1].clauses);
        }
    }
    assert!(
        compiled.carried_clauses() > 0,
        "refuting 4 cycles must learn clauses that later probes reuse"
    );

    // Fresh mode by contrast starts a new solver per probe.
    let fresh = Denali::new(options(false))
        .compile_source(BYTESWAP4)
        .expect("pipeline succeeds");
    assert_eq!(fresh.gmas[0].carried_clauses(), 0);
    for probe in &fresh.gmas[0].probes {
        assert_eq!(probe.solver.expect("CDCL stats").solves, 1);
    }
}

#[test]
fn huge_cycle_ceiling_does_not_overflow_the_ascent() {
    // Regression: the doubling ascent used `k * 2`, which overflows in
    // debug builds once the budget passes 2^31. A ceiling of u32::MAX
    // must behave exactly like the default.
    let result = Denali::new(Options {
        max_cycles: u32::MAX,
        ..options(true)
    })
    .compile_source(BYTESWAP4)
    .expect("pipeline succeeds");
    assert_eq!(result.gmas[0].cycles, 5);
    assert!(result.gmas[0].refuted_below);
}
