//! Adversarial-input hardening: `compile_source` must return a
//! `CompileError` — never panic, hang, or abort — on arbitrarily
//! mutated, truncated, or garbage source text. The serve crate feeds
//! untrusted request bodies straight into this entry point, so any
//! panic path here is a remote crash.
//!
//! Failures replay with `DENALI_PROP_SEED=<seed>` (printed on failure).

use denali_axioms::SaturationLimits;
use denali_core::{Denali, Options};
use denali_prng::{forall, Rng};

/// Valid seeds for mutation — near-misses are far better at finding
/// panic paths than uniformly random bytes, which parsing rejects
/// immediately.
const CORPUS: &[&str] = &[
    "(\\procdecl f ((reg6 long)) long (:= (\\res (+ (* reg6 4) 1))))",
    "(\\procdecl g ((a long) (b long)) long (:= (\\res (& (<< a 2) b))))",
    "(\\procdecl h ((p long*)) long (:= (\\res (\\deref p))))",
    "(\\procdecl s ((p long*) (n long)) long
       (\\var (acc long 0)
         (\\do (\\unroll 2) (-> (<u acc n)
           (\\semi (:= (acc (+ acc (\\deref p)))) (:= (p (+ p 8))))))))",
    "(\\axiom (\\forall (x) (= (+ x 0) x)))
     (\\procdecl id ((x long)) long (:= (\\res (+ x 0))))",
];

/// Characters the mutator splices in: syntax we actually use, plus a
/// few classic troublemakers (NUL, high Unicode, backslash).
const SPLICE: &[&str] = &[
    "(",
    ")",
    "\\",
    ";",
    ":=",
    "0",
    "9999999999999999999999",
    "-1",
    "long",
    "\\res",
    "\\deref",
    "\\procdecl",
    "\\do",
    "\\unroll",
    "\u{0}",
    "\u{10FFFF}",
    "\n",
    " ",
];

fn mutate(rng: &mut Rng, source: &str) -> String {
    let mut text = source.to_owned();
    // 1–4 stacked mutations: truncate, splice, delete, duplicate.
    for _ in 0..rng.range(1, 5) {
        match rng.below(4) {
            0 => {
                // Truncate at a random char boundary.
                let cut = rng.below_usize(text.len() + 1);
                let cut = (0..=cut).rev().find(|&i| text.is_char_boundary(i)).unwrap();
                text.truncate(cut);
            }
            1 => {
                // Splice a token at a random char boundary.
                let at = rng.below_usize(text.len() + 1);
                let at = (0..=at).rev().find(|&i| text.is_char_boundary(i)).unwrap();
                let token = *rng.choose(SPLICE);
                text.insert_str(at, token);
            }
            2 => {
                // Delete a random char.
                if let Some((at, c)) = text
                    .char_indices()
                    .nth(rng.below_usize(text.chars().count().max(1)))
                {
                    text.replace_range(at..at + c.len_utf8(), "");
                }
            }
            _ => {
                // Duplicate a random slice (grows nesting depth fast).
                if !text.is_empty() {
                    let a = rng.below_usize(text.len());
                    let b = rng.below_usize(text.len());
                    let (lo, hi) = (a.min(b), a.max(b));
                    let lo = (0..=lo).rev().find(|&i| text.is_char_boundary(i)).unwrap();
                    let hi = (lo..=hi).rev().find(|&i| text.is_char_boundary(i)).unwrap();
                    let slice = text[lo..hi].to_owned();
                    text.insert_str(hi, &slice);
                }
            }
        }
    }
    text
}

/// Tiny budgets so the (rare) still-valid mutants compile in
/// milliseconds instead of dominating the test.
fn tiny_denali() -> Denali {
    Denali::new(Options {
        max_cycles: 4,
        saturation: SaturationLimits {
            max_iterations: 2,
            max_nodes: 400,
            max_instances_per_round: 100,
            max_structural_per_round: 20,
            max_structural_growth: 100,
            ..SaturationLimits::default()
        },
        ..Options::default()
    })
}

#[test]
fn mutated_sources_never_panic() {
    let denali = tiny_denali();
    forall("compile-mutated-sources", 400, |rng| {
        let base = *rng.choose(CORPUS);
        let source = mutate(rng, base);
        // Ok or Err are both acceptable; a panic fails the property.
        let _ = denali.compile_source(&source);
    });
}

#[test]
fn garbage_bytes_never_panic() {
    let denali = tiny_denali();
    forall("compile-garbage-bytes", 300, |rng| {
        let len = rng.below_usize(200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let _ = denali.compile_source(&source);
    });
}

#[test]
fn deep_nesting_is_an_error_not_an_abort() {
    let denali = tiny_denali();
    for source in [
        "(".repeat(100_000),
        format!("{}x{}", "(".repeat(50_000), ")".repeat(50_000)),
        format!(
            "(\\procdecl f ((x long)) long (:= (\\res {}x{})))",
            "(+ 1 ".repeat(5_000),
            ")".repeat(5_000)
        ),
    ] {
        let err = denali.compile_source(&source).unwrap_err();
        assert_eq!(err.stage, "parse");
    }
}

#[test]
fn pathological_unroll_is_an_error_not_a_hang() {
    let denali = tiny_denali();
    let err = denali
        .compile_source(
            "(\\procdecl f ((s long)) long
               (\\do (\\unroll 99999999) (-> (<u s 100) (:= (s (+ s 1))))))",
        )
        .unwrap_err();
    assert_eq!(err.stage, "parse");
}
