//! Tracing must *observe* the pipeline, never perturb it.
//!
//! Two contracts are pinned here:
//!
//! 1. **No perturbation** — the compiled program, cycle count,
//!    certificate, and probe log are byte-identical with tracing on and
//!    off, at every thread count and in both probe engines.
//! 2. **Determinism** — with tracing on, the record stream for a given
//!    input is identical across runs and across thread counts, modulo
//!    timestamps (compared via [`denali_trace::normalized`]).
//!
//! Every option that reads an environment variable in
//! `Options::default()` (threads, incremental, delta matching, trace)
//! is pinned explicitly, so these tests mean the same thing on every
//! CI leg.

use denali_core::{CompileResult, Denali, Options};
use denali_trace::{jsonl, normalized, Record};

const FIGURE2: &str = "(\\procdecl f ((reg6 long)) long (:= (\\res (+ (* reg6 4) 1))))";
/// mulq latency 7 then an add: 8 cycles, so the search runs a full
/// geometric ascent (1, 2, 4, 8) plus binary refinement — several
/// probes, speculation opportunities, and incremental horizon growth.
const MULTI_PROBE: &str = "(\\procdecl f ((a long)) long (:= (\\res (+ (* a a) 1))))";

fn pinned(threads: usize, incremental: bool, trace: bool) -> Options {
    // `portfolio` is pinned off: which lane wins a portfolio race is
    // race-dependent, and its per-lane `sat.probe` / `portfolio.win`
    // events are documented as excluded from trace determinism.
    let mut options = Options {
        threads,
        incremental,
        trace,
        portfolio: 0,
        ..Options::default()
    };
    options.saturation.threads = 1;
    options.saturation.delta_match = true;
    options
}

/// Everything user-visible about a compilation, as one string.
fn fingerprint(result: &CompileResult) -> String {
    let mut out = String::new();
    for g in &result.gmas {
        out.push_str(&format!(
            "{}: cycles={} refuted={}\n",
            g.gma.name, g.cycles, g.refuted_below
        ));
        out.push_str(&g.program.listing(4));
        for p in &g.probes {
            out.push_str(&format!(
                "k={} sat={} vars={} clauses={}\n",
                p.k, p.satisfiable, p.vars, p.clauses
            ));
        }
    }
    out
}

#[test]
fn tracing_on_off_is_byte_identical() {
    for threads in [1usize, 4] {
        for incremental in [true, false] {
            let off = Denali::new(pinned(threads, incremental, false))
                .compile_source(MULTI_PROBE)
                .unwrap();
            let traced = Denali::new(pinned(threads, incremental, true));
            let on = traced.compile_source(MULTI_PROBE).unwrap();
            assert!(traced.tracer().is_enabled());
            assert!(
                !traced.tracer().records().is_empty(),
                "enabled tracer collected nothing"
            );
            assert_eq!(
                fingerprint(&off),
                fingerprint(&on),
                "tracing perturbed the result at threads={threads} incremental={incremental}"
            );
        }
    }
}

#[test]
fn trace_is_identical_across_runs() {
    let run = || -> Vec<Record> {
        let denali = Denali::new(pinned(1, true, true));
        denali.compile_source(MULTI_PROBE).unwrap();
        normalized(&denali.tracer().records())
    };
    assert_eq!(run(), run(), "same input, different trace");
}

#[test]
fn trace_is_identical_across_thread_counts() {
    // Incremental probing only engages serially and reports cumulative
    // formula sizes, so it is pinned off for the cross-thread diff.
    let run = |threads: usize| -> Vec<Record> {
        let denali = Denali::new(pinned(threads, false, true));
        denali.compile_source(MULTI_PROBE).unwrap();
        normalized(&denali.tracer().records())
    };
    assert_eq!(run(1), run(4), "thread count leaked into the trace");
}

#[test]
fn figure2_trace_matches_schema_golden() {
    let denali = Denali::new(pinned(1, true, true));
    denali.compile_source(FIGURE2).unwrap();
    let records = normalized(&denali.tracer().records());
    // The span/event vocabulary documented in docs/TRACING.md.
    for name in [
        "gma",
        "match",
        "match.goals",
        "saturate.phase",
        "saturate.round",
        "egraph.stats",
        "ematch.chunk",
        "ematch.axiom",
        "enumerate",
        "search",
        "search.ascent",
        "search.decode",
        "encode.grow",
        "probe",
        "encode",
        "solve",
        "sat.probe",
    ] {
        assert!(
            records.iter().any(|r| r.name() == Some(name)),
            "trace is missing a {name} record"
        );
    }

    let text = jsonl::to_string(&[], &records);
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/figure2_trace.jsonl");
    if std::env::var_os("DENALI_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing; regenerate with DENALI_REGEN_GOLDEN=1");
    assert_eq!(
        text, golden,
        "normalized figure2 trace drifted from the golden schema; \
         if the change is intentional, regenerate with DENALI_REGEN_GOLDEN=1 \
         and update docs/TRACING.md"
    );
}
