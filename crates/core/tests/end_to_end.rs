//! End-to-end pipeline tests: source → GMA → E-graph → SAT → assembly,
//! differentially checked against the reference semantics by simulation.

use std::collections::HashMap;

use denali_arch::{validate, Simulator};
use denali_core::{Denali, Options};
use denali_term::value::Env;
use denali_term::Symbol;

/// Runs a compiled single-GMA program on `inputs` and checks every
/// output register against the GMA's reference evaluation.
fn check_against_reference(
    denali: &Denali,
    source: &str,
    input_values: &[(&str, u64)],
    memory: HashMap<u64, u64>,
) -> denali_core::CompileResult {
    let result = denali.compile_source(source).expect("compiles");
    for compiled in &result.gmas {
        let program = &compiled.program;
        validate(program, &denali.options().machine).expect("validates");

        // Reference evaluation.
        let mut env = Env::new();
        for &(name, value) in input_values {
            env.set_word(name, value);
        }
        env.set_mem("M", memory.clone());
        let expected = compiled.gma.evaluate(&env).expect("reference evaluates");

        // Simulation.
        let sim = Simulator::new(&denali.options().machine);
        let needed: Vec<(&str, u64)> = input_values
            .iter()
            .copied()
            .filter(|(name, _)| program.input_reg(Symbol::intern(name)).is_some())
            .collect();
        let outcome = sim
            .run_named(program, &needed, memory.clone())
            .expect("simulates");

        for (name, want) in &expected.assigns {
            let reg = program
                .output_reg(*name)
                .unwrap_or_else(|| panic!("no output register for {name}"));
            let got = outcome.regs[&reg];
            assert_eq!(
                got,
                *want,
                "{}: output {name} mismatch (got {got:#x}, want {want:#x})\n{}",
                compiled.gma.name,
                program.listing(4)
            );
        }
        if let Some(guard) = expected.guard {
            let reg = program
                .output_reg(Symbol::intern("guard"))
                .expect("guard register");
            assert_eq!(outcome.regs[&reg], guard, "guard mismatch");
        }
        if let Some(expected_memory) = &expected.memory {
            for (addr, want) in expected_memory {
                let got = outcome.memory.get(addr).copied().unwrap_or(0);
                assert_eq!(
                    got,
                    *want,
                    "memory[{addr:#x}] mismatch\n{}",
                    program.listing(4)
                );
            }
        }
    }
    result
}

const BYTESWAP4: &str = "
(\\procdecl byteswap4 ((a long)) long
  (\\var (r long 0)
    (\\semi
      (:= ((\\selectb r 0) (\\selectb a 3)))
      (:= ((\\selectb r 1) (\\selectb a 2)))
      (:= ((\\selectb r 2) (\\selectb a 1)))
      (:= ((\\selectb r 3) (\\selectb a 0)))
      (:= (\\res r)))))";

#[test]
fn figure2_compiles_to_one_s4addq() {
    let denali = Denali::new(Options::default());
    let result = check_against_reference(
        &denali,
        "(\\procdecl f ((reg6 long)) long (:= (\\res (+ (* reg6 4) 1))))",
        &[("reg6", 10)],
        HashMap::new(),
    );
    let compiled = &result.gmas[0];
    assert_eq!(compiled.cycles, 1);
    assert!(compiled.refuted_below);
    assert_eq!(compiled.program.len(), 1);
    assert_eq!(compiled.program.instrs[0].op.as_str(), "s4addq");
}

#[test]
fn byteswap4_is_five_cycles_and_correct() {
    let denali = Denali::new(Options::default());
    let result =
        check_against_reference(&denali, BYTESWAP4, &[("a", 0x1122_3344u64)], HashMap::new());
    let compiled = &result.gmas[0];
    // The paper's §8: a 5-cycle EV6 program, optimal to the authors'
    // knowledge; our machine model reproduces the same budget.
    assert_eq!(compiled.cycles, 5, "\n{}", compiled.program.listing(4));
    assert!(compiled.refuted_below, "4 cycles must be refuted");

    // Check correctness on more inputs.
    for a in [0u64, u64::MAX, 0xdead_beef, 0x0102_0304_0506_0708] {
        let mut env = Env::new();
        env.set_word("a", a);
        let expected = compiled.gma.evaluate(&env).unwrap();
        let sim = Simulator::new(&denali.options().machine);
        let outcome = sim
            .run_named(&compiled.program, &[("a", a)], HashMap::new())
            .unwrap();
        let reg = compiled.program.output_reg(Symbol::intern("res")).unwrap();
        assert_eq!(outcome.regs[&reg], expected.assigns[0].1, "a = {a:#x}");
    }
}

#[test]
fn identity_is_zero_cycles() {
    let denali = Denali::new(Options::default());
    let result = denali
        .compile_source("(\\procdecl id ((a long)) long (:= (\\res a)))")
        .unwrap();
    let compiled = &result.gmas[0];
    assert_eq!(compiled.cycles, 0);
    assert!(compiled.program.is_empty());
    // res maps to the input register directly.
    assert_eq!(
        compiled.program.output_reg(Symbol::intern("res")),
        compiled.program.input_reg(Symbol::intern("a"))
    );
}

#[test]
fn memory_copy_element_loads_and_stores() {
    // *p := *q, with p and q provably distinct? They are not, but loads
    // precede stores, so the schedule is still legal.
    let denali = Denali::new(Options::default());
    let memory = HashMap::from([(200, 77u64)]);
    let result = check_against_reference(
        &denali,
        "(\\procdecl copy1 ((p long*) (q long*)) long
           (\\semi
             (:= ((\\deref p) (\\deref q)))
             (:= (\\res 0))))",
        &[("p", 100), ("q", 200)],
        memory,
    );
    let compiled = &result.gmas[0];
    // ldq (3 cycles) then stq: 4 cycles, plus the ldiq for res... all
    // parallel. Expect exactly 4 cycles.
    assert_eq!(compiled.cycles, 4, "\n{}", compiled.program.listing(4));
}

#[test]
fn guarded_pointer_bump_compiles() {
    let denali = Denali::new(Options::default());
    let result = check_against_reference(
        &denali,
        "(\\procdecl bump ((p long*) (r long*)) long
           (\\do (-> (<u p r) (:= (p (+ p 8))))))",
        &[("p", 64), ("r", 1024)],
        HashMap::new(),
    );
    let compiled = &result.gmas[0];
    // Guard (cmpult) and bump (addq literal) are independent: 1 cycle.
    assert_eq!(compiled.cycles, 1, "\n{}", compiled.program.listing(4));
}

#[test]
fn program_axioms_drive_codegen() {
    // The checksum-style carry: needs the program axiom to become
    // machine-computable.
    let source = "
(\\opdecl carry (long long) long)
(\\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\\cmpult (\\add64 a b) a))))
(\\procdecl add_with_carry ((a long) (b long)) long
  (:= (\\res (\\add64 (\\add64 a b) (carry a b)))))";
    let denali = Denali::new(Options::default());
    let result = denali.compile_source(source).unwrap();
    let compiled = &result.gmas[0];
    // add64(a,b) is shared: addq; carry = cmpult(sum, a); final addq.
    // Critical path 3 cycles.
    assert_eq!(compiled.cycles, 3, "\n{}", compiled.program.listing(4));

    // Differential check with the carry semantics supplied.
    let sim = Simulator::new(&denali.options().machine);
    for (a, b) in [(5u64, 7u64), (u64::MAX, 1), (u64::MAX, u64::MAX)] {
        let outcome = sim
            .run_named(&compiled.program, &[("a", a), ("b", b)], HashMap::new())
            .unwrap();
        let reg = compiled.program.output_reg(Symbol::intern("res")).unwrap();
        let sum = a.wrapping_add(b);
        let expected = sum.wrapping_add(u64::from(sum < a));
        assert_eq!(outcome.regs[&reg], expected, "a={a:#x} b={b:#x}");
    }
}

#[test]
fn unsatisfiable_budget_reports_error() {
    let denali = Denali::new(Options {
        max_cycles: 2,
        ..Options::default()
    });
    // Needs mulq (latency 7): impossible within 2 cycles.
    let err = denali
        .compile_source("(\\procdecl f ((a long) (b long)) long (:= (\\res (* a b))))")
        .unwrap_err();
    assert_eq!(err.stage, "search");
}

#[test]
fn probe_log_matches_search_shape() {
    let denali = Denali::new(Options::default());
    let result = denali
        .compile_source("(\\procdecl f ((a long)) long (:= (\\res (+ (* a a) 1))))")
        .unwrap();
    let compiled = &result.gmas[0];
    assert_eq!(compiled.cycles, 8); // mulq(7) + addq(1)
                                    // The probe log must contain an unsatisfiable K=7 and a satisfiable K=8.
    assert!(compiled.probes.iter().any(|p| p.k == 7 && !p.satisfiable));
    assert!(compiled.probes.iter().any(|p| p.k == 8 && p.satisfiable));
    // Sizes grow with K.
    let mut by_k: Vec<(u32, usize)> = compiled.probes.iter().map(|p| (p.k, p.vars)).collect();
    by_k.sort();
    for w in by_k.windows(2) {
        assert!(w[1].1 >= w[0].1);
    }
}

#[test]
fn conditional_move_compiles_to_cmov() {
    // max(a, b) via if-then-else: cmpult + cmov, two cycles, no branch.
    let denali = Denali::new(Options::default());
    let result = check_against_reference(
        &denali,
        "(\\procdecl max ((a long) (b long)) long
           (:= (\\res (ite (<u a b) b a))))",
        &[("a", 10), ("b", 42)],
        HashMap::new(),
    );
    let compiled = &result.gmas[0];
    assert_eq!(compiled.cycles, 2, "\n{}", compiled.program.listing(4));
    let ops: Vec<&str> = compiled
        .program
        .instrs
        .iter()
        .map(|i| i.op.as_str())
        .collect();
    assert!(
        ops.contains(&"cmovne") || ops.contains(&"cmoveq"),
        "{ops:?}"
    );

    // And on swapped operands.
    let sim = Simulator::new(&denali.options().machine);
    let res = compiled.program.output_reg(Symbol::intern("res")).unwrap();
    for (a, b) in [(10u64, 42u64), (42, 10), (7, 7), (u64::MAX, 0)] {
        let outcome = sim
            .run_named(&compiled.program, &[("a", a), ("b", b)], HashMap::new())
            .unwrap();
        assert_eq!(outcome.regs[&res], a.max(b), "a={a} b={b}");
    }
}

#[test]
fn sign_extension_idiom_compiles_to_sextb() {
    // (a << 56) >> 56 arithmetic: one sextb instead of two shifts.
    let denali = Denali::new(Options::default());
    let result = check_against_reference(
        &denali,
        "(\\procdecl se ((a long)) long
           (:= (\\res (sar64 (<< a 56) 56))))",
        &[("a", 0x80)],
        HashMap::new(),
    );
    let compiled = &result.gmas[0];
    assert_eq!(compiled.cycles, 1, "\n{}", compiled.program.listing(4));
    assert_eq!(compiled.program.instrs[0].op.as_str(), "sextb");
}

#[test]
fn wordswap_uses_16bit_field_instructions() {
    // Swap the two 16-bit halves of a 32-bit value: extwl + inswl + bis.
    let denali = Denali::new(Options::default());
    let result = check_against_reference(
        &denali,
        "(\\procdecl wordswap32 ((a long)) long
           (:= (\\res (\\storew (\\storew 0 0 (\\selectw a 1)) 1 (\\selectw a 0)))))",
        &[("a", 0x1234_5678)],
        HashMap::new(),
    );
    let compiled = &result.gmas[0];
    assert!(compiled.cycles <= 3, "\n{}", compiled.program.listing(4));
    let ops: Vec<&str> = compiled
        .program
        .instrs
        .iter()
        .map(|i| i.op.as_str())
        .collect();
    assert!(ops.contains(&"extwl") || ops.contains(&"inswl"), "{ops:?}");
    let sim = Simulator::new(&denali.options().machine);
    let res = compiled.program.output_reg(Symbol::intern("res")).unwrap();
    for a in [0x1234_5678u64, 0xffff_0000, 0xabcd_ef01_2345_6789] {
        let outcome = sim
            .run_named(&compiled.program, &[("a", a)], HashMap::new())
            .unwrap();
        let want = ((a & 0xffff) << 16) | ((a >> 16) & 0xffff);
        assert_eq!(outcome.regs[&res], want, "a={a:#x}");
    }
}

#[test]
fn auto_pipelining_recovers_the_hand_pipelined_schedule() {
    // The paper hand-pipelined the checksum (Figure 6) because software
    // pipelining was "a design, not implemented". Our mechanized
    // transformation recovers the same 5-cycle loop body from the
    // natural 4-accumulator source.
    const AUTO: &str = r"
(\opdecl add (long long) long)
(\axiom (forall (a b) (pats (add a b)) (eq (add a b) (add b a))))
(\axiom (forall (a b)
  (pats (add a b))
  (eq (add a b) (\add64 (\add64 a b) (\cmpult (\add64 a b) a)))))
(\procdecl cks ((ptr long*) (ptrend long*)) long
  (\var (sum1 long 0) (\var (sum2 long 0)
  (\var (sum3 long 0) (\var (sum4 long 0)
  (\do (-> (<u ptr ptrend)
    (\semi
      (:= (sum1 (add sum1 (\deref ptr)))
          (sum2 (add sum2 (\deref (+ ptr 8))))
          (sum3 (add sum3 (\deref (+ ptr 16))))
          (sum4 (add sum4 (\deref (+ ptr 24)))))
      (:= (ptr (+ ptr 32)))))))))))";

    let body_cycles = |pipeline: bool| {
        let denali = Denali::new(Options {
            pipeline_loads: pipeline,
            ..Options::default()
        });
        let result = denali.compile_source(AUTO).expect("compiles");
        let body = result
            .gmas
            .iter()
            .find(|g| g.gma.guard.is_some())
            .expect("loop body")
            .clone();
        // Differential check of the (possibly transformed) body.
        let mut env = Env::new();
        let mem: HashMap<u64, u64> = (0..8u64).map(|i| (64 + 8 * i, 1000 + i)).collect();
        for name in body.gma.inputs() {
            let v = match name.as_str() {
                "ptr" => 64,
                "ptrend" => 128,
                other => other.len() as u64 * 7919,
            };
            env.set_word(name.as_str(), v);
        }
        env.set_mem("M", mem.clone());
        env.define_op("add", |a| {
            let s = a[0].wrapping_add(a[1]);
            s.wrapping_add(u64::from(s < a[0]))
        });
        let expected = body.gma.evaluate(&env).unwrap();
        let machine = denali_arch::Machine::ev6();
        let sim = Simulator::new(&machine);
        let inputs: Vec<(&str, u64)> = body
            .gma
            .inputs()
            .iter()
            .map(|n| {
                let v = match n.as_str() {
                    "ptr" => 64,
                    "ptrend" => 128,
                    other => other.len() as u64 * 7919,
                };
                (n.as_str(), v)
            })
            .collect();
        let outcome = sim.run_named(&body.program, &inputs, mem).unwrap();
        for (name, want) in &expected.assigns {
            let reg = body.program.output_reg(*name).unwrap();
            assert_eq!(outcome.regs[&reg], *want, "{name}");
        }
        body.cycles
    };

    let plain = body_cycles(false);
    let pipelined = body_cycles(true);
    assert_eq!(plain, 7, "natural source: loads on the critical path");
    assert_eq!(
        pipelined, 5,
        "pipelined: matches the hand-written Figure 6 schedule"
    );
}

#[test]
fn register_allocation_end_to_end() {
    // Allocate byteswap4's output onto physical Alpha registers and
    // check it still simulates correctly.
    let denali = Denali::new(Options::default());
    let result = denali.compile_source(BYTESWAP4).unwrap();
    let program = &result.gmas[0].program;
    let machine = &denali.options().machine;
    let allocated =
        denali_arch::allocate(program, machine, &denali_arch::alpha_temp_pool()).unwrap();
    assert_eq!(
        allocated.input_reg(Symbol::intern("a")),
        Some(denali_arch::Reg(16))
    );
    let sim = Simulator::new(machine);
    for a in [0x11223344u64, 0xdeadbeef] {
        let before = sim.run_named(program, &[("a", a)], HashMap::new()).unwrap();
        let after = sim
            .run_named(&allocated, &[("a", a)], HashMap::new())
            .unwrap();
        let r1 = program.output_reg(Symbol::intern("res")).unwrap();
        let r2 = allocated.output_reg(Symbol::intern("res")).unwrap();
        assert_eq!(before.regs[&r1], after.regs[&r2]);
    }
}

#[test]
fn retargeting_to_ia64like_uses_field_instructions() {
    // The paper's in-progress Itanium port: "the changes will mostly be
    // to the axioms". Swapping the machine description and axiom set
    // retargets the whole pipeline; byteswap4 compiles via extract/
    // deposit instead of the Alpha byte ops.
    let denali = Denali::new(Options {
        machine: denali_arch::Machine::ia64like(),
        ..Options::default()
    });
    let result =
        check_against_reference(&denali, BYTESWAP4, &[("a", 0x1122_3344u64)], HashMap::new());
    let compiled = &result.gmas[0];
    let ops: Vec<&str> = compiled
        .program
        .instrs
        .iter()
        .map(|i| i.op.as_str())
        .collect();
    assert!(
        ops.iter().any(|o| *o == "extr_u" || *o == "dep_z"),
        "expected IA-64 field ops, got {ops:?}\n{}",
        compiled.program.listing(4)
    );
    assert!(
        !ops.iter().any(|o| ["extbl", "insbl", "mskbl"].contains(o)),
        "Alpha byte ops must not appear on the IA-64 target: {ops:?}"
    );
    // Optimality certificate still holds on the new target.
    assert!(compiled.refuted_below);
}

#[test]
fn ia64_shladd_subsumes_scaled_add() {
    // Figure 2 on the Itanium-flavored target: a*4 + b is one shladd.
    let denali = Denali::new(Options {
        machine: denali_arch::Machine::ia64like(),
        ..Options::default()
    });
    let result = check_against_reference(
        &denali,
        "(\\procdecl f ((a long) (b long)) long (:= (\\res (+ (* a 4) b))))",
        &[("a", 10), ("b", 5)],
        HashMap::new(),
    );
    let compiled = &result.gmas[0];
    assert_eq!(compiled.cycles, 1, "\n{}", compiled.program.listing(4));
    assert_eq!(compiled.program.instrs[0].op.as_str(), "shladd");
}

#[test]
fn cache_miss_annotations_stretch_the_schedule() {
    // §6: "the programmer can communicate [profiling information] to
    // Denali using annotations". Two loads; annotating one as a miss
    // moves the optimum from 4 cycles to miss-latency + 1.
    let plain = "(\\procdecl f ((p long*) (q long*)) long
       (:= (\\res (+ (\\deref p) (\\deref q)))))";
    let annotated = "(\\procdecl f ((p long*) (q long*)) long
       (:= (\\res (+ (\\derefm p) (\\deref q)))))";
    let denali = Denali::new(Options::default());
    let fast = denali.compile_source(plain).unwrap();
    // ldq(3) on each lower pipe (one per cluster) + addq, which pays a
    // bypass cycle for whichever operand crossed clusters.
    assert_eq!(fast.gmas[0].cycles, 5);

    let slow = check_against_reference(
        &denali,
        annotated,
        &[("p", 64), ("q", 72)],
        HashMap::from([(64, 5), (72, 6)]),
    );
    // Annotated load: 20 cycles, then the add.
    assert_eq!(
        slow.gmas[0].cycles,
        21,
        "\n{}",
        slow.gmas[0].program.listing(4)
    );

    // The annotation is per-site: the other load still has hit latency
    // and is hidden under the miss.
    let custom = Denali::new(Options {
        miss_latency: 7,
        ..Options::default()
    });
    let mid = custom.compile_source(annotated).unwrap();
    assert_eq!(mid.gmas[0].cycles, 8);
}
