//! Portfolio-probing equivalence tests: racing N diversified CDCL
//! configurations per probe must report the same probe outcomes, cycle
//! count, certificate, and byte-identical program as a single solver —
//! the portfolio may only change wall-clock and which configuration
//! happens to answer first. Which lane *wins* is race-dependent, so the
//! tests assert on everything except the winner index (which is only
//! checked for well-formedness).

use denali_axioms::SaturationLimits;
use denali_core::{Denali, Options};
use denali_prng::{forall, Rng};
use denali_term::Term;

const BYTESWAP4: &str = "
(\\procdecl byteswap4 ((a long)) long
  (\\var (r long 0)
    (\\semi
      (:= ((\\selectb r 0) (\\selectb a 3)))
      (:= ((\\selectb r 1) (\\selectb a 2)))
      (:= ((\\selectb r 2) (\\selectb a 1)))
      (:= ((\\selectb r 3) (\\selectb a 0)))
      (:= (\\res r)))))";

fn options(threads: usize, portfolio: usize) -> Options {
    // Pin every env-read knob the portfolio interacts with; the reduced
    // saturation budgets keep each random compile in the milliseconds.
    Options {
        threads,
        portfolio,
        incremental: false,
        saturation: SaturationLimits {
            max_iterations: 6,
            max_nodes: 3_000,
            max_structural_per_round: 300,
            max_structural_growth: 800,
            ..SaturationLimits::default()
        },
        ..Options::default()
    }
}

/// Everything the portfolio must leave untouched: cycles, certificate,
/// listing, and the (budget, outcome) probe log.
type Footprint = (u32, bool, String, Vec<(u32, bool)>);

fn footprint(source: &str, threads: usize, portfolio: usize) -> Footprint {
    let result = Denali::new(options(threads, portfolio))
        .compile_source(source)
        .expect("pipeline succeeds");
    let compiled = &result.gmas[0];
    (
        compiled.cycles,
        compiled.refuted_below,
        compiled.program.listing(4),
        compiled
            .probes
            .iter()
            .map(|p| (p.k, p.satisfiable))
            .collect(),
    )
}

/// Random goal expressions over two inputs (the same shape as the
/// incremental equivalence tests).
fn random_goal(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => Term::leaf("a"),
            1 => Term::leaf("b"),
            _ => Term::constant(rng.below(256)),
        };
    }
    let args = |rng: &mut Rng| vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)];
    match rng.below(8) {
        0 => Term::call("add64", args(rng)),
        1 => Term::call("sub64", args(rng)),
        2 => Term::call("and64", args(rng)),
        3 => Term::call("or64", args(rng)),
        4 => Term::call("xor64", args(rng)),
        5 => Term::call(
            "shl64",
            vec![random_goal(rng, depth - 1), Term::constant(rng.below(64))],
        ),
        6 => Term::call(
            "selectb",
            vec![random_goal(rng, depth - 1), Term::constant(rng.below(8))],
        ),
        _ => Term::call("cmpult", args(rng)),
    }
}

#[test]
fn portfolio_probing_is_byte_identical_to_single_solver() {
    forall(
        "portfolio_probing_is_byte_identical_to_single_solver",
        24,
        |rng| {
            let goal = random_goal(rng, 3);
            let source = format!("(procdecl f ((a long) (b long)) long (:= (res {goal})))");
            let baseline = footprint(&source, 1, 0);
            for threads in [1usize, 4] {
                for portfolio in [2usize, 4] {
                    assert_eq!(
                        baseline,
                        footprint(&source, threads, portfolio),
                        "goal {goal} diverged at threads={threads} portfolio={portfolio}"
                    );
                }
            }
        },
    );
}

#[test]
fn portfolio_agrees_on_byteswap4_and_tags_every_probe() {
    // The deterministic multi-probe workhorse: a full up-then-down
    // ascent with SAT and UNSAT probes on both sides of the answer.
    let baseline = footprint(BYTESWAP4, 1, 0);
    assert_eq!(baseline.0, 5, "byteswap4 is a 5-cycle program");
    for threads in [1usize, 4] {
        assert_eq!(baseline, footprint(BYTESWAP4, threads, 3));
    }

    // Every consumed probe carries a well-formed winner tag (and solver
    // stats from that winning lane); non-portfolio probes carry none.
    let result = Denali::new(options(1, 3))
        .compile_source(BYTESWAP4)
        .expect("pipeline succeeds");
    for probe in &result.gmas[0].probes {
        let winner = probe.winner.expect("portfolio probes record a winner");
        assert!(winner < 3, "winner {winner} out of range");
        assert!(probe.solver.is_some(), "winning lane surfaces its stats");
    }
    let single = Denali::new(options(1, 0))
        .compile_source(BYTESWAP4)
        .expect("pipeline succeeds");
    assert!(single.gmas[0].probes.iter().all(|p| p.winner.is_none()));
}

#[test]
fn portfolio_width_one_means_off() {
    // A width of 1 (or 0) is not a degenerate race: the search takes
    // the ordinary single-solver path, winner-less probes included.
    let result = Denali::new(options(1, 1))
        .compile_source(BYTESWAP4)
        .expect("pipeline succeeds");
    assert!(result.gmas[0].probes.iter().all(|p| p.winner.is_none()));
    assert_eq!(footprint(BYTESWAP4, 1, 1), footprint(BYTESWAP4, 1, 0));
}
