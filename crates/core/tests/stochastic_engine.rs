//! The stochastic (MCMC) engine as a pipeline citizen: determinism at a
//! fixed seed across runs and thread counts, the Figure 2 headline
//! result found without SAT, the auto-engine fallback when the cycle
//! budget is exhausted, and the permanent cross-validation oracle —
//! the chain must never beat the SAT optimum it cannot certify.

use std::collections::HashMap;

use denali_arch::{validate, Simulator};
use denali_axioms::SaturationLimits;
use denali_core::{Denali, EngineChoice, Options};
use denali_prng::{forall, Rng};
use denali_term::value::Env;
use denali_term::{Symbol, Term};

const FIGURE2: &str = r"(\procdecl f ((reg6 long)) long (:= (\res (+ (* reg6 4) 1))))";

const BYTESWAP4: &str = r"
(\procdecl byteswap4 ((a long)) long
  (\var (r long 0)
    (\semi
      (:= ((\selectb r 0) (\selectb a 3)))
      (:= ((\selectb r 1) (\selectb a 2)))
      (:= ((\selectb r 2) (\selectb a 1)))
      (:= ((\selectb r 3) (\selectb a 0)))
      (:= (\res r)))))";

fn stochastic_options() -> Options {
    let mut options = Options {
        engine: EngineChoice::Stochastic,
        ..Options::default()
    };
    // A shorter chain keeps the test fast; determinism and correctness
    // must hold at any budget.
    options.stoke.iterations = 4_000;
    options
}

/// One stochastic compile, returning the rendered listing and cycles —
/// the whole observable result, so byte-comparing listings is the
/// determinism check.
fn stochastic_listing(source: &str, threads: usize) -> (String, u32) {
    let mut options = stochastic_options();
    options.threads = threads;
    let denali = Denali::new(options);
    let result = denali.compile_source(source).expect("stochastic compiles");
    let compiled = &result.gmas[0];
    assert_eq!(compiled.engine, EngineChoice::Stochastic);
    assert!(
        !compiled.refuted_below,
        "the chain never claims an optimality certificate"
    );
    (compiled.program.listing(4), compiled.cycles)
}

#[test]
fn fixed_seed_runs_are_byte_identical_across_runs_and_threads() {
    let (first, cycles) = stochastic_listing(BYTESWAP4, 1);
    let (again, cycles_again) = stochastic_listing(BYTESWAP4, 1);
    assert_eq!(first, again, "same seed, same bytes");
    assert_eq!(cycles, cycles_again);
    // The chain itself is serial; threads only parallelize the matcher,
    // whose output is byte-identical at every width — so the mined
    // move set, and therefore the whole trajectory, must be too.
    let (wide, cycles_wide) = stochastic_listing(BYTESWAP4, 4);
    assert_eq!(first, wide, "thread count must not perturb the chain");
    assert_eq!(cycles, cycles_wide);
}

#[test]
fn the_chain_finds_the_figure2_s4addq() {
    // The paper's headline: 4*reg6 + 1 is one s4addq, not sll + addq.
    // The e-graph mines the equivalence; the chain only has to apply it.
    let (listing, cycles) = stochastic_listing(FIGURE2, 1);
    assert_eq!(cycles, 1, "listing:\n{listing}");
    assert!(listing.contains("s4addq"), "listing:\n{listing}");
}

#[test]
fn auto_falls_back_to_the_chain_when_the_cycle_budget_is_exhausted() {
    // a + b + 1 needs two dependent additions: no schedule within one
    // cycle exists, so the SAT ladder exhausts its budget. Under
    // `auto` that is not an error — the chain answers instead, with
    // anytime semantics (its result may exceed max_cycles).
    let source = r"(\procdecl f ((a long) (b long)) long (:= (\res (+ (+ a b) 1))))";
    let mut options = stochastic_options();
    options.engine = EngineChoice::Auto;
    options.max_cycles = 1;
    let denali = Denali::new(options);
    let result = denali.compile_source(source).expect("auto falls back");
    let compiled = &result.gmas[0];
    assert_eq!(compiled.engine, EngineChoice::Stochastic);
    assert!(compiled.cycles >= 2, "two dependent adds take two cycles");
    validate(&compiled.program, &denali.options().machine).expect("valid schedule");

    // Under `sat` the same budget is a hard error.
    let mut strict = stochastic_options();
    strict.engine = EngineChoice::Sat;
    strict.max_cycles = 1;
    let err = Denali::new(strict)
        .compile_source(source)
        .expect_err("sat engine reports budget exhaustion");
    assert!(
        err.message.starts_with("no schedule within"),
        "{}",
        err.message
    );
}

/// Random pure-ALU goals over two inputs — the stochastic engine's
/// supported fragment (no memory, no guards).
fn random_goal(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => Term::leaf("a"),
            1 => Term::leaf("b"),
            _ => Term::constant(rng.below(256)),
        };
    }
    match rng.below(8) {
        0 => Term::call(
            "add64",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        1 => Term::call(
            "sub64",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        2 => Term::call(
            "and64",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        3 => Term::call(
            "or64",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        4 => Term::call(
            "xor64",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        5 => Term::call(
            "shl64",
            vec![random_goal(rng, depth - 1), Term::constant(rng.below(64))],
        ),
        6 => Term::call(
            "cmpult",
            vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)],
        ),
        _ => Term::call(
            "selectb",
            vec![random_goal(rng, depth - 1), Term::constant(rng.below(8))],
        ),
    }
}

fn saturation_budget() -> SaturationLimits {
    SaturationLimits {
        max_iterations: 6,
        max_nodes: 3_000,
        max_structural_per_round: 300,
        max_structural_growth: 800,
        ..SaturationLimits::default()
    }
}

/// Differentially check the chain's program against the reference
/// evaluator on independent random vectors (the chain's own verifier
/// draws from its seeded stream; these come from the forall's rng).
fn check_semantics(
    goal: &Term,
    program: &denali_arch::Program,
    machine: &denali_arch::Machine,
    rng: &mut Rng,
) {
    let sim = Simulator::new(machine);
    for _ in 0..8 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let mut env = Env::new();
        env.set_word("a", a);
        env.set_word("b", b);
        let expected = env.eval_word(goal).expect("reference evaluates");
        let mut inputs = Vec::new();
        for (name, value) in [("a", a), ("b", b)] {
            if program.input_reg(Symbol::intern(name)).is_some() {
                inputs.push((name, value));
            }
        }
        let outcome = sim
            .run_named(program, &inputs, HashMap::new())
            .expect("simulates");
        let res = program
            .output_reg(Symbol::intern("res"))
            .expect("result register");
        assert_eq!(
            outcome.regs[&res],
            expected,
            "goal {} a={:#x} b={:#x}\n{}",
            goal,
            a,
            b,
            program.listing(4)
        );
    }
}

#[test]
fn the_chain_never_unsoundly_beats_the_sat_optimum() {
    // The permanent differential oracle. SAT's optimum is optimal
    // *modulo the axiom set and saturation budget*: a semantically
    // degenerate goal (e.g. `cmpult x (xor a a)` is constantly zero)
    // can be legitimately beaten by the chain, whose verifier is
    // semantic (test vectors), not axiomatic. So the invariant is:
    // every chain result is semantically correct on independent
    // vectors; results strictly below the SAT optimum are rare; and
    // the chain usually matches the optimum. All three pinned loosely
    // enough to track real regressions, not seeds.
    let mut matched = 0u32;
    let mut beat = 0u32;
    let mut total = 0u32;
    forall("stochastic_vs_sat_optimum", 24, |rng| {
        let goal = random_goal(rng, 2);
        let source = format!("(procdecl f ((a long) (b long)) long (:= (res {goal})))");

        let sat = Denali::new(Options {
            saturation: saturation_budget(),
            ..Options::default()
        });
        let optimum = sat.compile_source(&source).expect("sat compiles").gmas[0].cycles;

        let run = |threads: usize| {
            let mut options = stochastic_options();
            options.saturation = saturation_budget();
            options.threads = threads;
            let denali = Denali::new(options);
            let result = denali.compile_source(&source).expect("chain compiles");
            let compiled = result.gmas.into_iter().next().unwrap();
            (compiled.program, compiled.cycles)
        };

        let (program, cycles) = run(1);
        let (wide_program, wide_cycles) = run(4);
        assert_eq!(
            program.listing(4),
            wide_program.listing(4),
            "goal {goal}: threads perturbed the chain"
        );
        assert_eq!(cycles, wide_cycles);
        check_semantics(&goal, &program, &denali_arch::Machine::ev6(), rng);

        total += 1;
        if cycles == optimum {
            matched += 1;
        } else if cycles < optimum {
            beat += 1;
        }
    });
    assert!(
        matched * 2 >= total,
        "chain matched the optimum on only {matched}/{total} goals"
    );
    // Depth-2 random goals are often degenerate (xor a a, sub a a, ...)
    // and the budgeted saturation above misses some collapses, so a
    // handful of legitimate beats is expected — 4/24 at this seed.
    assert!(
        beat * 4 <= total,
        "chain beat the axiomatic optimum on {beat}/{total} goals — \
         either the verifier regressed or the axiom set lost rules"
    );
}
