//! End-to-end delta-matching equivalence: the whole pipeline — matching,
//! search, code generation — must produce byte-identical programs, cycle
//! counts, and probe logs whether saturation re-matches everything each
//! round or only the dirty cone. Delta matching may only change how much
//! work the matcher does, never what it finds.

use denali_axioms::SaturationLimits;
use denali_core::{Denali, Options};
use denali_prng::{forall, Rng};
use denali_term::Term;

fn options(delta: bool, threads: usize) -> Options {
    Options {
        threads,
        saturation: SaturationLimits {
            max_iterations: 6,
            max_nodes: 3_000,
            max_structural_per_round: 300,
            max_structural_growth: 800,
            threads,
            delta_match: delta,
            ..SaturationLimits::default()
        },
        ..Options::default()
    }
}

/// Everything the two matching strategies must agree on: cycles,
/// certificate, listing, probe log, and the matcher's node/class counts.
/// Candidate-scan counters are deliberately excluded — skipping
/// quiescent candidates is the whole point.
type Footprint = (u32, bool, String, Vec<(u32, bool)>, usize, usize);

fn footprint(source: &str, delta: bool, threads: usize) -> Footprint {
    let result = Denali::new(options(delta, threads))
        .compile_source(source)
        .expect("pipeline succeeds");
    let compiled = &result.gmas[0];
    (
        compiled.cycles,
        compiled.refuted_below,
        compiled.program.listing(4),
        compiled
            .probes
            .iter()
            .map(|p| (p.k, p.satisfiable))
            .collect(),
        compiled.matcher.nodes,
        compiled.matcher.classes,
    )
}

/// Random goal expressions over two inputs (the same shape as the
/// incremental-probing property test).
fn random_goal(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => Term::leaf("a"),
            1 => Term::leaf("b"),
            _ => Term::constant(rng.below(256)),
        };
    }
    let args = |rng: &mut Rng| vec![random_goal(rng, depth - 1), random_goal(rng, depth - 1)];
    match rng.below(8) {
        0 => Term::call("add64", args(rng)),
        1 => Term::call("sub64", args(rng)),
        2 => Term::call("and64", args(rng)),
        3 => Term::call("or64", args(rng)),
        4 => Term::call("xor64", args(rng)),
        5 => Term::call(
            "shl64",
            vec![random_goal(rng, depth - 1), Term::constant(rng.below(64))],
        ),
        6 => Term::call(
            "selectb",
            vec![random_goal(rng, depth - 1), Term::constant(rng.below(8))],
        ),
        _ => Term::call("cmpult", args(rng)),
    }
}

#[test]
fn delta_matching_compiles_identical_programs() {
    forall("delta_matching_compiles_identical_programs", 12, |rng| {
        let goal = random_goal(rng, 3);
        let source = format!("(procdecl f ((a long) (b long)) long (:= (res {goal})))");
        let full = footprint(&source, false, 1);
        for threads in [1, 4] {
            let delta = footprint(&source, true, threads);
            assert_eq!(full, delta, "goal {goal}, threads {threads}");
        }
    });
}
