//! Property tests: congruence-closure invariants under random
//! interleavings of insertions and unions.

use denali_egraph::EGraph;
use denali_prng::{forall, Rng};
use denali_term::Term;

/// A small random term over leaves l0..l3 and binary ops f, g.
fn random_term(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(3) == 0 {
        Term::leaf(format!("l{}", rng.below(4)))
    } else {
        let op = if rng.next_bool() { "f" } else { "g" };
        let a = random_term(rng, depth - 1);
        let b = random_term(rng, depth - 1);
        Term::call(op, vec![a, b])
    }
}

#[test]
fn unions_are_congruent() {
    forall("unions_are_congruent", 64, |rng| {
        let terms: Vec<Term> = (0..rng.range(1, 8)).map(|_| random_term(rng, 3)).collect();
        let merges: Vec<(usize, usize)> = (0..rng.below(6))
            .map(|_| (rng.below_usize(8), rng.below_usize(8)))
            .collect();

        let mut eg = EGraph::new();
        let classes: Vec<_> = terms.iter().map(|t| eg.add_term(t).unwrap()).collect();
        for &(i, j) in &merges {
            let (i, j) = (i % classes.len(), j % classes.len());
            // Random unions of whole terms can never contradict (no
            // constants or distinctions involved).
            eg.union(classes[i], classes[j]).unwrap();
        }
        eg.rebuild().unwrap();

        // Invariant 1: hashconsing is stable — re-adding any term gives
        // back its class.
        for (t, &c) in terms.iter().zip(&classes) {
            let again = eg.add_term(t).unwrap();
            assert_eq!(eg.find(again), eg.find(c));
        }

        // Invariant 2: congruence — wrapping any two equal classes in
        // the same operator yields equal classes.
        for &(i, j) in &merges {
            let (i, j) = (i % classes.len(), j % classes.len());
            let fi = Term::call("h", vec![terms[i].clone()]);
            let fj = Term::call("h", vec![terms[j].clone()]);
            let ci = eg.add_term(&fi).unwrap();
            let cj = eg.add_term(&fj).unwrap();
            eg.rebuild().unwrap();
            assert_eq!(eg.find(ci), eg.find(cj));
        }

        // Invariant 3: every node list is canonical and deduplicated.
        for class in eg.classes() {
            let nodes = eg.nodes(class);
            for (a, na) in nodes.iter().enumerate() {
                for nb in &nodes[a + 1..] {
                    assert_ne!(na, nb, "duplicate node in class");
                }
                for &child in &na.children {
                    assert_eq!(eg.find(child), child, "non-canonical child");
                }
            }
        }
    });
}

#[test]
fn transitive_merges_collapse_to_one_class() {
    forall("transitive_merges_collapse_to_one_class", 64, |rng| {
        let count = rng.range(2, 10) as usize;
        let mut eg = EGraph::new();
        let leaves: Vec<_> = (0..count)
            .map(|i| eg.add_term(&Term::leaf(format!("m{i}"))).unwrap())
            .collect();
        for w in leaves.windows(2) {
            eg.union(w[0], w[1]).unwrap();
        }
        eg.rebuild().unwrap();
        let root = eg.find(leaves[0]);
        for &l in &leaves {
            assert_eq!(eg.find(l), root);
        }
    });
}

#[test]
fn constant_folding_agrees_with_evaluator() {
    forall("constant_folding_agrees_with_evaluator", 64, |rng| {
        // add64(a, b) folds to the evaluator's result.
        let a = rng.next_u64() & 0xffff_ffff;
        let b = rng.next_u64() & 0xffff_ffff;
        let mut eg = EGraph::new();
        let t = Term::call("add64", vec![Term::constant(a), Term::constant(b)]);
        let c = eg.add_term(&t).unwrap();
        assert_eq!(eg.constant(c), Some(a.wrapping_add(b)));
        let lit = eg.add_term(&Term::constant(a.wrapping_add(b))).unwrap();
        assert_eq!(eg.find(lit), eg.find(c));
    });
}
