//! Property tests: congruence-closure invariants under random
//! interleavings of insertions and unions.

use denali_egraph::EGraph;
use denali_term::Term;
use proptest::prelude::*;

/// A small random term over leaves l0..l3 and binary ops f, g.
fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = (0u8..4).prop_map(|i| Term::leaf(format!("l{i}")));
    leaf.prop_recursive(3, 24, 2, |inner| {
        (prop_oneof![Just("f"), Just("g")], inner.clone(), inner)
            .prop_map(|(op, a, b)| Term::call(op, vec![a, b]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unions_are_congruent(
        terms in proptest::collection::vec(term_strategy(), 1..8),
        merges in proptest::collection::vec((0usize..8, 0usize..8), 0..6),
    ) {
        let mut eg = EGraph::new();
        let classes: Vec<_> = terms
            .iter()
            .map(|t| eg.add_term(t).unwrap())
            .collect();
        for &(i, j) in &merges {
            let (i, j) = (i % classes.len(), j % classes.len());
            // Random unions of whole terms can never contradict (no
            // constants or distinctions involved).
            eg.union(classes[i], classes[j]).unwrap();
        }
        eg.rebuild().unwrap();

        // Invariant 1: hashconsing is stable — re-adding any term gives
        // back its class.
        for (t, &c) in terms.iter().zip(&classes) {
            let again = eg.add_term(t).unwrap();
            prop_assert_eq!(eg.find(again), eg.find(c));
        }

        // Invariant 2: congruence — wrapping any two equal classes in
        // the same operator yields equal classes.
        for &(i, j) in &merges {
            let (i, j) = (i % classes.len(), j % classes.len());
            let fi = Term::call("h", vec![terms[i].clone()]);
            let fj = Term::call("h", vec![terms[j].clone()]);
            let ci = eg.add_term(&fi).unwrap();
            let cj = eg.add_term(&fj).unwrap();
            eg.rebuild().unwrap();
            prop_assert_eq!(eg.find(ci), eg.find(cj));
        }

        // Invariant 3: every node list is canonical and deduplicated.
        for class in eg.classes() {
            let nodes = eg.nodes(class);
            for (a, na) in nodes.iter().enumerate() {
                for nb in &nodes[a + 1..] {
                    prop_assert_ne!(na, nb, "duplicate node in class");
                }
                for &child in &na.children {
                    prop_assert_eq!(eg.find(child), child, "non-canonical child");
                }
            }
        }
    }

    #[test]
    fn transitive_merges_collapse_to_one_class(count in 2usize..10) {
        let mut eg = EGraph::new();
        let leaves: Vec<_> = (0..count)
            .map(|i| eg.add_term(&Term::leaf(format!("m{i}"))).unwrap())
            .collect();
        for w in leaves.windows(2) {
            eg.union(w[0], w[1]).unwrap();
        }
        eg.rebuild().unwrap();
        let root = eg.find(leaves[0]);
        for &l in &leaves {
            prop_assert_eq!(eg.find(l), root);
        }
    }

    #[test]
    fn constant_folding_agrees_with_evaluator(a: u32, b: u32) {
        // add64(a, b) folds to the evaluator's result.
        let (a, b) = (u64::from(a), u64::from(b));
        let mut eg = EGraph::new();
        let t = Term::call("add64", vec![Term::constant(a), Term::constant(b)]);
        let c = eg.add_term(&t).unwrap();
        prop_assert_eq!(eg.constant(c), Some(a.wrapping_add(b)));
        let lit = eg.add_term(&Term::constant(a.wrapping_add(b))).unwrap();
        prop_assert_eq!(eg.find(lit), eg.find(c));
    }
}
