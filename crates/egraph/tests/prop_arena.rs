//! Property tests for the arena/SoA storage: node ids resolve
//! in-arena, interned child slices are canonical and content-shared,
//! and the hashcons memo agrees with the arena after random
//! add/union/rebuild interleavings.

use std::collections::HashMap;

use denali_egraph::{EGraph, NodeId, SliceId};
use denali_prng::{forall, Rng};
use denali_term::{Op, Term};

/// A small random term over leaves a0..a4, unary op u, binary ops f, g.
fn random_term(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        Term::leaf(format!("a{}", rng.below(5)))
    } else if rng.below(3) == 0 {
        Term::call("u", vec![random_term(rng, depth - 1)])
    } else {
        let op = if rng.next_bool() { "f" } else { "g" };
        let a = random_term(rng, depth - 1);
        let b = random_term(rng, depth - 1);
        Term::call(op, vec![a, b])
    }
}

/// Builds a random e-graph: terms added and randomly unioned, with a
/// rebuild either after every union or once at the end (both are legal
/// call patterns and must leave the same invariants).
fn random_egraph(rng: &mut Rng) -> (EGraph, Vec<Term>, Vec<denali_egraph::ClassId>) {
    let terms: Vec<Term> = (0..rng.range(1, 10)).map(|_| random_term(rng, 3)).collect();
    let mut eg = EGraph::new();
    let classes: Vec<_> = terms.iter().map(|t| eg.add_term(t).unwrap()).collect();
    let eager = rng.next_bool();
    for _ in 0..rng.below(8) {
        let i = rng.below_usize(classes.len());
        let j = rng.below_usize(classes.len());
        eg.union(classes[i], classes[j]).unwrap();
        if eager {
            eg.rebuild().unwrap();
        }
    }
    eg.rebuild().unwrap();
    (eg, terms, classes)
}

#[test]
fn node_ids_resolve_in_arena() {
    forall("node_ids_resolve_in_arena", 64, |rng| {
        let (eg, _, _) = random_egraph(rng);
        let nodes = eg.num_nodes();
        for class in eg.classes() {
            for &nid in eg.class_node_ids(class) {
                assert!(nid.index() < nodes, "class node {nid:?} out of arena");
                // Accessors resolve without panicking and agree with
                // the materialized view's shape.
                let arity = eg.node_children(nid).len();
                match eg.node_op(nid) {
                    Op::Sym(_) => {}
                    Op::Const(_) => assert_eq!(arity, 0, "constants are leaves"),
                    Op::Var(_) => panic!("pattern variable stored in the e-graph"),
                }
            }
            for &(nid, parent) in eg.class_parents(class) {
                assert!(nid.index() < nodes, "parent node {nid:?} out of arena");
                // The parent node really does use this class as a child.
                let uses = eg
                    .node_children(nid)
                    .iter()
                    .any(|&c| eg.find(c) == eg.find(class));
                assert!(uses, "parent entry {nid:?} does not use {class:?}");
                // And its recorded class resolves to a live class
                // holding the node.
                let parent = eg.find(parent);
                assert!(
                    eg.class_node_ids(parent).contains(&nid)
                        || eg
                            .class_node_ids(parent)
                            .iter()
                            .any(|&other| eg.node_op(other) == eg.node_op(nid)),
                    "parent class {parent:?} lost node {nid:?}"
                );
            }
        }
    });
}

#[test]
fn slices_are_canonical_and_shared_after_rebuild() {
    forall("slices_are_canonical_and_shared_after_rebuild", 64, |rng| {
        let (eg, _, _) = random_egraph(rng);
        // Content-addressing: across the whole graph, two class nodes
        // with identical canonical child lists share one SliceId.
        let mut by_content: HashMap<Vec<denali_egraph::ClassId>, SliceId> = HashMap::new();
        for class in eg.classes() {
            let mut seen: Vec<(Op, SliceId)> = Vec::new();
            for &nid in eg.class_node_ids(class) {
                let slice = eg.node_slice(nid);
                let children = eg.node_children(nid).to_vec();
                // Canonical: rebuild re-pointed every stored slice.
                for &c in &children {
                    assert_eq!(eg.find(c), c, "stale child after rebuild");
                }
                match by_content.get(&children) {
                    Some(&existing) => assert_eq!(
                        existing, slice,
                        "identical child lists interned as two slices"
                    ),
                    None => {
                        by_content.insert(children, slice);
                    }
                }
                // Deduplicated: no congruent duplicates in one class.
                let key = (eg.node_op(nid), slice);
                assert!(!seen.contains(&key), "duplicate node form in class");
                seen.push(key);
            }
        }
    });
}

#[test]
fn memo_and_arena_agree_after_random_mutations() {
    forall("memo_and_arena_agree_after_random_mutations", 64, |rng| {
        let (mut eg, terms, classes) = random_egraph(rng);
        // The memo answers every stored term with the class that holds
        // it (lookup is read-only and must not disturb anything).
        let generation = eg.generation();
        for (t, &c) in terms.iter().zip(&classes) {
            assert_eq!(eg.lookup_term(t), Some(eg.find(c)), "memo lost a term");
        }
        assert_eq!(eg.generation(), generation, "lookup mutated the graph");
        // Re-adding is a pure hashcons hit: no new nodes, no new
        // classes, same answers.
        let nodes = eg.num_nodes();
        let num_classes = eg.num_classes();
        for (t, &c) in terms.iter().zip(&classes) {
            let again = eg.add_term(t).unwrap();
            assert_eq!(eg.find(again), eg.find(c));
        }
        assert_eq!(eg.num_nodes(), nodes, "re-add created arena nodes");
        assert_eq!(eg.num_classes(), num_classes, "re-add created classes");
        // Every class node round-trips through the memo: adding its
        // (op, canonical children) form lands back in the same class.
        for class in eg.classes() {
            let entries: Vec<(NodeId, Op, Vec<denali_egraph::ClassId>)> = eg
                .class_node_ids(class)
                .iter()
                .map(|&nid| (nid, eg.node_op(nid), eg.node_children(nid).to_vec()))
                .collect();
            for (nid, op, children) in entries {
                let back = eg.add_node(op, children).unwrap();
                assert_eq!(
                    eg.find(back),
                    eg.find(class),
                    "arena node {nid:?} not memoized to its class"
                );
            }
        }
    });
}

#[test]
fn memo_and_arena_agree_across_a_generational_sweep() {
    // Heavy merging leaves the slice pool mostly garbage (every repair
    // re-points nodes at freshly interned canonical slices), which
    // triggers the generational sweep at rebuild time. The sweep remaps
    // every SliceId, so this pins the full contract across it: slices
    // stay canonical and content-shared, the memo still answers every
    // term, re-adding is a pure hashcons hit, and the reclaimed bytes
    // show up (cumulatively) in the memory stats.
    forall("memo_and_arena_agree_across_a_sweep", 32, |rng| {
        let terms: Vec<Term> = (0..rng.range(12, 24))
            .map(|_| random_term(rng, 4))
            .collect();
        let mut eg = EGraph::new();
        let classes: Vec<_> = terms.iter().map(|t| eg.add_term(t).unwrap()).collect();
        // Merge every leaf into one class: congruence cascades through
        // every parent, re-pointing nearly every stored slice, so the
        // pre-merge spans go stale en masse.
        let leaves: Vec<_> = (0..5)
            .map(|i| eg.add_term(&Term::leaf(format!("a{i}"))).unwrap())
            .collect();
        for pair in leaves.windows(2) {
            eg.union(pair[0], pair[1]).unwrap();
        }
        eg.rebuild().unwrap();
        let mem = eg.memory_stats();
        assert!(
            mem.reclaimed_bytes > 0,
            "chain-merging {} terms must trigger a sweep (slice_entries {})",
            terms.len(),
            mem.slice_entries
        );
        // Reclaimed bytes are monotone and never double-counted into
        // the live footprint.
        assert_eq!(
            mem.total_bytes,
            mem.arena_bytes + mem.slice_bytes + mem.class_bytes + mem.memo_bytes
        );

        // Post-sweep slices are canonical and content-shared.
        let mut by_content: HashMap<Vec<denali_egraph::ClassId>, SliceId> = HashMap::new();
        for class in eg.classes() {
            for &nid in eg.class_node_ids(class) {
                let slice = eg.node_slice(nid);
                let children = eg.node_children(nid).to_vec();
                for &c in &children {
                    assert_eq!(eg.find(c), c, "stale child after sweep");
                }
                match by_content.get(&children) {
                    Some(&existing) => assert_eq!(
                        existing, slice,
                        "identical child lists interned as two slices after sweep"
                    ),
                    None => {
                        by_content.insert(children, slice);
                    }
                }
            }
        }

        // The memo survived the remap: every term still answers, and
        // re-adding creates nothing.
        let nodes = eg.num_nodes();
        let num_classes = eg.num_classes();
        for (t, &c) in terms.iter().zip(&classes) {
            assert_eq!(eg.lookup_term(t), Some(eg.find(c)), "memo lost a term");
            let again = eg.add_term(t).unwrap();
            assert_eq!(eg.find(again), eg.find(c));
        }
        assert_eq!(eg.num_nodes(), nodes, "re-add created arena nodes");
        assert_eq!(eg.num_classes(), num_classes, "re-add created classes");

        // A second rebuild over the swept pool is a no-op for content
        // and keeps the counter monotone.
        let reclaimed = mem.reclaimed_bytes;
        eg.rebuild().unwrap();
        assert!(eg.memory_stats().reclaimed_bytes >= reclaimed);
    });
}

#[test]
fn memory_stats_are_consistent() {
    forall("memory_stats_are_consistent", 64, |rng| {
        let (eg, _, _) = random_egraph(rng);
        let mem = eg.memory_stats();
        assert_eq!(mem.nodes as usize, eg.num_nodes());
        assert_eq!(mem.classes as usize, eg.num_classes());
        assert_eq!(mem.slice_refs, mem.nodes, "one slice ref per node");
        assert!(mem.slice_entries <= mem.nodes + 1, "more slices than nodes");
        assert_eq!(
            mem.total_bytes,
            mem.arena_bytes + mem.slice_bytes + mem.class_bytes + mem.memo_bytes
        );
        assert!(mem.bytes_per_node() > 0.0);
        // The legacy model always pays at least as much: it stores an
        // owned node per class entry, parent entry, and memo key.
        assert!(
            mem.legacy_bytes >= mem.total_bytes,
            "legacy {} < arena {}",
            mem.legacy_bytes,
            mem.total_bytes
        );
    });
}
