//! Additional e-graph coverage: the operator index, way-counting
//! saturation behavior, and error formatting.

use denali_egraph::{EGraph, EqLiteral};
use denali_term::{sexpr, Symbol, Term};

fn t(s: &str) -> Term {
    Term::from_sexpr(&sexpr::parse_one(s).unwrap(), &[]).unwrap()
}

#[test]
fn operator_index_tracks_merges() {
    let mut eg = EGraph::new();
    let f = eg.add_term(&t("(f x)")).unwrap();
    let g = eg.add_term(&t("(g y)")).unwrap();
    assert_eq!(eg.classes_with_op(Symbol::intern("f")), vec![eg.find(f)]);
    assert_eq!(eg.classes_with_op(Symbol::intern("g")), vec![eg.find(g)]);
    assert!(eg.classes_with_op(Symbol::intern("zzz")).is_empty());
    // After merging f(x) and g(y), both index entries resolve to the
    // shared canonical class.
    eg.union(f, g).unwrap();
    eg.rebuild().unwrap();
    assert_eq!(eg.classes_with_op(Symbol::intern("f")), vec![eg.find(f)]);
    assert_eq!(eg.classes_with_op(Symbol::intern("g")), vec![eg.find(f)]);
}

#[test]
fn count_ways_saturates_instead_of_overflowing() {
    // A chain of classes each with two equivalent forms: 2^n ways; a
    // deep chain must saturate at u128::MAX rather than panic.
    let mut eg = EGraph::new();
    let mut prev = eg.add_term(&t("x0")).unwrap();
    for i in 1..140 {
        let a = eg
            .add_term(&Term::call("f", vec![Term::leaf(format!("x{}", i - 1))]))
            .unwrap();
        let b = eg
            .add_term(&Term::call("g", vec![Term::leaf(format!("x{}", i - 1))]))
            .unwrap();
        eg.union(a, b).unwrap();
        let x = eg.add_term(&Term::leaf(format!("x{i}"))).unwrap();
        eg.union(x, a).unwrap();
        prev = x;
    }
    eg.rebuild().unwrap();
    let ways = eg.count_ways(prev, 200);
    assert!(ways >= 1u128 << 127 || ways == u128::MAX);
}

#[test]
fn contradiction_errors_name_the_conflict() {
    let mut eg = EGraph::new();
    let one = eg.add_term(&Term::constant(1)).unwrap();
    let two = eg.add_term(&Term::constant(2)).unwrap();
    let err = eg.union(one, two).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('1') && msg.contains('2'), "{msg}");
}

#[test]
fn clauses_survive_multiple_rebuilds_until_resolved() {
    let mut eg = EGraph::new();
    let x = eg.add_term(&t("x")).unwrap();
    let y = eg.add_term(&t("y")).unwrap();
    let p = eg.add_term(&t("p")).unwrap();
    let q = eg.add_term(&t("q")).unwrap();
    // x = y ∨ p = q: neither literal resolvable yet.
    eg.add_clause(vec![EqLiteral::Eq(x, y), EqLiteral::Eq(p, q)]);
    eg.rebuild().unwrap();
    assert_ne!(eg.find(x), eg.find(y));
    assert_ne!(eg.find(p), eg.find(q));
    // Make the first literal untenable via constants; the second fires.
    let one = eg.add_term(&Term::constant(1)).unwrap();
    let two = eg.add_term(&Term::constant(2)).unwrap();
    eg.union(x, one).unwrap();
    eg.union(y, two).unwrap();
    eg.rebuild().unwrap();
    assert_eq!(eg.find(p), eg.find(q), "surviving unit literal asserted");
}

#[test]
fn address_decompositions_cover_both_operand_orders() {
    let mut eg = EGraph::new();
    let sum = eg.add_term(&t("(add64 8 p)")).unwrap();
    eg.rebuild().unwrap();
    let decomps = eg.address_decompositions(sum);
    let p = eg.lookup_term(&t("p")).unwrap();
    assert!(
        decomps.iter().any(|&(b, o)| b == eg.find(p) && o == 8),
        "{decomps:?}"
    );
    // And the identity decomposition is always present.
    assert!(decomps.iter().any(|&(b, o)| b == eg.find(sum) && o == 0));
}
