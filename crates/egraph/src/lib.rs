#![warn(missing_docs)]

//! The E-graph: Denali's representation of *all* the ways to compute a
//! set of goal terms.
//!
//! From the paper (§5): "An E-graph is a conventional term DAG augmented
//! with an equivalence relation on the nodes of the DAG; two nodes are
//! equivalent if the terms they represent are identical in value. [...]
//! Thus an E-graph of size O(n) can represent Θ(2^n) distinct ways of
//! computing a term of size n."
//!
//! This crate provides:
//!
//! * [`EGraph`] — hash-consed e-nodes, a union-find over equivalence
//!   classes, and congruence closure (the Downey–Sethi–Tarjan invariant
//!   maintained with a repair worklist),
//! * e-matching ([`ematch`]) — matching axiom patterns *modulo the
//!   equivalence relation*, the operation that lets Denali find
//!   `k * 2**n` inside `reg6 * 4`,
//! * *distinctions* — pairs of classes constrained to be uncombinable
//!   (the paper's `T ≠ U` facts),
//! * *clauses* — disjunctions of equality/distinction literals whose
//!   untenable literals are deleted until a surviving unit literal is
//!   asserted (the select/store example of §5),
//! * analyses — constant folding through the operation semantics (this
//!   is how the fact `4 = 2**2` becomes discoverable) and a base+offset
//!   analysis that proves disequalities like `p ≠ p + 8`,
//! * [`EGraph::count_ways`] — counting the distinct computations the
//!   graph represents (the paper's "more than a hundred different ways
//!   of computing a + b + c + d + e").
//!
//! # Example
//!
//! ```
//! use denali_egraph::EGraph;
//! use denali_term::Term;
//!
//! let mut eg = EGraph::new();
//! let four = eg.add_term(&Term::constant(4)).unwrap();
//! let pow = eg.add_term(&Term::call("pow", vec![Term::constant(2), Term::constant(2)])).unwrap();
//! eg.rebuild().unwrap();
//! // Constant folding discovered 2**2 = 4 on its own.
//! assert_eq!(eg.find(four), eg.find(pow));
//! ```

mod egraph;
mod ematch;
mod ways;

pub use egraph::{
    ClassId, Delta, EGraph, EGraphError, ENode, EqLiteral, MemoryStats, NodeId, OpCounts, SliceId,
};
pub use ematch::{
    candidates, ematch, ematch_classes, ematch_delta, ematch_in_class, pattern_depth, Subst,
};
