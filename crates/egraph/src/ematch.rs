//! E-matching: matching axiom patterns against the E-graph *modulo the
//! equivalence relation*.
//!
//! The paper (§5): "An ordinary matcher would fail to match the pattern
//! `k * 2**n` against the term-DAG node `reg6*4` because the node
//! labelled 4 is not of the form `2**n`, but an E-graph matcher will
//! search the equivalence class and find the node `2**2` and the match
//! will succeed."

use std::collections::HashMap;

use denali_term::{Op, Symbol, Term};

use crate::egraph::{ClassId, EGraph};

/// A substitution from pattern variables to equivalence classes.
pub type Subst = HashMap<Symbol, ClassId>;

/// Matches `pattern` anywhere in the e-graph.
///
/// Returns `(class, substitution)` pairs: the class the pattern's root
/// matched, and the variable bindings. Results are canonicalized and
/// deduplicated.
///
/// Patterns are [`Term`]s whose [`Op::Var`] leaves are the quantified
/// variables. Constant leaves match any class whose known constant value
/// equals the literal (so a pattern `4` matches a class containing
/// `pow(2, 2)` even if the literal `4` node was added separately).
pub fn ematch(egraph: &EGraph, pattern: &Term) -> Vec<(ClassId, Subst)> {
    let mut out = Vec::new();
    // Patterns headed by a symbol can only match classes containing a
    // node with that symbol; use the operator index to skip the rest.
    let candidates = match pattern.op() {
        Op::Sym(sym) if !pattern.args().is_empty() => egraph.classes_with_op(sym),
        _ => egraph.classes(),
    };
    for class in candidates {
        for subst in ematch_in_class(egraph, pattern, class) {
            out.push((class, subst));
        }
    }
    dedup(out)
}

/// Matches `pattern` against the members of one equivalence class.
pub fn ematch_in_class(egraph: &EGraph, pattern: &Term, class: ClassId) -> Vec<Subst> {
    let mut results = Vec::new();
    match_class(
        egraph,
        pattern,
        egraph.find(class),
        Subst::new(),
        &mut results,
    );
    results
}

fn match_class(
    egraph: &EGraph,
    pattern: &Term,
    class: ClassId,
    subst: Subst,
    out: &mut Vec<Subst>,
) {
    match pattern.op() {
        Op::Var(v) => match subst.get(&v) {
            Some(&bound) => {
                if egraph.find(bound) == class {
                    out.push(subst);
                }
            }
            None => {
                let mut subst = subst;
                subst.insert(v, class);
                out.push(subst);
            }
        },
        Op::Const(c) => {
            // A constant pattern matches via the constant analysis, so
            // classes folded to the value match even without a literal
            // node.
            if egraph.constant(class) == Some(c) {
                out.push(subst);
            }
        }
        Op::Sym(sym) => {
            for node in egraph.nodes(class) {
                if node.op != Op::Sym(sym) || node.children.len() != pattern.args().len() {
                    continue;
                }
                // Match children left to right, threading substitutions.
                let mut partial = vec![subst.clone()];
                for (child_pat, &child_class) in pattern.args().iter().zip(&node.children) {
                    let mut next = Vec::new();
                    for s in partial {
                        match_class(egraph, child_pat, egraph.find(child_class), s, &mut next);
                    }
                    partial = next;
                    if partial.is_empty() {
                        break;
                    }
                }
                out.extend(partial);
            }
        }
    }
}

fn dedup(matches: Vec<(ClassId, Subst)>) -> Vec<(ClassId, Subst)> {
    let mut seen: std::collections::HashSet<(ClassId, Vec<(Symbol, ClassId)>)> =
        std::collections::HashSet::new();
    let mut out = Vec::new();
    for (class, subst) in matches {
        let mut key: Vec<(Symbol, ClassId)> = subst.iter().map(|(&v, &c)| (v, c)).collect();
        key.sort();
        if seen.insert((class, key)) {
            out.push((class, subst));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use denali_term::sexpr;

    fn t(s: &str, vars: &[&str]) -> Term {
        let vars: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
        Term::from_sexpr(&sexpr::parse_one(s).unwrap(), &vars).unwrap()
    }

    #[test]
    fn matches_ground_pattern() {
        let mut eg = EGraph::new();
        let c = eg.add_term(&t("(add64 x y)", &[])).unwrap();
        let matches = ematch(&eg, &t("(add64 x y)", &[]));
        assert_eq!(matches.len(), 1);
        assert_eq!(eg.find(matches[0].0), eg.find(c));
    }

    #[test]
    fn binds_variables() {
        let mut eg = EGraph::new();
        eg.add_term(&t("(add64 x y)", &[])).unwrap();
        let matches = ematch(&eg, &t("(add64 a b)", &["a", "b"]));
        assert_eq!(matches.len(), 1);
        let subst = &matches[0].1;
        let x = eg.lookup_term(&t("x", &[])).unwrap();
        let y = eg.lookup_term(&t("y", &[])).unwrap();
        assert_eq!(subst[&Symbol::intern("a")], x);
        assert_eq!(subst[&Symbol::intern("b")], y);
    }

    #[test]
    fn nonlinear_patterns_require_equal_classes() {
        let mut eg = EGraph::new();
        eg.add_term(&t("(add64 x y)", &[])).unwrap();
        let doubled = t("(add64 a a)", &["a"]);
        assert!(ematch(&eg, &doubled).is_empty());
        // After x = y the nonlinear pattern matches.
        let x = eg.lookup_term(&t("x", &[])).unwrap();
        let y = eg.lookup_term(&t("y", &[])).unwrap();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(ematch(&eg, &doubled).len(), 1);
    }

    #[test]
    fn matches_modulo_equivalence_like_figure2() {
        // The paper's key example: pattern (mul64 ?k (pow 2 ?n)) matches
        // reg6 * 4 because 4's class also contains pow(2, 2).
        let mut eg = EGraph::new();
        let mul = eg.add_term(&t("(mul64 reg6 4)", &[])).unwrap();
        let pattern = t("(mul64 k (pow 2 n))", &["k", "n"]);
        assert!(ematch(&eg, &pattern).is_empty(), "no pow node yet");
        eg.add_term(&t("(pow 2 2)", &[])).unwrap(); // folds into 4's class
        eg.rebuild().unwrap();
        let matches = ematch(&eg, &pattern);
        assert_eq!(matches.len(), 1);
        let (class, subst) = &matches[0];
        assert_eq!(eg.find(*class), eg.find(mul));
        let reg6 = eg.lookup_term(&t("reg6", &[])).unwrap();
        let two = eg.lookup_term(&Term::constant(2)).unwrap();
        assert_eq!(eg.find(subst[&Symbol::intern("k")]), eg.find(reg6));
        assert_eq!(eg.find(subst[&Symbol::intern("n")]), eg.find(two));
    }

    #[test]
    fn constant_pattern_matches_folded_class() {
        let mut eg = EGraph::new();
        eg.add_term(&t("(pow 2 3)", &[])).unwrap();
        let matches = ematch(&eg, &Term::constant(8));
        assert_eq!(matches.len(), 1);
        assert!(ematch(&eg, &Term::constant(9)).is_empty());
    }

    #[test]
    fn multiple_matches_in_one_class() {
        // add64(a, b) and add64(b, a) in the same class give two
        // substitutions for pattern add64(?x, ?y) on that class.
        let mut eg = EGraph::new();
        let ab = eg.add_term(&t("(add64 a b)", &[])).unwrap();
        let ba = eg.add_term(&t("(add64 b a)", &[])).unwrap();
        eg.union(ab, ba).unwrap();
        eg.rebuild().unwrap();
        let matches = ematch_in_class(&eg, &t("(add64 x y)", &["x", "y"]), ab);
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn arity_must_match() {
        let mut eg = EGraph::new();
        eg.add_term(&t("(f x)", &[])).unwrap();
        assert!(ematch(&eg, &t("(f a b)", &["a", "b"])).is_empty());
    }

    #[test]
    fn deduplicates_equivalent_matches() {
        let mut eg = EGraph::new();
        // f(x) added twice — hashconsed, so one node, one match.
        eg.add_term(&t("(f x)", &[])).unwrap();
        eg.add_term(&t("(f x)", &[])).unwrap();
        let matches = ematch(&eg, &t("(f a)", &["a"]));
        assert_eq!(matches.len(), 1);
    }
}
