//! E-matching: matching axiom patterns against the E-graph *modulo the
//! equivalence relation*.
//!
//! The paper (§5): "An ordinary matcher would fail to match the pattern
//! `k * 2**n` against the term-DAG node `reg6*4` because the node
//! labelled 4 is not of the form `2**n`, but an E-graph matcher will
//! search the equivalence class and find the node `2**2` and the match
//! will succeed."
//!
//! Two entry points: [`ematch`] scans every top-level candidate class,
//! while [`ematch_delta`] restricts the top-level scan to a caller-
//! supplied dirty set (typically [`EGraph::dirty_cone`] over the change
//! journal) but still searches full equivalence classes below the root —
//! the workhorse of delta-driven saturation.

use std::collections::HashSet;

use denali_term::{Op, Symbol, Term};

use crate::egraph::{ClassId, EGraph};

/// A substitution from pattern variables to equivalence classes.
///
/// Stored as a small vector sorted by variable: axiom patterns bind a
/// handful of variables, so binary search beats hashing, cloning is a
/// single memcpy, and iteration is already in canonical (sorted
/// variable) order — which is exactly the order dedup keys need.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Subst {
    bindings: Vec<(Symbol, ClassId)>,
}

impl Subst {
    /// Creates an empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// The class bound to `var`, if any.
    pub fn get(&self, var: Symbol) -> Option<ClassId> {
        self.bindings
            .binary_search_by_key(&var, |&(v, _)| v)
            .ok()
            .map(|i| self.bindings[i].1)
    }

    /// True if `var` is bound.
    pub fn contains(&self, var: Symbol) -> bool {
        self.get(var).is_some()
    }

    /// Binds `var` to `class` (overwriting any existing binding).
    pub fn insert(&mut self, var: Symbol, class: ClassId) {
        match self.bindings.binary_search_by_key(&var, |&(v, _)| v) {
            Ok(i) => self.bindings[i].1 = class,
            Err(i) => self.bindings.insert(i, (var, class)),
        }
    }

    /// The bindings in sorted variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, ClassId)> + '_ {
        self.bindings.iter().copied()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

/// Nesting depth of a pattern: `0` for a leaf, `1 +` the deepest
/// argument otherwise. A match for a pattern of depth `d` only explores
/// classes reachable within `d` child edges of the root class, so `d`
/// bounds how far dirtiness must propagate upward for delta matching.
pub fn pattern_depth(pattern: &Term) -> usize {
    pattern
        .args()
        .iter()
        .map(|a| 1 + pattern_depth(a))
        .max()
        .unwrap_or(0)
}

/// The top-level candidate classes for `pattern`, in sorted order.
///
/// Patterns headed by a symbol with arguments can only match classes
/// containing a node with that symbol (the operator index); other
/// patterns (variables, constants, leaf symbols) may match any class.
pub fn candidates(egraph: &EGraph, pattern: &Term) -> Vec<ClassId> {
    match pattern.op() {
        Op::Sym(sym) if !pattern.args().is_empty() => egraph.classes_with_op(sym),
        _ => egraph.classes(),
    }
}

/// Matches `pattern` anywhere in the e-graph.
///
/// Returns `(class, substitution)` pairs: the class the pattern's root
/// matched, and the variable bindings. Results are canonicalized and
/// deduplicated, in candidate (sorted class) order.
///
/// Patterns are [`Term`]s whose [`Op::Var`] leaves are the quantified
/// variables. Constant leaves match any class whose known constant value
/// equals the literal (so a pattern `4` matches a class containing
/// `pow(2, 2)` even if the literal `4` node was added separately).
pub fn ematch(egraph: &EGraph, pattern: &Term) -> Vec<(ClassId, Subst)> {
    ematch_classes(egraph, pattern, &candidates(egraph, pattern))
}

/// Seeded e-matching: like [`ematch`], but the top-level candidate scan
/// is restricted to classes in `dirty`. Equivalence classes *below* the
/// root are still searched in full, so a match whose root is dirty is
/// found even when its subterms are old.
///
/// With `dirty` = a [`EGraph::dirty_cone`] of every class changed since
/// the previous scan (cone depth ≥ the pattern's depth), the matches
/// returned are a superset of the matches [`ematch`] would return that
/// did not already exist — with identical substitutions and identical
/// relative order — which is what lets saturation skip quiescent regions
/// of the e-graph without changing its result.
pub fn ematch_delta(
    egraph: &EGraph,
    pattern: &Term,
    dirty: &HashSet<ClassId>,
) -> Vec<(ClassId, Subst)> {
    let restricted: Vec<ClassId> = candidates(egraph, pattern)
        .into_iter()
        .filter(|c| dirty.contains(c))
        .collect();
    ematch_classes(egraph, pattern, &restricted)
}

/// Matches `pattern` with its root in each of `classes`, in the given
/// order. Callers pass canonical, deduplicated ids (e.g. a slice of
/// [`candidates`]); results are deduplicated per class.
pub fn ematch_classes(
    egraph: &EGraph,
    pattern: &Term,
    classes: &[ClassId],
) -> Vec<(ClassId, Subst)> {
    let mut out = Vec::new();
    for &class in classes {
        let mut substs = ematch_in_class(egraph, pattern, class);
        dedup_keep_order(&mut substs);
        out.extend(substs.into_iter().map(|s| (class, s)));
    }
    out
}

/// Matches `pattern` against the members of one equivalence class.
pub fn ematch_in_class(egraph: &EGraph, pattern: &Term, class: ClassId) -> Vec<Subst> {
    let mut results = Vec::new();
    match_class(
        egraph,
        pattern,
        egraph.find(class),
        Subst::new(),
        &mut results,
    );
    results
}

fn match_class(
    egraph: &EGraph,
    pattern: &Term,
    class: ClassId,
    subst: Subst,
    out: &mut Vec<Subst>,
) {
    match pattern.op() {
        Op::Var(v) => match subst.get(v) {
            Some(bound) => {
                if egraph.find(bound) == class {
                    out.push(subst);
                }
            }
            None => {
                let mut subst = subst;
                subst.insert(v, class);
                out.push(subst);
            }
        },
        Op::Const(c) => {
            // A constant pattern matches via the constant analysis, so
            // classes folded to the value match even without a literal
            // node.
            if egraph.constant(class) == Some(c) {
                out.push(subst);
            }
        }
        Op::Sym(sym) => {
            // Walk the arena directly: no owned `ENode`s are built.
            // Stored child ids may be stale between rebuilds; the
            // recursion canonicalizes them through `find`.
            for &nid in egraph.class_node_ids(class) {
                if egraph.node_op(nid) != Op::Sym(sym) {
                    continue;
                }
                let children = egraph.node_children(nid);
                if children.len() != pattern.args().len() {
                    continue;
                }
                // Match children left to right, threading substitutions.
                let mut partial = vec![subst.clone()];
                for (child_pat, &child_class) in pattern.args().iter().zip(children) {
                    let mut next = Vec::new();
                    for s in partial {
                        match_class(egraph, child_pat, egraph.find(child_class), s, &mut next);
                    }
                    partial = next;
                    if partial.is_empty() {
                        break;
                    }
                }
                out.extend(partial);
            }
        }
    }
}

/// Removes duplicate substitutions, keeping first occurrences. Bindings
/// are already sorted by variable, so plain equality is the dedup key —
/// no re-sorting needed. Lists are tiny (matches within one class), so
/// the quadratic scan beats hashing.
fn dedup_keep_order(substs: &mut Vec<Subst>) {
    let mut i = 1;
    while i < substs.len() {
        if substs[..i].contains(&substs[i]) {
            substs.remove(i);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use denali_term::sexpr;

    fn t(s: &str, vars: &[&str]) -> Term {
        let vars: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
        Term::from_sexpr(&sexpr::parse_one(s).unwrap(), &vars).unwrap()
    }

    #[test]
    fn matches_ground_pattern() {
        let mut eg = EGraph::new();
        let c = eg.add_term(&t("(add64 x y)", &[])).unwrap();
        let matches = ematch(&eg, &t("(add64 x y)", &[]));
        assert_eq!(matches.len(), 1);
        assert_eq!(eg.find(matches[0].0), eg.find(c));
    }

    #[test]
    fn binds_variables() {
        let mut eg = EGraph::new();
        eg.add_term(&t("(add64 x y)", &[])).unwrap();
        let matches = ematch(&eg, &t("(add64 a b)", &["a", "b"]));
        assert_eq!(matches.len(), 1);
        let subst = &matches[0].1;
        let x = eg.lookup_term(&t("x", &[])).unwrap();
        let y = eg.lookup_term(&t("y", &[])).unwrap();
        assert_eq!(subst.get(Symbol::intern("a")), Some(x));
        assert_eq!(subst.get(Symbol::intern("b")), Some(y));
    }

    #[test]
    fn nonlinear_patterns_require_equal_classes() {
        let mut eg = EGraph::new();
        eg.add_term(&t("(add64 x y)", &[])).unwrap();
        let doubled = t("(add64 a a)", &["a"]);
        assert!(ematch(&eg, &doubled).is_empty());
        // After x = y the nonlinear pattern matches.
        let x = eg.lookup_term(&t("x", &[])).unwrap();
        let y = eg.lookup_term(&t("y", &[])).unwrap();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(ematch(&eg, &doubled).len(), 1);
    }

    #[test]
    fn matches_modulo_equivalence_like_figure2() {
        // The paper's key example: pattern (mul64 ?k (pow 2 ?n)) matches
        // reg6 * 4 because 4's class also contains pow(2, 2).
        let mut eg = EGraph::new();
        let mul = eg.add_term(&t("(mul64 reg6 4)", &[])).unwrap();
        let pattern = t("(mul64 k (pow 2 n))", &["k", "n"]);
        assert!(ematch(&eg, &pattern).is_empty(), "no pow node yet");
        eg.add_term(&t("(pow 2 2)", &[])).unwrap(); // folds into 4's class
        eg.rebuild().unwrap();
        let matches = ematch(&eg, &pattern);
        assert_eq!(matches.len(), 1);
        let (class, subst) = &matches[0];
        assert_eq!(eg.find(*class), eg.find(mul));
        let reg6 = eg.lookup_term(&t("reg6", &[])).unwrap();
        let two = eg.lookup_term(&Term::constant(2)).unwrap();
        assert_eq!(
            eg.find(subst.get(Symbol::intern("k")).unwrap()),
            eg.find(reg6)
        );
        assert_eq!(
            eg.find(subst.get(Symbol::intern("n")).unwrap()),
            eg.find(two)
        );
    }

    #[test]
    fn constant_pattern_matches_folded_class() {
        let mut eg = EGraph::new();
        eg.add_term(&t("(pow 2 3)", &[])).unwrap();
        let matches = ematch(&eg, &Term::constant(8));
        assert_eq!(matches.len(), 1);
        assert!(ematch(&eg, &Term::constant(9)).is_empty());
    }

    #[test]
    fn multiple_matches_in_one_class() {
        // add64(a, b) and add64(b, a) in the same class give two
        // substitutions for pattern add64(?x, ?y) on that class.
        let mut eg = EGraph::new();
        let ab = eg.add_term(&t("(add64 a b)", &[])).unwrap();
        let ba = eg.add_term(&t("(add64 b a)", &[])).unwrap();
        eg.union(ab, ba).unwrap();
        eg.rebuild().unwrap();
        let matches = ematch_in_class(&eg, &t("(add64 x y)", &["x", "y"]), ab);
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn arity_must_match() {
        let mut eg = EGraph::new();
        eg.add_term(&t("(f x)", &[])).unwrap();
        assert!(ematch(&eg, &t("(f a b)", &["a", "b"])).is_empty());
    }

    #[test]
    fn deduplicates_equivalent_matches() {
        let mut eg = EGraph::new();
        // f(x) added twice — hashconsed, so one node, one match.
        eg.add_term(&t("(f x)", &[])).unwrap();
        eg.add_term(&t("(f x)", &[])).unwrap();
        let matches = ematch(&eg, &t("(f a)", &["a"]));
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn deduplicates_matches_reached_through_different_nodes() {
        // Class of f(x)/f(y) with x = y: pattern (g (f ?a)) reaches the
        // binding a -> x through both (pre-canonicalization) nodes; one
        // substitution must survive.
        let mut eg = EGraph::new();
        eg.add_term(&t("(g (f x))", &[])).unwrap();
        eg.add_term(&t("(g (f y))", &[])).unwrap();
        let x = eg.lookup_term(&t("x", &[])).unwrap();
        let y = eg.lookup_term(&t("y", &[])).unwrap();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        let matches = ematch(&eg, &t("(g (f a))", &["a"]));
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn subst_is_sorted_and_overwrites() {
        let mut s = Subst::new();
        let (a, b) = (Symbol::intern("a"), Symbol::intern("b"));
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x", &[])).unwrap();
        let y = eg.add_term(&t("y", &[])).unwrap();
        s.insert(b, x);
        s.insert(a, y);
        assert_eq!(s.len(), 2);
        assert!(s.contains(a) && s.contains(b));
        let order: Vec<Symbol> = s.iter().map(|(v, _)| v).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted, "bindings iterate in sorted variable order");
        s.insert(b, y);
        assert_eq!(s.get(b), Some(y));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn pattern_depth_counts_nesting() {
        assert_eq!(pattern_depth(&t("x", &[])), 0);
        assert_eq!(pattern_depth(&t("(f a)", &["a"])), 1);
        assert_eq!(pattern_depth(&t("(mul64 k (pow 2 n))", &["k", "n"])), 2);
    }

    #[test]
    fn delta_matching_restricts_roots_but_searches_below() {
        let mut eg = EGraph::new();
        let mul = eg.add_term(&t("(mul64 reg6 4)", &[])).unwrap();
        eg.add_term(&t("(pow 2 2)", &[])).unwrap();
        eg.rebuild().unwrap();
        let pattern = t("(mul64 k (pow 2 n))", &["k", "n"]);
        // Root class dirty: the match is found even though the (pow 2 2)
        // evidence sits below the root, outside the dirty set.
        let dirty: HashSet<ClassId> = [eg.find(mul)].into_iter().collect();
        let matches = ematch_delta(&eg, &pattern, &dirty);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches, ematch(&eg, &pattern));
        // Root class not dirty: the top-level scan skips it.
        assert!(ematch_delta(&eg, &pattern, &HashSet::new()).is_empty());
    }
}
