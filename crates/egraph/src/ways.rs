//! Counting the distinct ways of computing a class.
//!
//! The paper (§5): "an E-graph of size O(n) can represent Θ(2^n)
//! distinct ways of computing a term of size n" and "Denali's matcher
//! uses the commutativity and associativity of addition to find more
//! than a hundred different ways of computing a + b + c + d + e."
//!
//! The count is over derivations bounded by a depth limit (the e-graph
//! may be cyclic — `x = add64(x, 0)` — so the unbounded count can be
//! infinite).

use std::collections::HashMap;

use crate::egraph::{ClassId, EGraph};

impl EGraph {
    /// Counts the distinct bounded-depth computations of `class`.
    ///
    /// A computation picks one e-node of the class and, recursively, a
    /// computation of each child with depth at most `depth - 1`. Leaves
    /// (nullary nodes) count as one way at any depth. Saturates at
    /// `u128::MAX`.
    pub fn count_ways(&self, class: ClassId, depth: usize) -> u128 {
        let mut memo = HashMap::new();
        self.count_ways_memo(self.find(class), depth, &mut memo)
    }

    fn count_ways_memo(
        &self,
        class: ClassId,
        depth: usize,
        memo: &mut HashMap<(ClassId, usize), u128>,
    ) -> u128 {
        if let Some(&n) = memo.get(&(class, depth)) {
            return n;
        }
        let mut total = 0u128;
        for &nid in self.class_node_ids(class) {
            let children = self.node_children(nid);
            if children.is_empty() {
                total = total.saturating_add(1);
            } else if depth > 0 {
                let mut product = 1u128;
                for &child in children {
                    let ways = self.count_ways_memo(self.find(child), depth - 1, memo);
                    product = product.saturating_mul(ways);
                    if product == 0 {
                        break;
                    }
                }
                total = total.saturating_add(product);
            }
        }
        memo.insert((class, depth), total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use denali_term::{sexpr, Term};

    fn t(s: &str) -> Term {
        Term::from_sexpr(&sexpr::parse_one(s).unwrap(), &[]).unwrap()
    }

    #[test]
    fn single_term_is_one_way() {
        let mut eg = EGraph::new();
        let c = eg.add_term(&t("(add64 x y)")).unwrap();
        assert_eq!(eg.count_ways(c, 10), 1);
    }

    #[test]
    fn equivalent_forms_multiply() {
        let mut eg = EGraph::new();
        let ab = eg.add_term(&t("(add64 a b)")).unwrap();
        let ba = eg.add_term(&t("(add64 b a)")).unwrap();
        eg.union(ab, ba).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.count_ways(ab, 10), 2);
    }

    #[test]
    fn nested_choices_compound_exponentially() {
        // (a+b) + (c+d) with both inner sums commuted both ways and the
        // outer sum commuted: 2 * (2 * 2) = 8 ways.
        let mut eg = EGraph::new();
        let ab = eg.add_term(&t("(add64 a b)")).unwrap();
        let ba = eg.add_term(&t("(add64 b a)")).unwrap();
        eg.union(ab, ba).unwrap();
        let cd = eg.add_term(&t("(add64 c d)")).unwrap();
        let dc = eg.add_term(&t("(add64 d c)")).unwrap();
        eg.union(cd, dc).unwrap();
        let outer1 = eg.add_term(&t("(add64 (add64 a b) (add64 c d))")).unwrap();
        let outer2 = eg.add_term(&t("(add64 (add64 c d) (add64 a b))")).unwrap();
        eg.union(outer1, outer2).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.count_ways(outer1, 10), 8);
    }

    #[test]
    fn cycles_are_bounded_by_depth() {
        // x = add64(x, 0): infinitely many unbounded derivations, but
        // the depth bound keeps the count finite and growing with depth.
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let x0 = eg.add_term(&t("(add64 x 0)")).unwrap();
        eg.union(x, x0).unwrap();
        eg.rebuild().unwrap();
        let w1 = eg.count_ways(x, 1);
        let w3 = eg.count_ways(x, 3);
        let w6 = eg.count_ways(x, 6);
        assert!(w1 >= 1);
        assert!(w3 > w1);
        assert!(w6 > w3);
    }

    #[test]
    fn depth_zero_counts_leaves_only() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let fx = eg.add_term(&t("(f x)")).unwrap();
        assert_eq!(eg.count_ways(x, 0), 1);
        assert_eq!(eg.count_ways(fx, 0), 0);
        assert_eq!(eg.count_ways(fx, 1), 1);
    }
}
